//! Vendored minimal property-testing harness mirroring the slice of the
//! `proptest` API this workspace uses, so tests run fully offline.
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! stub: no shrinking (a failing case reports its inputs but is not
//! minimized) and a fixed deterministic seed per test function (cases are
//! reproducible run-to-run by construction).
//!
//! Supported surface: `proptest! { #![proptest_config(..)] #[test] fn .. }`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, range strategies over
//! integers and floats, `prop::bool::ANY`, `prop::collection::vec`, and
//! tuple strategies up to arity 4.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinator implementations.

    use crate::test_runner::TestRng;

    /// Generates random values of an associated type.
    ///
    /// Real proptest builds shrinkable value *trees*; this stub generates
    /// plain values directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let x = self.start + rng.unit_f64() * (self.end - self.start);
            x.min(self.end - self.end.abs() * f64::EPSILON)
                .max(self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty strategy range");
            let t = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            start + t * (end - start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod bool {
    //! Boolean strategies, mirroring `proptest::bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG and error plumbing for generated test functions.

    /// Per-test configuration (mirrors the fields the workspace sets).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Abort threshold for consecutive `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition did not hold; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failing-case error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejected-case (assume) marker.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The deterministic generator driving strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed RNG derived from the test name, so each test's
        /// case stream is stable run-to-run and independent of the others.
        pub fn deterministic(test_name: &str) -> Self {
            let mut seed = 0x9E37_79B9_7F4A_7C15u64;
            for b in test_name.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n = 0` returns 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` consumer expects.

    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{} at {}:{}",
                    ::std::format!($($fmt)*),
                    ::std::file!(),
                    ::std::line!()
                ),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current generated case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a normal test that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
         $(#[$meta:meta])+
         fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __inputs = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __config.max_global_rejects,
                                "too many prop_assume! rejections (last: {})",
                                __why
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest case failed after {} passing case(s): {}\n\
                                 inputs: {}",
                                __passed, __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn tuples_and_assume_work(
            pair in (0u32..4, prop::bool::ANY),
            n in 0usize..8,
        ) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            // Any attribute works here; `#[test]` would warn as a nested item.
            #[allow(dead_code)]
            fn inner(x in 0u32..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
