//! Vendored `#[derive(Serialize, Deserialize)]` for the serde stub.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote` — the build is
//! offline), so it parses only the shapes this workspace actually derives:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently),
//! * unit structs,
//! * enums with unit / tuple / struct variants (externally tagged),
//! * at most simple type parameters (`struct Envelope<T> { ... }`).
//!
//! Generated code targets the stub's value-tree model: `Serialize::serialize
//! (&self) -> Value` and `Deserialize::deserialize(&Value) -> Result`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive produced invalid Serialize impl")
}

/// Derives the stub `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive produced invalid Deserialize impl")
}

// --- item model ---

struct Item {
    name: String,
    /// Simple type-parameter names (`T`), in declaration order.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// --- parsing ---

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    let generics = parse_generics(&tokens, &mut i);

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Advances past outer attributes (`#[...]`, including expanded doc
/// comments) and a visibility qualifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<T, U>` after the type name, if present. Bounds, lifetimes and
/// const parameters are not needed by this workspace and are rejected so a
/// future use fails loudly at compile time instead of silently miscompiling.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *i += 1,
        _ => return params,
    }
    let mut expect_param = true;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *i += 1;
                return params;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                expect_param = true;
                *i += 1;
            }
            Some(TokenTree::Ident(id)) if expect_param => {
                params.push(id.to_string());
                expect_param = false;
                *i += 1;
            }
            other => panic!("unsupported generic parameter syntax at {other:?}"),
        }
    }
}

/// Extracts field names from the token stream of a braced field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1; // past the separating comma (or the end)
        fields.push(name);
    }
    fields
}

/// Counts top-level comma-separated items (tuple-struct fields).
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut i = 0;
    loop {
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1; // past the comma
        if i >= tokens.len() {
            return count; // trailing comma
        }
        count += 1;
        if i >= tokens.len() {
            return count;
        }
    }
}

/// Advances `i` to the next `,` at angle-bracket depth 0 (or to the end).
/// Delimited groups are single tokens, so only `<...>` needs depth
/// tracking; `->` return arrows are consumed before their `>` is seen.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == '-' => {
                // `->`: skip the `>` so it is not counted as a close.
                if let Some(TokenTree::Punct(next)) = tokens.get(*i + 1) {
                    if next.as_char() == '>' {
                        *i += 1;
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= 3`) and the separating comma.
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

// --- code generation (emitted as source text, then re-parsed) ---

fn impl_header(item: &Item, trait_path: &str, bound: &str) -> String {
    if item.generics.is_empty() {
        format!("impl {trait_path} for {}", item.name)
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        format!(
            "impl<{}> {trait_path} for {}<{}>",
            params.join(", "),
            item.name,
            item.generics.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn serialize(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "::serde::Serialize", "::serde::Serialize")
    )
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let tag = format!("::std::string::String::from(\"{vname}\")");
    match &v.shape {
        Shape::Unit => format!("{name}::{vname} => ::serde::Value::Str({tag}),"),
        Shape::Tuple(1) => format!(
            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![({tag}, \
             ::serde::Serialize::serialize(__f0))]),"
        ),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b})"))
                .collect();
            format!(
                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![({tag}, \
                 ::serde::Value::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![({tag}, \
                 ::serde::Value::Map(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::__field(__map, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __map = ::serde::__expect_map(__v, \"{name}\")?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = ::serde::__expect_seq(__v, {n}, \"{name}\")?; \
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "{} {{ fn deserialize(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "::serde::Deserialize", "::serde::Deserialize")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| deserialize_data_arm(name, v))
        .collect();
    let err = format!(
        "::std::result::Result::Err(::serde::Error::custom(::std::format!(\
         \"unknown variant `{{__other}}` for {name}\")))"
    );
    format!(
        "match __v {{ \
           ::serde::Value::Str(__s) => match __s.as_str() {{ \
             {} __other => {err}, \
           }}, \
           ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
             let (__tag, __payload) = &__entries[0]; \
             match __tag.as_str() {{ \
               {} __other => {err}, \
             }} \
           }}, \
           __other_v => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
             \"expected variant of {name}, found {{}}\", ::serde::__kind(__other_v)))), \
         }}",
        unit_arms.join(" "),
        data_arms.join(" ")
    )
}

fn deserialize_data_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => unreachable!("unit variants handled in the string arm"),
        Shape::Tuple(1) => format!(
            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
             ::serde::Deserialize::deserialize(__payload)?)),"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                .collect();
            format!(
                "\"{vname}\" => {{ let __seq = ::serde::__expect_seq(__payload, {n}, \
                 \"{name}::{vname}\")?; ::std::result::Result::Ok({name}::{vname}({})) }},",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::__field(__m, \"{f}\", \"{name}::{vname}\")?)?"
                    )
                })
                .collect();
            format!(
                "\"{vname}\" => {{ let __m = ::serde::__expect_map(__payload, \
                 \"{name}::{vname}\")?; ::std::result::Result::Ok({name}::{vname} {{ {} }}) }},",
                inits.join(", ")
            )
        }
    }
}
