//! Vendored minimal stand-in for the `serde` crate so the workspace builds
//! fully offline.
//!
//! The real `serde` models serialization through `Serializer`/`Deserializer`
//! visitors; this stub collapses that to a self-describing [`Value`] tree,
//! which is all the workspace needs (the only format in use is JSON via the
//! sibling `serde_json` stub). The public *names* match real serde where the
//! workspace touches them: the `Serialize`/`Deserialize` traits and derive
//! macros, and `de::DeserializeOwned`.
//!
//! Representation choices mirror serde's defaults so artifacts stay
//! reviewable and stable:
//!
//! * structs with named fields → maps in field-declaration order
//! * newtype structs → the inner value, transparently
//! * tuple structs (≥ 2 fields) → sequences
//! * unit enum variants → a plain string (externally tagged)
//! * data-carrying enum variants → a single-entry map `{variant: payload}`
//! * `Option` → `null` / the value

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialization tree (the stub's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A finite floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

/// Error raised by [`Deserialize`] implementations (and by format front-ends
/// such as the vendored `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a human-readable message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de` for the one item the workspace imports from it.
pub mod de {
    /// Owned deserialization — in this stub every [`crate::Deserialize`]
    /// is already owned, so this is a blanket alias trait.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// --- helpers used by derive-generated code (semver-exempt, like serde's
// __private module) ---

/// Extracts the entries of a map value or errors with the target type name.
pub fn __expect_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Map(entries) => Ok(entries),
        other => Err(Error::custom(format!(
            "expected map for {ty}, found {}",
            __kind(other)
        ))),
    }
}

/// Extracts a sequence of exactly `n` elements or errors.
pub fn __expect_seq<'v>(v: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], Error> {
    match v {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(Error::custom(format!(
            "expected sequence of length {n} for {ty}, found length {}",
            items.len()
        ))),
        other => Err(Error::custom(format!(
            "expected sequence for {ty}, found {}",
            __kind(other)
        ))),
    }
}

/// Looks up a required field in a map's entries.
pub fn __field<'v>(
    entries: &'v [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))
}

/// Human-readable kind of a value, for error messages.
pub fn __kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) => "integer",
        Value::F64(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

// --- primitive impls ---

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!(
                "expected null, found {}",
                __kind(other)
            ))),
        }
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                __kind(other)
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            __kind(other)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as u64;
                match i64::try_from(n) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(n),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            __kind(other)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // serde_json maps non-finite floats to null; keep that behavior.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!(
                "expected number, found {}",
                __kind(other)
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (*self as f64).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                __kind(other)
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected char, found {}",
                __kind(other)
            ))),
        }
    }
}

// --- composite impls ---

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, found {}",
                __kind(other)
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = __expect_seq(v, N, "array")?;
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::deserialize).collect();
        parsed.map(|v| {
            let arr: [T; N] = v.try_into().expect("length checked by __expect_seq");
            arr
        })
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = __expect_seq(v, N, "tuple")?;
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&7u32.serialize()).unwrap(), 7);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.25f64.serialize()).unwrap(), 1.25);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert!(bool::deserialize(&true.serialize()).unwrap());
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::None.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::deserialize(&5u32.serialize()).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn arrays_check_length() {
        let v = [1.0f64, 2.0].serialize();
        assert!(<[f64; 2]>::deserialize(&v).is_ok());
        assert!(<[f64; 3]>::deserialize(&v).is_err());
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::deserialize(&Value::I64(300)).is_err());
        assert!(u32::deserialize(&Value::I64(-1)).is_err());
    }
}
