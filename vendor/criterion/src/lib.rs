//! Vendored minimal benchmark harness mirroring the slice of the
//! `criterion` API this workspace uses, so benches compile and run fully
//! offline.
//!
//! No statistics, plots, or baseline storage: each benchmark warms up
//! briefly, times a capped number of iterations, and prints a median
//! nanoseconds-per-iteration line. The point is that `cargo bench` (and
//! `cargo bench --no-run` in CI) exercises the same bench sources that will
//! later run under real criterion.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target timed duration per benchmark (the stub keeps runs short).
const TARGET_TIME: Duration = Duration::from_millis(200);
/// Hard cap on timed iterations per benchmark.
const MAX_ITERS: u64 = 50;

/// Entry point object handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies CLI configuration. The stub accepts and ignores the
    /// arguments `cargo bench` forwards (`--bench`, filters, ...).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().0, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a common prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's run time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Builds an id from a displayed parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for the id positions of `bench_*`.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, also forces lazy setup
        let mut elapsed = Duration::ZERO;
        for _ in 0..MAX_ITERS {
            let start = Instant::now();
            black_box(routine());
            let took = start.elapsed();
            self.samples.push(took);
            elapsed += took;
            if elapsed >= TARGET_TIME {
                break;
            }
        }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<60} (no iterations)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!(
        "{label:<60} median {:>12.3} µs over {} iter(s)",
        median.as_secs_f64() * 1e6,
        samples.len()
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the listed groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        group.bench_function("direct", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_function_runs_all_benches() {
        benches();
    }
}
