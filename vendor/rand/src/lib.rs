//! Vendored minimal stand-in for the `rand` crate (0.8-era API surface) so
//! the workspace builds fully offline.
//!
//! Implements exactly what the workspace uses: the [`Rng`] trait with
//! `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++ seeded
//! through a SplitMix64 expander — not ChaCha12 like real `rand`, but the
//! workspace only relies on *reproducibility for a fixed seed within this
//! codebase*, never on matching upstream streams.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A source of randomness (the subset of `rand::Rng` the workspace uses).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        next_f64(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn next_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, n)` via 128-bit multiply-shift (bias ≤ n/2⁶⁴,
/// far below anything the statistical tests in this workspace can see).
fn next_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// Ranges that can be sampled uniformly (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "empty range {}..{}",
            self.start,
            self.end
        );
        let span = self.end - self.start;
        let x = self.start + next_f64(rng) * span;
        // Floating rounding can land exactly on `end`; step back to the
        // largest float below it (sign-correct, unlike an epsilon scale).
        if x >= self.end {
            next_down(self.end).max(self.start)
        } else {
            x
        }
    }
}

/// Largest float strictly below `x` (for finite non-zero `x`; `0.0` maps to
/// `-f64::MIN_POSITIVE` subnormal). Stand-in for the unstable-at-MSRV
/// `f64::next_down`.
fn next_down(x: f64) -> f64 {
    let bits = x.to_bits();
    let next = if x > 0.0 {
        bits - 1
    } else if x < 0.0 {
        bits + 1
    } else {
        1 | (1u64 << 63) // smallest negative subnormal
    };
    f64::from_bits(next)
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range {start}..={end}");
        let t = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + t * (end - start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + next_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + next_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs constructible from a seed (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespaced RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard seedable generator (xoshiro256++ inside;
    /// see the crate docs for why this differs from upstream `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let n = rng.gen_range(3u32..7);
            assert!((3..7).contains(&n));
            let m = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn float_ranges_stay_half_open_at_awkward_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            // Negative end: a sample rounding up must not land on 0.0.
            let x = rng.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&x), "{x}");
            // Narrow range far from zero: clamp must not undershoot start.
            let y = rng.gen_range(1e6f64..(1e6 + 1e-9));
            assert!((1e6..1e6 + 1e-9).contains(&y), "{y}");
        }
        assert!(super::next_down(0.0) < 0.0);
        assert_eq!(super::next_down(1.0 + f64::EPSILON), 1.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn take_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = take_dynish(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
