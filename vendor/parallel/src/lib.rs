//! Vendored minimal parallel-execution primitives built on
//! [`std::thread::scope`], mirroring the slice of a rayon-like API this
//! workspace needs (`join`, `par_map`), so the build stays fully offline.
//!
//! Every primitive takes an explicit *thread budget* and guarantees
//! **deterministic, input-order results**: work is split into contiguous
//! chunks, each chunk is processed in order within one thread, and chunk
//! results are concatenated in chunk order. A budget of 0 or 1 (or a
//! single-element input) degenerates to the plain serial loop, so callers
//! can assert bit-identical serial/parallel outputs by construction.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global default thread budget; 0 means "not yet resolved".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide default thread budget used when a caller does not pin
/// an explicit count: the `TAUW_THREADS` environment variable if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
///
/// The value is resolved once and cached.
pub fn max_threads() -> usize {
    let cached = DEFAULT_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let resolved = std::env::var("TAUW_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    DEFAULT_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the process-wide default thread budget (0 restores the
/// environment-derived default on next query). Outputs of the primitives
/// are identical for every budget; this only changes scheduling.
pub fn set_max_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// Runs both closures, potentially concurrently, and returns their results
/// as `(a, b)`. With `threads <= 1` the closures run sequentially on the
/// caller's thread (`a` first), which produces the same results because the
/// closures are independent.
///
/// `threads` is the *total* budget for both sides; the caller conventionally
/// passes half of it on to nested joins inside each closure.
///
/// # Examples
///
/// ```
/// let (a, b) = parallel::join(2, || 6 * 7, || "ok");
/// assert_eq!((a, b), (42, "ok"));
/// ```
pub fn join<RA, RB>(
    threads: usize,
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if threads <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        let ra = handle.join().expect("parallel::join worker panicked");
        (ra, rb)
    })
}

/// Maps `f` over `items` with up to `threads` worker threads, returning the
/// results **in input order**. The slice is split into at most `threads`
/// contiguous chunks; each chunk is mapped left-to-right within a single
/// thread, so for a pure `f` the output is bit-identical to the serial
/// `items.iter().map(f)`.
///
/// # Examples
///
/// ```
/// let squares = parallel::par_map(4, &[1, 2, 3, 4, 5], |&x: &i32| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let chunk_len = match chunk_len(threads, items.len()) {
        Some(len) => len,
        None => return items.iter().map(f).collect(),
    };
    std::thread::scope(|scope| {
        let mut chunks = items.chunks(chunk_len);
        let first = chunks.next().expect("non-empty input");
        let handles: Vec<_> = chunks
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        let mut out: Vec<U> = first.iter().map(&f).collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel::par_map worker panicked"));
        }
        out
    })
}

/// Like [`par_map`] but with mutable access to each item (e.g. advancing
/// independent per-stream state machines). Results are returned in input
/// order; each item is visited exactly once.
pub fn par_map_mut<T, U, F>(threads: usize, items: &mut [T], f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(&mut T) -> U + Sync,
{
    let chunk_len = match chunk_len(threads, items.len()) {
        Some(len) => len,
        None => return items.iter_mut().map(f).collect(),
    };
    std::thread::scope(|scope| {
        let mut chunks = items.chunks_mut(chunk_len);
        let first = chunks.next().expect("non-empty input");
        let handles: Vec<_> = chunks
            .map(|chunk| scope.spawn(|| chunk.iter_mut().map(&f).collect::<Vec<U>>()))
            .collect();
        let mut out: Vec<U> = first.iter_mut().map(&f).collect();
        for handle in handles {
            out.extend(
                handle
                    .join()
                    .expect("parallel::par_map_mut worker panicked"),
            );
        }
        out
    })
}

/// Splits `items` and `outs` into *matching* contiguous chunks and runs
/// `f(item_chunk, out_chunk)` on each with up to `threads` workers,
/// returning one result per chunk **in chunk order**. The pairing contract
/// is positional: `outs` must be exactly `out_stride` entries per item, and
/// chunk `c` covers items `[c·L, (c+1)·L)` alongside outs
/// `[c·L·out_stride, (c+1)·L·out_stride)`.
///
/// This is the write-in-place sibling of [`par_map`]: workers write results
/// directly into their slice of a caller-sized output buffer, so batched
/// kernels (e.g. routing a wave of rows through a tree) need no
/// intermediate per-chunk `Vec`s. Because chunks are contiguous and chunk
/// results are reported in chunk order, the first `Err`-like result in the
/// returned `Vec` corresponds to the earliest failing item for any
/// per-chunk routine that itself scans left-to-right.
///
/// An empty `items` returns an empty result vector without invoking `f`.
///
/// Unlike [`par_map`], per-item work here is assumed to be tiny (a few
/// array reads per row), so batches below a 4096-item floor run on the
/// caller thread in one chunk: a thread spawn costs tens of microseconds
/// and would dwarf the work it offloads.
///
/// # Panics
///
/// Panics if `outs.len() != items.len() * out_stride` or `out_stride == 0`.
///
/// # Examples
///
/// ```
/// let items = [1u32, 2, 3, 4, 5];
/// let mut outs = [0u32; 5];
/// let chunk_sums = parallel::par_zip_chunks_mut(2, &items, &mut outs, 1, |xs, ys| {
///     let mut sum = 0;
///     for (x, y) in xs.iter().zip(ys.iter_mut()) {
///         *y = x * x;
///         sum += *y;
///     }
///     sum
/// });
/// assert_eq!(outs, [1, 4, 9, 16, 25]);
/// assert_eq!(chunk_sums.iter().sum::<u32>(), 55);
/// ```
pub fn par_zip_chunks_mut<T, U, R, F>(
    threads: usize,
    items: &[T],
    outs: &mut [U],
    out_stride: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    U: Send,
    R: Send,
    F: Fn(&[T], &mut [U]) -> R + Sync,
{
    assert!(out_stride > 0, "par_zip_chunks_mut: out_stride must be > 0");
    assert_eq!(
        outs.len(),
        items.len() * out_stride,
        "par_zip_chunks_mut: outs must hold exactly out_stride entries per item"
    );
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_len = match zip_chunk_len(threads, items.len()) {
        Some(len) => len,
        None => return vec![f(items, outs)],
    };
    std::thread::scope(|scope| {
        let mut item_chunks = items.chunks(chunk_len);
        let mut out_chunks = outs.chunks_mut(chunk_len * out_stride);
        let first_items = item_chunks.next().expect("non-empty input");
        let first_outs = out_chunks.next().expect("non-empty output");
        let handles: Vec<_> = item_chunks
            .zip(out_chunks)
            .map(|(ic, oc)| scope.spawn(|| f(ic, oc)))
            .collect();
        let mut results = Vec::with_capacity(handles.len() + 1);
        results.push(f(first_items, first_outs));
        for handle in handles {
            results.push(
                handle
                    .join()
                    .expect("parallel::par_zip_chunks_mut worker panicked"),
            );
        }
        results
    })
}

/// Chunk length for fanning `n` items out over `threads`, or `None` when
/// the serial path should be used.
fn chunk_len(threads: usize, n: usize) -> Option<usize> {
    if threads <= 1 || n <= 1 {
        return None;
    }
    Some(n.div_ceil(threads.min(n)))
}

/// Minimum items a [`par_zip_chunks_mut`] worker must carry to pay for its
/// own spawn: row-level kernel work is tens of nanoseconds per item while
/// a scoped-thread spawn is tens of microseconds, so small batches lose by
/// fanning out no matter how many cores the host has.
const MIN_ZIP_CHUNK: usize = 4096;

/// Chunk length for the row-kernel fan-out of [`par_zip_chunks_mut`]:
/// like [`chunk_len`], but clamped so every chunk holds at least
/// [`MIN_ZIP_CHUNK`] items (the whole batch stays on the caller thread
/// below that threshold).
fn zip_chunk_len(threads: usize, n: usize) -> Option<usize> {
    match chunk_len(threads, n) {
        Some(len) if n > MIN_ZIP_CHUNK => Some(len.max(MIN_ZIP_CHUNK)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_in_declaration_order() {
        for threads in [0, 1, 2, 8] {
            let (a, b) = join(threads, || 1, || 2);
            assert_eq!((a, b), (1, 2));
        }
    }

    #[test]
    fn par_map_preserves_input_order_for_all_budgets() {
        let items: Vec<u64> = (0..997).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        for threads in [1, 2, 3, 8, 64, 2000] {
            let out = par_map(threads, &items, |&x| x.wrapping_mul(x));
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        assert_eq!(par_map(8, &[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(8, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_mut_visits_each_item_once() {
        for threads in [1, 4] {
            let mut items = vec![0u32; 100];
            let out = par_map_mut(threads, &mut items, |x| {
                *x += 1;
                *x
            });
            assert_eq!(out, vec![1; 100]);
            assert_eq!(items, vec![1; 100]);
        }
    }

    #[test]
    fn par_zip_chunks_mut_matches_serial_for_all_budgets() {
        let items: Vec<u64> = (0..997).collect();
        let mut serial = vec![0u64; items.len()];
        let serial_sums = par_zip_chunks_mut(1, &items, &mut serial, 1, |xs, ys| {
            let mut sum = 0u64;
            for (x, y) in xs.iter().zip(ys.iter_mut()) {
                *y = x.wrapping_mul(*x);
                sum = sum.wrapping_add(*y);
            }
            sum
        });
        assert_eq!(serial_sums.len(), 1);
        for threads in [2, 3, 8, 64, 2000] {
            let mut out = vec![0u64; items.len()];
            let sums = par_zip_chunks_mut(threads, &items, &mut out, 1, |xs, ys| {
                let mut sum = 0u64;
                for (x, y) in xs.iter().zip(ys.iter_mut()) {
                    *y = x.wrapping_mul(*x);
                    sum = sum.wrapping_add(*y);
                }
                sum
            });
            assert_eq!(out, serial, "threads={threads}");
            assert_eq!(
                sums.iter().copied().reduce(u64::wrapping_add),
                serial_sums.iter().copied().reduce(u64::wrapping_add),
            );
        }
    }

    #[test]
    fn par_zip_chunks_mut_pairs_strided_outputs() {
        let items: Vec<u32> = (0..13).collect();
        for threads in [1, 2, 4, 16] {
            let mut out = vec![0u32; items.len() * 3];
            par_zip_chunks_mut(threads, &items, &mut out, 3, |xs, ys| {
                for (x, slot) in xs.iter().zip(ys.chunks_mut(3)) {
                    slot[0] = *x;
                    slot[1] = x + 1;
                    slot[2] = x + 2;
                }
            });
            for (i, x) in items.iter().enumerate() {
                assert_eq!(&out[i * 3..i * 3 + 3], &[*x, x + 1, x + 2]);
            }
        }
    }

    #[test]
    fn par_zip_chunks_mut_handles_tiny_inputs() {
        let mut empty: [u8; 0] = [];
        let none: Vec<()> = par_zip_chunks_mut(8, &[] as &[u8], &mut empty, 1, |_, _| ());
        assert!(none.is_empty());
        let mut one = [0u8];
        let results = par_zip_chunks_mut(8, &[7u8], &mut one, 1, |xs, ys| {
            ys[0] = xs[0] + 1;
            true
        });
        assert_eq!(results, vec![true]);
        assert_eq!(one, [8]);
    }

    #[test]
    #[should_panic(expected = "out_stride entries per item")]
    fn par_zip_chunks_mut_rejects_mismatched_lengths() {
        let mut out = [0u8; 3];
        par_zip_chunks_mut(2, &[1u8, 2], &mut out, 1, |_, _| ());
    }

    #[test]
    fn set_max_threads_overrides_and_restores() {
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn nested_join_inside_par_map_works() {
        let items: Vec<u32> = (0..16).collect();
        let out = par_map(4, &items, |&x| {
            let (a, b) = join(2, move || x, move || x + 1);
            a + b
        });
        let expected: Vec<u32> = items.iter().map(|&x| 2 * x + 1).collect();
        assert_eq!(out, expected);
    }
}
