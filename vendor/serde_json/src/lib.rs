//! Vendored minimal JSON front-end over the serde stub's value tree so the
//! workspace builds fully offline.
//!
//! Provides exactly the subset the workspace uses — [`to_string`],
//! [`to_string_pretty`] and [`from_str`] — with the same observable
//! formatting as real `serde_json`'s pretty printer (2-space indent,
//! `"key": value`), which model-artifact tests rely on when they patch raw
//! JSON text. Floats print via Rust's shortest-roundtrip formatter, so
//! save/load roundtrips are bit-identical for finite values.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Serialization/deserialization error (mirrors `serde_json::Error` where
/// the workspace touches it: `Display` in `format!`).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// This stub's writer itself is infallible; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent).
///
/// # Errors
///
/// This stub's writer itself is infallible; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing input, or a value shape
/// `T` rejects.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

// --- writer ---

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // Same behavior as real serde_json's default: non-finite → null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a `.0` so the value reads back as a float, mirroring
        // serde_json (`5.0` rather than `5`).
        out.push_str(&format!("{x:.1}"));
    } else {
        // Rust's shortest-roundtrip formatting: parses back bit-identical.
        out.push_str(&x.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                char::from(b),
                self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect a low surrogate.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                char::from(other)
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![], vec![-0.125]];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[1.0,2.5],[],[-0.125]]");
        let back: Vec<Vec<f64>> = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let back_pretty: Vec<Vec<f64>> = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_roundtrip_bit_identical() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(surrogate, "\u{1F600}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
