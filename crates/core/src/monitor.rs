//! Runtime verification monitor: the simplex-style gate the paper's
//! introduction motivates ("monitoring the ML model during operation and
//! detecting outcomes with high uncertainty to either overwrite these
//! outcomes or take some other countermeasures").
//!
//! The monitor consumes dependable uncertainty estimates and decides, per
//! outcome, whether the AI channel may be used or the system must fall
//! back to its safety channel.

use serde::{Deserialize, Serialize};

/// Decision of the monitor for one outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorDecision {
    /// The outcome's uncertainty is tolerable: use the AI outcome.
    Accept,
    /// The uncertainty exceeds the budget: suppress the outcome and use the
    /// fallback channel (simplex pattern).
    Fallback,
}

/// Running counters of monitor activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Outcomes assessed.
    pub assessed: u64,
    /// Outcomes accepted.
    pub accepted: u64,
    /// Outcomes diverted to the fallback channel.
    pub fallbacks: u64,
}

impl MonitorStats {
    /// Fraction of assessed outcomes that were accepted (1.0 when nothing
    /// was assessed — an idle monitor restricts nothing).
    pub fn availability(&self) -> f64 {
        if self.assessed == 0 {
            1.0
        } else {
            self.accepted as f64 / self.assessed as f64
        }
    }
}

/// Threshold monitor over dependable uncertainty estimates.
///
/// # Examples
///
/// ```
/// use tauw_core::monitor::{MonitorDecision, UncertaintyMonitor};
///
/// // Tolerate at most 1% failure probability per consumed outcome.
/// let mut monitor = UncertaintyMonitor::new(0.01);
/// assert_eq!(monitor.assess(0.002), MonitorDecision::Accept);
/// assert_eq!(monitor.assess(0.2), MonitorDecision::Fallback);
/// assert_eq!(monitor.stats().fallbacks, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertaintyMonitor {
    max_uncertainty: f64,
    stats: MonitorStats,
}

impl UncertaintyMonitor {
    /// Creates a monitor with the given per-outcome uncertainty budget
    /// (clamped into `[0, 1]`).
    pub fn new(max_uncertainty: f64) -> Self {
        UncertaintyMonitor {
            max_uncertainty: max_uncertainty.clamp(0.0, 1.0),
            stats: MonitorStats::default(),
        }
    }

    /// The configured budget.
    pub fn max_uncertainty(&self) -> f64 {
        self.max_uncertainty
    }

    /// Assesses one outcome's uncertainty.
    pub fn assess(&mut self, uncertainty: f64) -> MonitorDecision {
        self.stats.assessed += 1;
        if uncertainty <= self.max_uncertainty {
            self.stats.accepted += 1;
            MonitorDecision::Accept
        } else {
            self.stats.fallbacks += 1;
            MonitorDecision::Fallback
        }
    }

    /// Running counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Resets the counters (e.g. per drive cycle).
    pub fn reset_stats(&mut self) {
        self.stats = MonitorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_is_inclusive() {
        let mut m = UncertaintyMonitor::new(0.1);
        assert_eq!(m.assess(0.1), MonitorDecision::Accept);
        assert_eq!(m.assess(0.1 + 1e-12), MonitorDecision::Fallback);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = UncertaintyMonitor::new(0.05);
        for u in [0.01, 0.02, 0.5, 0.9, 0.001] {
            m.assess(u);
        }
        let s = m.stats();
        assert_eq!(s.assessed, 5);
        assert_eq!(s.accepted, 3);
        assert_eq!(s.fallbacks, 2);
        assert!((s.availability() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn idle_monitor_reports_full_availability() {
        let m = UncertaintyMonitor::new(0.05);
        assert_eq!(m.stats().availability(), 1.0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut m = UncertaintyMonitor::new(0.5);
        m.assess(0.9);
        m.reset_stats();
        assert_eq!(m.stats(), MonitorStats::default());
    }

    #[test]
    fn budget_is_clamped() {
        let m = UncertaintyMonitor::new(7.0);
        assert_eq!(m.max_uncertainty(), 1.0);
        let m = UncertaintyMonitor::new(-2.0);
        assert_eq!(m.max_uncertainty(), 0.0);
    }

    #[test]
    fn tighter_budget_reduces_availability() {
        let uncertainties: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let mut loose = UncertaintyMonitor::new(0.5);
        let mut tight = UncertaintyMonitor::new(0.05);
        for &u in &uncertainties {
            loose.assess(u);
            tight.assess(u);
        }
        assert!(tight.stats().availability() < loose.stats().availability());
    }
}
