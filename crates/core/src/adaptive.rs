//! Online adaptive calibration: tracks observed per-stream coverage over a
//! sliding window and nudges served bounds when the stream drifts away from
//! the calibration distribution.
//!
//! The paper freezes leaf bounds at calibration time; production traffic
//! drifts. This layer wraps the serving path with a per-stream feedback
//! loop:
//!
//! 1. **Serve** the adapted bound for the current step (calibrated bound
//!    inflated by the current correction factor).
//! 2. **Observe** whether the step actually failed, pushing the pair
//!    (failed?, served bound) into a bounded [`TimeseriesBuffer`] — the
//!    *coverage window* — reusing the exact integer-grid ring aggregates
//!    from the fusion buffer verbatim.
//! 3. **Adapt**: when the windowed failure count exceeds the failure mass
//!    the served bounds promised, raise the correction one notch; when
//!    coverage holds again, lower it one notch. One notch multiplies the
//!    served *certainty deficit* by `1 + rate`, so bounds move at a bounded
//!    multiplicative per-step rate and recover symmetrically.
//!
//! The undercoverage test is exact integer arithmetic on the 2⁻⁵³ grid
//! (`failures · 2⁵³ > Σ promised failure units`), so the incremental O(1)
//! path and the O(window) [`AdaptiveState::coverage_reference`] recompute
//! are bitwise identical by construction — the same flat-vs-reference
//! verification pattern the buffer and taQF aggregates use.
//!
//! Alongside adaptation the layer classifies *why* coverage broke as a
//! [`DriftSignal`]: undercoverage on a leaf combination that calibration
//! barely populated is flagged epistemic (the model has not seen this
//! regime), while undercoverage on well-supported leaves is aleatoric
//! noise ([`DriftSignal::Noisy`]). A leafless backend reports
//! [`crate::calibration::RouteSupport::Unsupported`], and the split
//! degrades to the explicit [`DriftSignal::SupportUnavailable`] instead of
//! silently defaulting to either side.

use crate::buffer::{certainty_units_to_f64, TimeseriesBuffer, CERTAINTY_UNIT_ONE};
use crate::calibration::{RouteSupport, ServingScratch};
use crate::error::CoreError;
use crate::tauw::{TauwStep, TimeseriesAwareWrapper};
use serde::{Deserialize, Serialize};

/// Per-stream drift/regime classification served with every adaptive step.
///
/// `Stable` is the quiet state: the coverage window is either too young to
/// judge ([`AdaptiveConfig::min_observations`] not yet reached) or coverage
/// holds with no residual correction. The two drifting states distinguish
/// the *source* of miscoverage (the epistemic-vs-aleatoric split from the
/// deep-learning-UQ literature):
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DriftSignal {
    /// Coverage holds (or the window is too young to judge).
    #[default]
    Stable,
    /// The stream has left the regime the bounds were fit for. With
    /// `epistemic: true` the current leaf combination was rarely seen in
    /// calibration — the model *does not know* this input region and the
    /// divergence is a knowledge gap. With `epistemic: false` coverage
    /// currently holds but a residual inflation from a recent episode is
    /// still decaying.
    Drifting {
        /// Whether the divergence points at a calibration knowledge gap
        /// (thinly-populated leaves) rather than irreducible noise.
        epistemic: bool,
    },
    /// Coverage diverges on *well-populated* leaves: the input region was
    /// densely calibrated, so the divergence is aleatoric — the world got
    /// noisier, not the model blinder.
    Noisy,
    /// Coverage diverges but the backend cannot report calibration support
    /// ([`crate::calibration::RouteSupport::Unsupported`], e.g. the
    /// leafless conformal model), so the epistemic-vs-aleatoric split is
    /// undecidable — reported explicitly instead of defaulting to either
    /// side.
    SupportUnavailable,
}

/// Windowed coverage aggregates read from the coverage ring in O(1).
///
/// All three counters live on the exact integer grid, so equality between
/// the incremental path and the [`AdaptiveState::coverage_reference`]
/// recompute is bitwise, not approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageStats {
    /// Steps currently in the coverage window.
    pub observations: usize,
    /// How many of them actually failed.
    pub failures: usize,
    /// Total failure mass the served bounds promised, in 2⁻⁵³ units
    /// (`Σ served_bound` over the window, exactly).
    pub promised_failure_units: u128,
}

impl CoverageStats {
    /// The exact undercoverage test: did the window fail more often than
    /// the served bounds promised? Computed as
    /// `failures · 2⁵³ > promised_failure_units` — pure integer
    /// arithmetic, no rounding point.
    pub fn undercovered(&self) -> bool {
        (self.failures as u128) * CERTAINTY_UNIT_ONE > self.promised_failure_units
    }

    /// Observed failure rate over the window (0 when empty).
    pub fn observed_failure_rate(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.failures as f64 / self.observations as f64
        }
    }

    /// The promised failure mass as an `f64` (single rounding point, via
    /// [`certainty_units_to_f64`]).
    pub fn promised_failure_mass(&self) -> f64 {
        certainty_units_to_f64(self.promised_failure_units)
    }
}

/// Tuning knobs of the adaptive layer. All validated by
/// [`AdaptiveConfig::validate`] before any state is built.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Coverage-window length in steps (the bounded ring's capacity).
    pub window: usize,
    /// Per-notch multiplicative rate: one inflation notch multiplies the
    /// served certainty deficit `1 − bound` shrink factor by `1 + rate`.
    pub rate: f64,
    /// Minimum observations in the window before adaptation (or drift
    /// classification) engages; must not exceed `window`.
    pub min_observations: usize,
    /// Hard cap on the inflation notch count — bounds the total
    /// correction at `(1 + rate)^max_inflation_steps`.
    pub max_inflation_steps: u32,
    /// Calibration-support threshold separating epistemic drift (current
    /// leaves routed fewer than this many calibration samples) from
    /// aleatoric noise.
    pub thin_support: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 20,
            rate: 0.05,
            min_observations: 10,
            max_inflation_steps: 128,
            thin_support: 400,
        }
    }
}

impl AdaptiveConfig {
    /// Checks every field, with an error naming the offending knob.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when `window` is zero,
    /// `min_observations` is zero or exceeds `window`, `rate` is
    /// non-finite, non-positive, or above 1, `max_inflation_steps` is
    /// zero, or `thin_support` is zero.
    pub fn validate(&self) -> Result<(), CoreError> {
        let invalid = |reason: String| CoreError::InvalidInput { reason };
        if self.window == 0 {
            return Err(invalid(
                "adaptive config: `window` must be at least 1 step".into(),
            ));
        }
        if self.min_observations == 0 {
            return Err(invalid(
                "adaptive config: `min_observations` must be at least 1".into(),
            ));
        }
        if self.min_observations > self.window {
            return Err(invalid(format!(
                "adaptive config: `min_observations` ({}) exceeds `window` ({}) — adaptation would never engage",
                self.min_observations, self.window
            )));
        }
        if !self.rate.is_finite() || self.rate <= 0.0 || self.rate > 1.0 {
            return Err(invalid(format!(
                "adaptive config: `rate` must be a finite value in (0, 1], got {}",
                self.rate
            )));
        }
        if self.max_inflation_steps == 0 {
            return Err(invalid(
                "adaptive config: `max_inflation_steps` must be at least 1".into(),
            ));
        }
        if self.thin_support == 0 {
            return Err(invalid(
                "adaptive config: `thin_support` must be at least 1 calibration sample".into(),
            ));
        }
        Ok(())
    }
}

/// The per-stream adaptive state: coverage window + correction notch +
/// last drift classification.
///
/// Deterministic and `O(1)` per [`AdaptiveState::observe`]; persistable as
/// its own artifact kind (see [`crate::persist`]) so a serving process
/// restarts without losing adaptation.
///
/// # Examples
///
/// ```
/// use tauw_core::adaptive::{AdaptiveConfig, AdaptiveState};
///
/// let config = AdaptiveConfig { window: 4, min_observations: 2, ..Default::default() };
/// let mut state = AdaptiveState::new(config).unwrap();
/// // Promise 10% failures, deliver 100%: the correction ratchets up...
/// for _ in 0..4 {
///     let served = state.adapted_bound(0.1);
///     state.observe(served, true);
/// }
/// assert!(state.inflation_steps() > 0);
/// assert!(state.adapted_bound(0.1) > 0.1);
/// // ...and decays once coverage holds again (the notch keeps rising
/// // while old failures are still inside the window, then unwinds one
/// // notch per covered step).
/// for _ in 0..10 {
///     let served = state.adapted_bound(0.1);
///     state.observe(served, false);
/// }
/// assert_eq!(state.inflation_steps(), 0);
/// assert_eq!(state.adapted_bound(0.1), 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveState {
    config: AdaptiveConfig,
    /// Coverage ring: outcome 1 = the step failed, 0 = it did not; the
    /// entry's `uncertainty` slot holds the *served* (adapted) bound, so
    /// the ring's exact certainty aggregates are exactly the promised
    /// failure mass complement.
    coverage: TimeseriesBuffer,
    /// Current correction notch count `k`; the served deficit shrinks by
    /// `(1 + rate)^k`.
    inflation_steps: u32,
    last_drift: DriftSignal,
}

impl AdaptiveState {
    /// Creates a fresh state (empty coverage window, no correction).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the config is invalid
    /// (see [`AdaptiveConfig::validate`]).
    pub fn new(config: AdaptiveConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(AdaptiveState {
            config,
            coverage: TimeseriesBuffer::bounded(config.window),
            inflation_steps: 0,
            last_drift: DriftSignal::Stable,
        })
    }

    /// Rebuilds a state from its parts (the deserialization funnel), with
    /// full cross-field validation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the config is invalid,
    /// the coverage ring's capacity differs from `config.window`, any
    /// coverage entry carries an outcome other than 0/1, or
    /// `inflation_steps` exceeds `config.max_inflation_steps`.
    pub fn from_parts(
        config: AdaptiveConfig,
        coverage: TimeseriesBuffer,
        inflation_steps: u32,
        last_drift: DriftSignal,
    ) -> Result<Self, CoreError> {
        let invalid = |reason: String| CoreError::InvalidInput { reason };
        config.validate()?;
        if coverage.capacity() != Some(config.window) {
            return Err(invalid(format!(
                "adaptive state: coverage window capacity {:?} does not match the configured window {}",
                coverage.capacity(),
                config.window
            )));
        }
        if let Some((i, e)) = coverage.iter().enumerate().find(|(_, e)| e.outcome > 1) {
            return Err(invalid(format!(
                "adaptive state: coverage entry {i} carries outcome {} (must be 0 = covered or 1 = failed)",
                e.outcome
            )));
        }
        if inflation_steps > config.max_inflation_steps {
            return Err(invalid(format!(
                "adaptive state: inflation step count {inflation_steps} exceeds the configured cap {}",
                config.max_inflation_steps
            )));
        }
        Ok(AdaptiveState {
            config,
            coverage,
            inflation_steps,
            last_drift,
        })
    }

    /// The configuration this state was built with.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Current correction notch count `k`.
    pub fn inflation_steps(&self) -> u32 {
        self.inflation_steps
    }

    /// The current multiplicative deficit shrink factor
    /// `(1 + rate)^k` (1.0 when unadapted).
    pub fn inflation_factor(&self) -> f64 {
        (1.0 + self.config.rate).powi(self.inflation_steps as i32)
    }

    /// Read access to the coverage ring (diagnostics, persistence).
    pub fn coverage_window(&self) -> &TimeseriesBuffer {
        &self.coverage
    }

    /// The drift classification of the most recent adaptive step.
    pub fn last_drift(&self) -> DriftSignal {
        self.last_drift
    }

    /// Windowed coverage aggregates in O(1), read straight off the ring's
    /// running per-outcome counters: failures are the outcome-1 count, and
    /// the promised failure mass is `len·1 − Σ certainty` (each entry
    /// promised `bound = 1 − certainty` failure mass, exactly on the
    /// integer grid).
    pub fn coverage(&self) -> CoverageStats {
        let observations = self.coverage.len();
        let certainty_sum =
            self.coverage.certainty_units_sum(0) + self.coverage.certainty_units_sum(1);
        CoverageStats {
            observations,
            failures: self.coverage.agreement_count(1),
            promised_failure_units: (observations as u128) * CERTAINTY_UNIT_ONE - certainty_sum,
        }
    }

    /// O(window) full recompute of [`AdaptiveState::coverage`] — the
    /// verification reference, bitwise identical by construction (both
    /// paths sum the same `u64` unit values).
    pub fn coverage_reference(&self) -> CoverageStats {
        let mut stats = CoverageStats {
            observations: 0,
            failures: 0,
            promised_failure_units: 0,
        };
        for e in self.coverage.iter() {
            stats.observations += 1;
            stats.failures += usize::from(e.outcome != 0);
            stats.promised_failure_units += CERTAINTY_UNIT_ONE - u128::from(e.certainty_units());
        }
        stats
    }

    /// The served bound for a calibrated uncertainty `u`: the certainty
    /// surplus `1 − u` is divided by the inflation factor, pulling the
    /// bound toward 1 without ever crossing it. At `k = 0` this returns
    /// `u` bit-identically (no `1 − (1 − u)` round trip).
    pub fn adapted_bound(&self, uncertainty: f64) -> f64 {
        if self.inflation_steps == 0 {
            uncertainty
        } else {
            1.0 - (1.0 - uncertainty) / self.inflation_factor()
        }
    }

    /// Records one serve/outcome pair and adapts: pushes (failed?, served
    /// bound) into the coverage ring, then moves the correction notch by
    /// at most one — up when the window is undercovered, down when
    /// coverage holds again. O(1) via the incremental
    /// [`AdaptiveState::coverage`] aggregates.
    pub fn observe(&mut self, served_bound: f64, failed: bool) {
        self.coverage.push(u32::from(failed), served_bound);
        let stats = self.coverage();
        self.update_inflation(&stats);
    }

    /// The O(window) verification twin of [`AdaptiveState::observe`]: same
    /// push and notch logic, but driven by
    /// [`AdaptiveState::coverage_reference`]. Bitwise identical by
    /// construction.
    pub fn observe_reference(&mut self, served_bound: f64, failed: bool) {
        self.coverage.push(u32::from(failed), served_bound);
        let stats = self.coverage_reference();
        self.update_inflation(&stats);
    }

    fn update_inflation(&mut self, stats: &CoverageStats) {
        if stats.observations < self.config.min_observations {
            return;
        }
        if stats.undercovered() {
            self.inflation_steps = (self.inflation_steps + 1).min(self.config.max_inflation_steps);
        } else if self.inflation_steps > 0 {
            self.inflation_steps -= 1;
        }
    }

    /// Classifies the stream's current regime given the calibration
    /// support of the leaves the current step routed to (see
    /// [`crate::calibration::TaQim::route_support`]). When the backend
    /// cannot report support ([`RouteSupport::Unsupported`]) and the
    /// window is undercovered, the epistemic-vs-aleatoric split is
    /// undecidable and the explicit [`DriftSignal::SupportUnavailable`]
    /// is returned.
    pub fn classify(&self, support: RouteSupport) -> DriftSignal {
        let stats = self.coverage();
        if stats.observations < self.config.min_observations {
            return DriftSignal::Stable;
        }
        if stats.undercovered() {
            match support {
                RouteSupport::Samples(n) if n < self.config.thin_support => {
                    DriftSignal::Drifting { epistemic: true }
                }
                RouteSupport::Samples(_) => DriftSignal::Noisy,
                RouteSupport::Unsupported => DriftSignal::SupportUnavailable,
            }
        } else if self.inflation_steps > 0 {
            DriftSignal::Drifting { epistemic: false }
        } else {
            DriftSignal::Stable
        }
    }

    /// Remembers the drift classification the serving path just computed
    /// (so [`AdaptiveState::last_drift`] and the engine's
    /// [`crate::engine::TauwEngine::stream_drift`] reflect the latest
    /// step).
    pub(crate) fn record_drift(&mut self, drift: DriftSignal) {
        self.last_drift = drift;
    }

    /// Drops all adaptation: clears the coverage window, zeroes the
    /// correction notch, returns the drift signal to
    /// [`DriftSignal::Stable`].
    pub fn reset(&mut self) {
        self.coverage.clear();
        self.inflation_steps = 0;
        self.last_drift = DriftSignal::Stable;
    }
}

// Serialization uses a canonical field layout and funnels deserialization
// through `from_parts`, so loaded adaptive state cannot bypass the
// cross-field invariants — the same pattern `TimeseriesBuffer` uses.

impl Serialize for AdaptiveState {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("config".to_string(), self.config.serialize()),
            ("coverage".to_string(), self.coverage.serialize()),
            (
                "inflation_steps".to_string(),
                self.inflation_steps.serialize(),
            ),
            ("last_drift".to_string(), self.last_drift.serialize()),
        ])
    }
}

impl Deserialize for AdaptiveState {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = serde::__expect_map(value, "AdaptiveState")?;
        let config = AdaptiveConfig::deserialize(serde::__field(map, "config", "AdaptiveState")?)?;
        let coverage =
            TimeseriesBuffer::deserialize(serde::__field(map, "coverage", "AdaptiveState")?)?;
        let inflation_steps =
            u32::deserialize(serde::__field(map, "inflation_steps", "AdaptiveState")?)?;
        let last_drift =
            DriftSignal::deserialize(serde::__field(map, "last_drift", "AdaptiveState")?)?;
        AdaptiveState::from_parts(config, coverage, inflation_steps, last_drift)
            .map_err(|e| serde::Error::custom(e.to_string()))
    }
}

/// Runs one adaptive step against externally owned fusion-buffer, adaptive
/// state and serving scratch: the shared core [`AdaptiveTauwSession::step`]
/// and [`crate::engine::TauwEngine::step_adaptive`] both delegate to, so a
/// batched adaptive engine step is exactly a session step by construction.
/// With a bounded buffer and warmed scratch the steady state performs no
/// heap allocation (both taQIM lookups assemble their feature row in
/// `scratch.features`, and the coverage window is a ring).
///
/// Order matters and is fixed here once: **serve, then observe**. The
/// adapted bound is computed from the state *before* this step's outcome
/// feeds back, so the bound served for step `i` never peeks at outcome
/// `i`.
pub(crate) fn adaptive_step_with_parts(
    wrapper: &TimeseriesAwareWrapper,
    buffer: &mut TimeseriesBuffer,
    state: &mut AdaptiveState,
    scratch: &mut ServingScratch,
    quality_factors: &[f64],
    outcome: u32,
    failed: bool,
) -> Result<TauwStep, CoreError> {
    let mut step = wrapper.step_with_parts(buffer, scratch, quality_factors, outcome)?;
    step.adapted_uncertainty = state.adapted_bound(step.uncertainty);
    let support = wrapper.route_support_with_scratch(scratch, quality_factors, &step.taqf)?;
    step.drift = state.classify(support);
    state.record_drift(step.drift);
    state.observe(step.adapted_uncertainty, failed);
    Ok(step)
}

/// A single-stream adaptive serving session: a classic [`TauwSession`]'s
/// fusion buffer plus an [`AdaptiveState`] feedback loop.
///
/// [`TauwSession`]: crate::tauw::TauwSession
#[derive(Debug, Clone)]
pub struct AdaptiveTauwSession<'w> {
    wrapper: &'w TimeseriesAwareWrapper,
    buffer: TimeseriesBuffer,
    state: AdaptiveState,
    scratch: ServingScratch,
}

impl TimeseriesAwareWrapper {
    /// Starts an adaptive runtime session: the classic serving path plus
    /// the online coverage feedback loop of [`AdaptiveState`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the config is invalid.
    pub fn new_adaptive_session(
        &self,
        config: AdaptiveConfig,
    ) -> Result<AdaptiveTauwSession<'_>, CoreError> {
        Ok(AdaptiveTauwSession {
            wrapper: self,
            buffer: TimeseriesBuffer::with_capacity(32),
            state: AdaptiveState::new(config)?,
            scratch: ServingScratch::new(),
        })
    }
}

impl AdaptiveTauwSession<'_> {
    /// Clears the *fusion* buffer at the onset of a new timeseries (new
    /// physical object reported by tracking) — exactly like
    /// [`crate::tauw::TauwSession::begin_series`], including the lifetime
    /// step counter reset. The adaptive coverage window deliberately
    /// survives: drift is a property of the *stream* (the camera, the
    /// deployment site), not of the individual tracked object. Call
    /// [`AdaptiveTauwSession::reset_adaptation`] to also drop adaptation.
    pub fn begin_series(&mut self) {
        self.buffer.clear();
    }

    /// Drops all adaptation state (see [`AdaptiveState::reset`]).
    pub fn reset_adaptation(&mut self) {
        self.state.reset();
    }

    /// Read access to the adaptive state (diagnostics, persistence).
    pub fn adaptive_state(&self) -> &AdaptiveState {
        &self.state
    }

    /// Replaces the adaptive state (resuming a persisted stream).
    pub fn import_adaptive_state(&mut self, state: AdaptiveState) {
        self.state = state;
    }

    /// Read access to the fusion buffer (for diagnostics).
    pub fn buffer(&self) -> &TimeseriesBuffer {
        &self.buffer
    }

    /// The drift classification of the most recent step.
    pub fn drift(&self) -> DriftSignal {
        self.state.last_drift()
    }

    /// Processes one timestep with coverage feedback: quality factors +
    /// DDM outcome in, classic [`TauwStep`] fields plus
    /// [`TauwStep::adapted_uncertainty`] and [`TauwStep::drift`] out.
    /// `failed` is the realized ground truth for *this* step (fed back
    /// only after the adapted bound is computed — serve-then-observe).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn step(
        &mut self,
        quality_factors: &[f64],
        outcome: u32,
        failed: bool,
    ) -> Result<TauwStep, CoreError> {
        adaptive_step_with_parts(
            self.wrapper,
            &mut self.buffer,
            &mut self.state,
            &mut self.scratch,
            quality_factors,
            outcome,
            failed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window: usize, min_observations: usize) -> AdaptiveConfig {
        AdaptiveConfig {
            window,
            min_observations,
            ..Default::default()
        }
    }

    #[test]
    fn fresh_state_serves_calibrated_bounds_bit_identically() {
        let state = AdaptiveState::new(AdaptiveConfig::default()).unwrap();
        for &u in &[0.0, 0.12345, 0.5, 0.999, 1.0] {
            assert_eq!(state.adapted_bound(u).to_bits(), u.to_bits());
        }
    }

    #[test]
    fn undercoverage_ratchets_inflation_up_and_recovery_decays_it() {
        let mut state = AdaptiveState::new(config(4, 2)).unwrap();
        for _ in 0..6 {
            let served = state.adapted_bound(0.1);
            state.observe(served, true);
        }
        let peak = state.inflation_steps();
        assert!(peak > 0);
        assert!(state.adapted_bound(0.1) > 0.1);
        assert!(state.adapted_bound(0.1) < 1.0);
        for _ in 0..20 {
            let served = state.adapted_bound(0.1);
            state.observe(served, false);
        }
        assert_eq!(state.inflation_steps(), 0);
        assert_eq!(state.adapted_bound(0.1).to_bits(), 0.1f64.to_bits());
    }

    #[test]
    fn inflation_respects_the_configured_cap() {
        let mut state = AdaptiveState::new(AdaptiveConfig {
            window: 4,
            min_observations: 1,
            max_inflation_steps: 3,
            ..Default::default()
        })
        .unwrap();
        for _ in 0..50 {
            state.observe(0.0, true);
        }
        assert_eq!(state.inflation_steps(), 3);
        assert!(state.adapted_bound(0.5) < 1.0);
    }

    #[test]
    fn incremental_coverage_matches_reference() {
        let mut state = AdaptiveState::new(config(5, 2)).unwrap();
        let bounds = [0.1, 0.9, 0.25, 0.0, 1.0, 0.33, 0.77, 0.5];
        for (i, &b) in bounds.iter().enumerate() {
            state.observe(b, i % 3 == 0);
            assert_eq!(state.coverage(), state.coverage_reference());
        }
    }

    #[test]
    fn adaptation_waits_for_min_observations() {
        let mut state = AdaptiveState::new(config(10, 5)).unwrap();
        for _ in 0..4 {
            state.observe(0.0, true);
            assert_eq!(state.inflation_steps(), 0);
            assert_eq!(
                state.classify(RouteSupport::Samples(0)),
                DriftSignal::Stable
            );
        }
        state.observe(0.0, true);
        assert_eq!(state.inflation_steps(), 1);
    }

    #[test]
    fn classify_separates_epistemic_from_aleatoric() {
        let mut state = AdaptiveState::new(AdaptiveConfig {
            window: 4,
            min_observations: 2,
            thin_support: 100,
            ..Default::default()
        })
        .unwrap();
        for _ in 0..4 {
            state.observe(0.05, true);
        }
        assert!(state.coverage().undercovered());
        assert_eq!(
            state.classify(RouteSupport::Samples(10)),
            DriftSignal::Drifting { epistemic: true }
        );
        assert_eq!(
            state.classify(RouteSupport::Samples(500)),
            DriftSignal::Noisy
        );
        // A leafless backend can't feed the split: the outcome is the
        // explicit SupportUnavailable, not a silent default.
        assert_eq!(
            state.classify(RouteSupport::Unsupported),
            DriftSignal::SupportUnavailable
        );
        // Recover: plenty of successes; residual inflation → non-epistemic drift.
        for _ in 0..4 {
            state.observe(1.0, false);
        }
        assert!(!state.coverage().undercovered());
        assert!(state.inflation_steps() > 0);
        assert_eq!(
            state.classify(RouteSupport::Samples(500)),
            DriftSignal::Drifting { epistemic: false }
        );
        // Outside the undercovered window the split never consults
        // support, so Unsupported stays a quiet non-event.
        assert_eq!(
            state.classify(RouteSupport::Unsupported),
            DriftSignal::Drifting { epistemic: false }
        );
    }

    #[test]
    fn reset_returns_to_the_fresh_state() {
        let mut state = AdaptiveState::new(config(4, 1)).unwrap();
        for _ in 0..6 {
            state.observe(0.0, true);
        }
        assert!(state.inflation_steps() > 0);
        state.reset();
        let fresh = AdaptiveState::new(config(4, 1)).unwrap();
        assert_eq!(state, fresh);
        assert_eq!(state.last_drift(), DriftSignal::Stable);
    }

    #[test]
    fn config_validation_names_the_offending_field() {
        let cases: [(AdaptiveConfig, &str); 6] = [
            (
                AdaptiveConfig {
                    window: 0,
                    ..Default::default()
                },
                "`window`",
            ),
            (
                AdaptiveConfig {
                    min_observations: 0,
                    ..Default::default()
                },
                "`min_observations`",
            ),
            (
                AdaptiveConfig {
                    window: 5,
                    min_observations: 6,
                    ..Default::default()
                },
                "`min_observations`",
            ),
            (
                AdaptiveConfig {
                    rate: f64::NAN,
                    ..Default::default()
                },
                "`rate`",
            ),
            (
                AdaptiveConfig {
                    max_inflation_steps: 0,
                    ..Default::default()
                },
                "`max_inflation_steps`",
            ),
            (
                AdaptiveConfig {
                    thin_support: 0,
                    ..Default::default()
                },
                "`thin_support`",
            ),
        ];
        for (cfg, field) in cases {
            let err = AdaptiveState::new(cfg).unwrap_err().to_string();
            assert!(err.contains(field), "{err} should mention {field}");
        }
        assert!(AdaptiveState::new(AdaptiveConfig {
            rate: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(AdaptiveState::new(AdaptiveConfig {
            rate: 1.5,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn from_parts_rejects_inconsistent_state() {
        let cfg = config(4, 2);
        // Capacity mismatch.
        let err =
            AdaptiveState::from_parts(cfg, TimeseriesBuffer::bounded(5), 0, DriftSignal::Stable)
                .unwrap_err()
                .to_string();
        assert!(err.contains("coverage window capacity"), "{err}");
        // Non-binary outcome in the coverage ring.
        let mut bad = TimeseriesBuffer::bounded(4);
        bad.push(2, 0.5);
        let err = AdaptiveState::from_parts(cfg, bad, 0, DriftSignal::Stable)
            .unwrap_err()
            .to_string();
        assert!(err.contains("outcome 2"), "{err}");
        // Inflation count above the cap.
        let err = AdaptiveState::from_parts(
            cfg,
            TimeseriesBuffer::bounded(4),
            cfg.max_inflation_steps + 1,
            DriftSignal::Stable,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("inflation step count"), "{err}");
    }

    #[test]
    fn serde_round_trips_through_from_parts() {
        let mut state = AdaptiveState::new(config(6, 3)).unwrap();
        for i in 0..10 {
            state.observe(0.2 + 0.05 * i as f64, i % 2 == 0);
        }
        state.record_drift(DriftSignal::Drifting { epistemic: true });
        let value = state.serialize();
        let back = AdaptiveState::deserialize(&value).unwrap();
        assert_eq!(back, state);
        assert_eq!(back.last_drift(), DriftSignal::Drifting { epistemic: true });
    }

    #[test]
    fn drift_signal_serde_covers_all_variants() {
        for signal in [
            DriftSignal::Stable,
            DriftSignal::Noisy,
            DriftSignal::Drifting { epistemic: true },
            DriftSignal::Drifting { epistemic: false },
            DriftSignal::SupportUnavailable,
        ] {
            let back = DriftSignal::deserialize(&signal.serialize()).unwrap();
            assert_eq!(back, signal);
        }
    }
}
