//! Error type for the wrapper framework.

use std::error::Error;
use std::fmt;
use tauw_dtree::DtreeError;
use tauw_stats::StatsError;

/// Errors produced by `tauw-core`.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An underlying decision-tree operation failed.
    Tree(DtreeError),
    /// An underlying statistical routine failed.
    Stats(StatsError),
    /// Training/calibration input was structurally invalid.
    InvalidInput {
        /// Description of what was wrong.
        reason: String,
    },
    /// A runtime query was made before the wrapper saw any outcome for the
    /// current series.
    EmptySeries,
    /// Feature vector arity did not match the wrapper's quality model.
    FeatureArityMismatch {
        /// Expected number of features.
        expected: usize,
        /// Provided number of features.
        actual: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tree(e) => write!(f, "decision tree error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            CoreError::EmptySeries => {
                write!(f, "no outcomes recorded for the current series yet")
            }
            CoreError::FeatureArityMismatch { expected, actual } => {
                write!(f, "quality model expects {expected} features, got {actual}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tree(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DtreeError> for CoreError {
    fn from(e: DtreeError) -> Self {
        CoreError::Tree(e)
    }
}

impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: CoreError = DtreeError::EmptyDataset.into();
        assert!(e.source().is_some());
        let e: CoreError = StatsError::EmptyInput { name: "x" }.into();
        assert!(e.to_string().contains("statistics error"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
