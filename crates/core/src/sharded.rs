//! Sharded service-grade serving: many [`TauwEngine`]s behind one front
//! end.
//!
//! One [`TauwEngine`] is a single-owner map of stream buffers stepped in
//! waves — fine for thousands of streams, a ceiling for millions. The
//! [`ShardedEngine`] owns `K` engine shards keyed by a deterministic
//! [`StreamId`] hash and adds the three service-grade properties a
//! long-running deployment needs:
//!
//! * **Wave batching across shards** — [`ShardedEngine::step_many`]
//!   partitions a batch by shard, dispatches **one** engine wave per shard
//!   fanned over [`parallel`], and merges the per-shard results back into
//!   input order. Because every stream's state is self-contained and lives
//!   in exactly one shard, the results are bit-identical to N sequential
//!   [`crate::tauw::TauwSession`]s at *any* shard count and thread budget
//!   (asserted by `tests/determinism.rs` and the resharding proptest).
//! * **Admission control** — a configurable per-shard live-stream cap
//!   turns unbounded map growth into a typed [`Admission`] outcome.
//!   [`ShardedEngine::end_stream`] reclaims capacity (and, via the
//!   engine's wave-scratch shrink path, the retired stream's share of the
//!   slot pool).
//! * **Live snapshot/restore** — [`ShardedEngine::snapshot_shard`] exports
//!   one shard's complete per-stream state as an [`EngineShardState`]
//!   artifact through the versioned persistence layer
//!   ([`crate::persist::FORMAT_VERSION`], kind `EngineShard`).
//!   [`ShardedEngine::restore`] re-hashes the streams into the *current*
//!   shard layout, so a snapshot taken at K shards restores into K' shards
//!   with bit-identical estimates from there on.
//!
//! # Shard hash
//!
//! Streams map to shards via a SplitMix64 finalizer over the raw
//! [`StreamId`] modulo the shard count. The finalizer is a fixed, platform
//! independent bijection on `u64`, so the assignment is stable across
//! processes and hosts (snapshots rely on this only for balance, not for
//! correctness: restore re-hashes under the current shard count).
//!
//! # Example
//!
//! ```
//! use tauw_core::calibration::CalibrationOptions;
//! use tauw_core::engine::{StreamId, StreamStep};
//! use tauw_core::sharded::{Admission, ShardedEngine};
//! use tauw_core::tauw::TauwBuilder;
//! use tauw_core::training::{TrainingSeries, TrainingStep};
//! use tauw_core::wrapper::WrapperBuilder;
//!
//! // Train a tiny wrapper (same toy world as the crate quickstart).
//! let series = |q: f64, outcomes: &[u32]| TrainingSeries {
//!     true_outcome: 0,
//!     steps: outcomes
//!         .iter()
//!         .map(|&o| TrainingStep { quality_factors: vec![q], outcome: o })
//!         .collect(),
//! };
//! let mut train = Vec::new();
//! let mut calib = Vec::new();
//! for i in 0..120 {
//!     let q = (i % 12) as f64 / 12.0;
//!     let outcomes: Vec<u32> = (0..10).map(|j| u32::from(q > 0.6 && j % 3 == 0)).collect();
//!     train.push(series(q, &outcomes));
//!     calib.push(series(q, &outcomes));
//! }
//! let mut wb = WrapperBuilder::new();
//! wb.max_depth(3).calibration(CalibrationOptions {
//!     min_samples_per_leaf: 50,
//!     confidence: 0.99,
//!     ..Default::default()
//! });
//! let mut builder = TauwBuilder::new();
//! builder.wrapper(wb);
//! let tauw = builder.fit(vec!["q".into()], &train, &calib)?;
//!
//! // Four engine shards behind one front end, at most 2 live streams per
//! // shard.
//! let mut engine = ShardedEngine::new(tauw, 4);
//! engine.max_streams_per_shard(2);
//! let batch = vec![
//!     StreamStep::new(StreamId(1), vec![0.1], 0),
//!     StreamStep::new(StreamId(2), vec![0.9], 1),
//! ];
//! let steps = engine.step_many(&batch)?;
//! assert_eq!(steps.len(), 2);
//! assert_eq!(engine.n_streams(), 2);
//! assert!(matches!(engine.admission(StreamId(1)), Admission::Accepted { .. }));
//!
//! // Snapshot every shard, restore into a *different* shard count: the
//! // stream state re-hashes and serving continues bit-identically.
//! let snapshots = engine.snapshot();
//! let mut resharded = ShardedEngine::new(engine.wrapper().clone(), 7);
//! for shard_state in &snapshots {
//!     resharded.restore(shard_state)?;
//! }
//! assert_eq!(resharded.n_streams(), 2);
//! # Ok::<(), tauw_core::CoreError>(())
//! ```

use crate::adaptive::{AdaptiveConfig, AdaptiveState, DriftSignal};
use crate::buffer::TimeseriesBuffer;
use crate::engine::{AdaptiveStreamStep, StreamId, StreamStep, TauwEngine};
use crate::error::CoreError;
use crate::tauw::{TauwStep, TimeseriesAwareWrapper};
use crate::training::TrainingSeries;
use serde::{Deserialize, Serialize};

/// Outcome of an admission check: either the stream is (or may become)
/// live on a shard, or the shard is at its live-stream cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a rejected admission means the stream is NOT being served"]
pub enum Admission {
    /// The stream is live on `shard`, or there is capacity for it there.
    Accepted {
        /// The shard serving (or about to serve) the stream.
        shard: usize,
    },
    /// The stream cannot be admitted.
    Rejected {
        /// Why admission failed.
        reason: AdmissionReason,
    },
}

impl Admission {
    /// Whether the stream is (or may become) live.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Admission::Accepted { .. })
    }
}

/// Why a stream was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionReason {
    /// The stream's shard is at its configured live-stream cap.
    ShardFull {
        /// The shard the stream hashes to.
        shard: usize,
        /// Live streams currently on that shard.
        live: usize,
        /// The configured per-shard cap.
        cap: usize,
    },
}

impl std::fmt::Display for AdmissionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionReason::ShardFull { shard, live, cap } => {
                write!(f, "shard {shard} is at its live-stream cap ({live}/{cap})")
            }
        }
    }
}

fn admission_error(stream: StreamId, reason: AdmissionReason) -> CoreError {
    CoreError::InvalidInput {
        reason: format!(
            "admission rejected for {stream}: {reason} — end finished streams \
             (`ShardedEngine::end_stream`) to reclaim capacity, or raise \
             `max_streams_per_shard`"
        ),
    }
}

/// SplitMix64 finalizer: a fixed, platform-independent bijection on `u64`
/// used as the shard hash. Sequential stream ids (0, 1, 2, …) scatter
/// uniformly instead of landing on consecutive shards.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One engine shard plus its reusable per-wave scaffolding.
#[derive(Debug, Clone)]
struct Shard {
    engine: TauwEngine,
    /// Global batch positions routed to this shard, in batch order.
    positions: Vec<usize>,
}

/// A snapshot of one shard's complete per-stream runtime state: the
/// restartable half of a serving process. Model state (the trained
/// wrapper) is persisted separately via
/// [`crate::tauw::TimeseriesAwareWrapper::save`]; stream state is what a
/// restart would otherwise lose.
///
/// Produced by [`ShardedEngine::snapshot_shard`], persisted via
/// [`EngineShardState::save`]/[`EngineShardState::to_artifact_json`]
/// (artifact kind `EngineShard`), and re-installed — under *any* shard
/// count — via [`ShardedEngine::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineShardState {
    /// Index of the shard this snapshot was taken from.
    pub shard: usize,
    /// Shard count of the engine at snapshot time (provenance metadata;
    /// restore re-hashes, so it does not need to match the restoring
    /// engine).
    pub n_shards: usize,
    /// Per-stream runtime state, in ascending stream-id order.
    pub streams: Vec<StreamState>,
}

/// One stream's complete, self-contained runtime state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamState {
    /// The stream.
    pub stream: StreamId,
    /// The stream's fusion window (ring buffer + running aggregates).
    pub buffer: TimeseriesBuffer,
    /// The stream's online-calibration state, when adaptation was active.
    pub adaptive: Option<AdaptiveState>,
}

impl EngineShardState {
    /// Re-establishes the snapshot invariants after deserialization. The
    /// component types validate themselves on load (buffers via
    /// `TimeseriesBuffer::from_parts`, adaptive state via
    /// `AdaptiveState::from_parts`); this checks the shard-level shape.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the shard index is out of
    /// range for the recorded shard count or the stream list is not
    /// strictly ascending by id.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.n_shards == 0 || self.shard >= self.n_shards {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "engine-shard snapshot carries shard index {} of {} shards",
                    self.shard, self.n_shards
                ),
            });
        }
        for pair in self.streams.windows(2) {
            if pair[0].stream >= pair[1].stream {
                return Err(CoreError::InvalidInput {
                    reason: format!(
                        "engine-shard snapshot streams are not strictly ascending: \
                         {} precedes {}",
                        pair[0].stream, pair[1].stream
                    ),
                });
            }
        }
        Ok(())
    }
}

/// K [`TauwEngine`] shards behind one batched, admission-controlled,
/// snapshot-restartable front end. See the [module docs](self) for the
/// serving model and an end-to-end example.
///
/// Each shard engine is pinned to one thread; parallelism comes from
/// fanning the *shards* over the front end's thread budget, so size
/// `n_shards` at or above the hardware threads you want to occupy.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    n_threads: Option<usize>,
    max_streams_per_shard: Option<usize>,
    adaptive_config: Option<AdaptiveConfig>,
    /// Reusable batch-order scatter table for the merge step.
    results: Vec<Option<TauwStep>>,
    /// Reusable `(shard, stream)` scratch for batch admission checks.
    admit_scratch: Vec<(usize, StreamId)>,
}

impl ShardedEngine {
    /// Creates a front end over `n_shards` engine shards (clamped to ≥ 1),
    /// each serving an identical copy of the trained wrapper.
    pub fn new(wrapper: TimeseriesAwareWrapper, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let shards = (0..n_shards)
            .map(|_| {
                let mut engine = TauwEngine::new(wrapper.clone());
                engine.threads(1);
                Shard {
                    engine,
                    positions: Vec::new(),
                }
            })
            .collect();
        ShardedEngine {
            shards,
            n_threads: None,
            max_streams_per_shard: None,
            adaptive_config: None,
            results: Vec::new(),
            admit_scratch: Vec::new(),
        }
    }

    /// Number of engine shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a stream hashes to (see the [module docs](self)).
    pub fn shard_of(&self, stream: StreamId) -> usize {
        (splitmix64(stream.0) % self.shards.len() as u64) as usize
    }

    /// Pins the shard-level thread budget for the batched step paths
    /// (clamped to ≥ 1). Unpinned front ends use [`parallel::max_threads`].
    /// Results are bit-identical for every budget.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.n_threads = Some(n.max(1));
        self
    }

    /// Bounds every newly created stream buffer to a sliding window of
    /// `capacity` steps on all shards (see
    /// [`TauwEngine::buffer_capacity`]).
    pub fn buffer_capacity(&mut self, capacity: usize) -> &mut Self {
        for shard in &mut self.shards {
            shard.engine.buffer_capacity(capacity);
        }
        self
    }

    /// Caps the number of live streams per shard (clamped to ≥ 1).
    /// Uncapped by default. Once a shard is full, new streams are refused
    /// — [`ShardedEngine::admission`] returns [`Admission::Rejected`] and
    /// the step paths error without touching any stream state — until
    /// [`ShardedEngine::end_stream`] reclaims capacity. Streams already
    /// live above a newly lowered cap keep serving; the cap gates
    /// *admission*, not eviction.
    pub fn max_streams_per_shard(&mut self, cap: usize) -> &mut Self {
        self.max_streams_per_shard = Some(cap.max(1));
        self
    }

    /// Turns on online adaptive calibration on every shard (see
    /// [`TauwEngine::enable_adaptation`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the config is invalid.
    pub fn enable_adaptation(&mut self, config: AdaptiveConfig) -> Result<(), CoreError> {
        config.validate()?;
        for shard in &mut self.shards {
            shard.engine.enable_adaptation(config)?;
        }
        self.adaptive_config = Some(config);
        Ok(())
    }

    /// The adaptive configuration, if adaptation is enabled.
    pub fn adaptive_config(&self) -> Option<AdaptiveConfig> {
        self.adaptive_config
    }

    /// The trained wrapper the front end serves (every shard holds an
    /// identical copy).
    pub fn wrapper(&self) -> &TimeseriesAwareWrapper {
        self.shards[0].engine.wrapper()
    }

    /// Total live streams across all shards.
    pub fn n_streams(&self) -> usize {
        self.shards.iter().map(|s| s.engine.n_streams()).sum()
    }

    /// Live streams on one shard, or `None` for an out-of-range index.
    pub fn shard_n_streams(&self, shard: usize) -> Option<usize> {
        self.shards.get(shard).map(|s| s.engine.n_streams())
    }

    /// All live stream ids across shards, in ascending order.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self
            .shards
            .iter()
            .flat_map(|s| s.engine.stream_ids())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Steps currently buffered for a stream, or `None` if unknown.
    pub fn stream_len(&self, stream: StreamId) -> Option<usize> {
        self.shard_engine(stream).stream_len(stream)
    }

    /// Lifetime steps of a stream's current series, or `None` if unknown.
    pub fn stream_total_steps(&self, stream: StreamId) -> Option<u64> {
        self.shard_engine(stream).stream_total_steps(stream)
    }

    /// A stream's adaptive state, or `None` if it has none yet.
    pub fn adaptive_state(&self, stream: StreamId) -> Option<&AdaptiveState> {
        self.shard_engine(stream).adaptive_state(stream)
    }

    /// The drift classification of a stream's most recent adaptive step.
    pub fn stream_drift(&self, stream: StreamId) -> Option<DriftSignal> {
        self.shard_engine(stream).stream_drift(stream)
    }

    fn shard_engine(&self, stream: StreamId) -> &TauwEngine {
        &self.shards[self.shard_of(stream)].engine
    }

    /// Non-mutating admission check: where the stream would be served, or
    /// why it cannot be.
    pub fn admission(&self, stream: StreamId) -> Admission {
        let shard = self.shard_of(stream);
        let engine = &self.shards[shard].engine;
        if engine.stream_len(stream).is_some() {
            return Admission::Accepted { shard };
        }
        match self.max_streams_per_shard {
            Some(cap) if engine.n_streams() >= cap => Admission::Rejected {
                reason: AdmissionReason::ShardFull {
                    shard,
                    live: engine.n_streams(),
                    cap,
                },
            },
            _ => Admission::Accepted { shard },
        }
    }

    /// Admits a stream: on [`Admission::Accepted`] the stream is
    /// registered (created empty if new) and its capacity claimed, so a
    /// subsequent step cannot be refused by a race with other admissions.
    /// Already-live streams are re-accepted untouched.
    pub fn admit(&mut self, stream: StreamId) -> Admission {
        let admission = self.admission(stream);
        if let Admission::Accepted { shard } = admission {
            let engine = &mut self.shards[shard].engine;
            if engine.stream_len(stream).is_none() {
                engine.begin_series(stream);
            }
        }
        admission
    }

    /// Clears a stream's buffer (new physical object on that stream),
    /// creating the stream if capacity allows — the sharded counterpart of
    /// [`TauwEngine::begin_series`], with admission made explicit in the
    /// return value.
    pub fn begin_series(&mut self, stream: StreamId) -> Admission {
        let admission = self.admission(stream);
        if let Admission::Accepted { shard } = admission {
            self.shards[shard].engine.begin_series(stream);
        }
        admission
    }

    /// Removes a stream entirely, reclaiming its admission capacity (and
    /// its share of the shard's wave slot pool). Returns whether the
    /// stream existed.
    pub fn end_stream(&mut self, stream: StreamId) -> bool {
        let shard = self.shard_of(stream);
        self.shards[shard].engine.end_stream(stream)
    }

    /// Removes all streams on all shards.
    pub fn clear_streams(&mut self) {
        for shard in &mut self.shards {
            shard.engine.clear_streams();
        }
    }

    /// Processes one timestep on one stream, admitting it first.
    /// Equivalent to [`TauwEngine::step`] on the stream's shard.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch or a rejected
    /// admission; no stream state is created or modified on error.
    pub fn step(
        &mut self,
        stream: StreamId,
        quality_factors: &[f64],
        outcome: u32,
    ) -> Result<TauwStep, CoreError> {
        let shard = match self.admission(stream) {
            Admission::Accepted { shard } => shard,
            Admission::Rejected { reason } => return Err(admission_error(stream, reason)),
        };
        self.shards[shard]
            .engine
            .step(stream, quality_factors, outcome)
    }

    /// Adaptive variant of [`ShardedEngine::step`] (see
    /// [`TauwEngine::step_adaptive`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when adaptation is not enabled, on
    /// feature-arity mismatch, or on a rejected admission; no stream state
    /// is created or modified on error.
    pub fn step_adaptive(
        &mut self,
        stream: StreamId,
        quality_factors: &[f64],
        outcome: u32,
        failed: bool,
    ) -> Result<TauwStep, CoreError> {
        let shard = match self.admission(stream) {
            Admission::Accepted { shard } => shard,
            Admission::Rejected { reason } => return Err(admission_error(stream, reason)),
        };
        self.shards[shard]
            .engine
            .step_adaptive(stream, quality_factors, outcome, failed)
    }

    /// Processes a batch of steps spanning any number of streams and
    /// shards, returning one [`TauwStep`] per input **in batch order**.
    ///
    /// The batch is partitioned by shard (batch order preserved within
    /// each shard, so same-stream steps still see each other's effects in
    /// order), one engine wave is dispatched per shard fanned over the
    /// front end's thread budget, and the per-shard results are merged
    /// back into input order. Bit-identical to N sequential sessions at
    /// any shard count and thread budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch of any entry or a
    /// rejected admission of any new stream; the batch is validated up
    /// front, so on error no stream state has been modified.
    pub fn step_many(&mut self, batch: &[StreamStep]) -> Result<Vec<TauwStep>, CoreError> {
        self.step_many_impl(batch.len(), |i| {
            let step = &batch[i];
            (step.stream, step.quality_factors.as_slice(), step.outcome)
        })
    }

    /// Zero-copy variant of [`ShardedEngine::step_many`] over borrowed
    /// quality-factor slices. Identical semantics and results.
    ///
    /// # Errors
    ///
    /// As for [`ShardedEngine::step_many`].
    pub fn step_many_borrowed(
        &mut self,
        batch: &[(StreamId, &[f64], u32)],
    ) -> Result<Vec<TauwStep>, CoreError> {
        self.step_many_impl(batch.len(), |i| batch[i])
    }

    fn step_many_impl<'a, F>(&mut self, n: usize, get: F) -> Result<Vec<TauwStep>, CoreError>
    where
        F: Fn(usize) -> (StreamId, &'a [f64], u32) + Sync,
    {
        self.precheck_batch(n, |i| {
            let (stream, quality_factors, _) = get(i);
            (stream, quality_factors.len())
        })?;
        self.route_batch(n, |i| get(i).0);
        let threads = self.n_threads.unwrap_or_else(parallel::max_threads).max(1);
        let per_shard: Vec<Result<Vec<TauwStep>, CoreError>> =
            parallel::par_map_mut(threads, &mut self.shards, |shard| {
                let Shard { engine, positions } = shard;
                engine.step_many_impl(positions.len(), |j| get(positions[j]))
            });
        self.merge_waves(n, per_shard)
    }

    /// Adaptive variant of [`ShardedEngine::step_many`] (see
    /// [`TauwEngine::step_many_adaptive`] for the per-stream semantics).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when adaptation is not enabled, on
    /// feature-arity mismatch of any entry, or on a rejected admission of
    /// any new stream; the batch is validated up front, so on error no
    /// stream state has been modified.
    pub fn step_many_adaptive(
        &mut self,
        batch: &[AdaptiveStreamStep],
    ) -> Result<Vec<TauwStep>, CoreError> {
        if self.adaptive_config.is_none() {
            return Err(CoreError::InvalidInput {
                reason: "adaptive serving is not enabled — call \
                         `ShardedEngine::enable_adaptation` first"
                    .into(),
            });
        }
        self.precheck_batch(batch.len(), |i| {
            (batch[i].stream, batch[i].quality_factors.len())
        })?;
        self.route_batch(batch.len(), |i| batch[i].stream);
        let threads = self.n_threads.unwrap_or_else(parallel::max_threads).max(1);
        let per_shard: Vec<Result<Vec<TauwStep>, CoreError>> =
            parallel::par_map_mut(threads, &mut self.shards, |shard| {
                let Shard { engine, positions } = shard;
                engine.step_many_adaptive_impl(positions.len(), |j| {
                    let entry = &batch[positions[j]];
                    (
                        entry.stream,
                        entry.quality_factors.as_slice(),
                        entry.outcome,
                        entry.failed,
                    )
                })
            });
        self.merge_waves(batch.len(), per_shard)
    }

    /// Replays a batch of series as concurrent streams, one wave per
    /// timestep — the sharded counterpart of
    /// [`TauwEngine::step_series_waves`], with identical semantics and
    /// bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch or rejected
    /// admissions.
    pub fn step_series_waves(
        &mut self,
        series: &[TrainingSeries],
    ) -> Result<Vec<Vec<TauwStep>>, CoreError> {
        for s in 0..series.len() {
            if let Admission::Rejected { reason } = self.begin_series(StreamId(s as u64)) {
                return Err(admission_error(StreamId(s as u64), reason));
            }
        }
        let window_len = series.iter().map(TrainingSeries::len).max().unwrap_or(0);
        let mut out: Vec<Vec<TauwStep>> =
            series.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let mut positions: Vec<usize> = Vec::with_capacity(series.len());
        let mut batch: Vec<(StreamId, &[f64], u32)> = Vec::with_capacity(series.len());
        for j in 0..window_len {
            positions.clear();
            batch.clear();
            for (s, ts) in series.iter().enumerate() {
                if let Some(step) = ts.steps.get(j) {
                    positions.push(s);
                    batch.push((
                        StreamId(s as u64),
                        step.quality_factors.as_slice(),
                        step.outcome,
                    ));
                }
            }
            if batch.is_empty() {
                break;
            }
            for (&s, step) in positions.iter().zip(self.step_many_borrowed(&batch)?) {
                out[s].push(step);
            }
        }
        Ok(out)
    }

    /// Up-front whole-batch validation: feature arity of every entry, then
    /// admission of every *new* stream against the per-shard cap. Failing
    /// here guarantees no shard has been touched.
    fn precheck_batch(
        &mut self,
        n: usize,
        entry: impl Fn(usize) -> (StreamId, usize),
    ) -> Result<(), CoreError> {
        for i in 0..n {
            self.shards[0].engine.check_arity(entry(i).1)?;
        }
        self.precheck_admissions(n, |i| entry(i).0)
    }

    /// Admission half of the batch precheck: every *new* stream must fit
    /// under the per-shard cap, counting the batch's own new streams
    /// against it. Reports the first stream that would overflow.
    fn precheck_admissions(
        &mut self,
        n: usize,
        stream_of: impl Fn(usize) -> StreamId,
    ) -> Result<(), CoreError> {
        let Some(cap) = self.max_streams_per_shard else {
            return Ok(());
        };
        let mut scratch = std::mem::take(&mut self.admit_scratch);
        scratch.clear();
        for i in 0..n {
            let stream = stream_of(i);
            let shard = self.shard_of(stream);
            if self.shards[shard].engine.stream_len(stream).is_none() {
                scratch.push((shard, stream));
            }
        }
        scratch.sort_unstable();
        scratch.dedup();
        let mut outcome = Ok(());
        let mut idx = 0;
        'shards: while idx < scratch.len() {
            let shard = scratch[idx].0;
            let live = self.shards[shard].engine.n_streams();
            let mut admitted = 0;
            while idx < scratch.len() && scratch[idx].0 == shard {
                if live + admitted >= cap {
                    outcome = Err(admission_error(
                        scratch[idx].1,
                        AdmissionReason::ShardFull { shard, live, cap },
                    ));
                    break 'shards;
                }
                admitted += 1;
                idx += 1;
            }
        }
        self.admit_scratch = scratch;
        outcome
    }

    /// Routes batch positions into the per-shard dispatch lists (reused
    /// across waves; batch order is preserved within each shard).
    fn route_batch(&mut self, n: usize, stream_of: impl Fn(usize) -> StreamId) {
        for shard in &mut self.shards {
            shard.positions.clear();
        }
        for i in 0..n {
            let shard = self.shard_of(stream_of(i));
            self.shards[shard].positions.push(i);
        }
    }

    /// Merges the per-shard wave results back into batch order through the
    /// reusable scatter table. Errors report the lowest affected shard.
    /// The returned `Vec` is the one allocation inherent to the API.
    fn merge_waves(
        &mut self,
        n: usize,
        per_shard: Vec<Result<Vec<TauwStep>, CoreError>>,
    ) -> Result<Vec<TauwStep>, CoreError> {
        let results = &mut self.results;
        results.clear();
        results.resize(n, None);
        let mut first_err: Option<CoreError> = None;
        for (shard, outcome) in self.shards.iter().zip(per_shard) {
            match outcome {
                Ok(steps) => {
                    for (&i, step) in shard.positions.iter().zip(steps) {
                        results[i] = Some(step);
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(results
            .iter_mut()
            .map(|r| r.take().expect("every batch position produced a result"))
            .collect())
    }

    /// Exports one shard's complete per-stream state as a persistable
    /// [`EngineShardState`] (streams in ascending id order, so the
    /// artifact layout is canonical and round-trips byte-for-byte).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for an out-of-range shard
    /// index.
    pub fn snapshot_shard(&self, shard: usize) -> Result<EngineShardState, CoreError> {
        let entry = self
            .shards
            .get(shard)
            .ok_or_else(|| CoreError::InvalidInput {
                reason: format!(
                    "shard index {shard} is out of range for {} shards",
                    self.shards.len()
                ),
            })?;
        let streams = entry
            .engine
            .stream_ids()
            .into_iter()
            .map(|stream| {
                let (buffer, adaptive) = entry
                    .engine
                    .export_stream(stream)
                    .expect("listed stream exists");
                StreamState {
                    stream,
                    buffer,
                    adaptive,
                }
            })
            .collect();
        Ok(EngineShardState {
            shard,
            n_shards: self.shards.len(),
            streams,
        })
    }

    /// Snapshots every shard (index order).
    pub fn snapshot(&self) -> Vec<EngineShardState> {
        (0..self.shards.len())
            .map(|shard| {
                self.snapshot_shard(shard)
                    .expect("in-range shard index cannot fail")
            })
            .collect()
    }

    /// Installs a shard snapshot into this engine, re-hashing every stream
    /// into the *current* shard layout — so a snapshot taken at K shards
    /// restores into K' shards, with bit-identical estimates from there on
    /// (stream state is self-contained). Existing streams with the same id
    /// are overwritten; admission capacity is validated up front against
    /// the per-shard cap, so a rejected restore leaves the engine
    /// untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on an invalid snapshot or when
    /// the restored streams would overflow a shard's live-stream cap.
    pub fn restore(&mut self, state: &EngineShardState) -> Result<(), CoreError> {
        state.validate()?;
        self.precheck_admissions(state.streams.len(), |i| state.streams[i].stream)?;
        for entry in &state.streams {
            let shard = self.shard_of(entry.stream);
            self.shards[shard].engine.import_stream(
                entry.stream,
                entry.buffer.clone(),
                entry.adaptive.clone(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationOptions;
    use crate::tauw::TauwBuilder;
    use crate::training::TrainingStep;
    use crate::wrapper::WrapperBuilder;

    /// Same miniature world as the engine tests.
    fn make_series(n: usize, seed: u64, steps: usize) -> Vec<TrainingSeries> {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let q = next();
                let series_bias = next() < 0.5;
                let steps = (0..steps)
                    .map(|_| {
                        let p_fail = (q * if series_bias { 1.3 } else { 0.5 }).min(0.95);
                        let failed = next() < p_fail;
                        TrainingStep {
                            quality_factors: vec![q],
                            outcome: if failed { 3 } else { 7 },
                        }
                    })
                    .collect();
                TrainingSeries {
                    true_outcome: 7,
                    steps,
                }
            })
            .collect()
    }

    fn fitted() -> TimeseriesAwareWrapper {
        let train = make_series(300, 1, 10);
        let calib = make_series(300, 2, 10);
        let mut wb = WrapperBuilder::new();
        wb.max_depth(3).calibration(CalibrationOptions {
            min_samples_per_leaf: 50,
            confidence: 0.99,
            ..Default::default()
        });
        let mut b = TauwBuilder::new();
        b.wrapper(wb);
        b.fit(vec!["q".into()], &train, &calib).unwrap()
    }

    /// The shard hash is a frozen function: this duplicates the SplitMix64
    /// finalizer constants so an accidental edit of either copy fails.
    #[test]
    fn shard_hash_is_the_splitmix64_finalizer_and_spreads_sequential_ids() {
        let reference = |seed: u64| -> u64 {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for seed in [0u64, 1, 2, 41, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(splitmix64(seed), reference(seed));
        }

        let engine = ShardedEngine::new(fitted(), 7);
        // Stable across calls …
        for id in 0..32u64 {
            assert_eq!(engine.shard_of(StreamId(id)), engine.shard_of(StreamId(id)));
            assert!(engine.shard_of(StreamId(id)) < 7);
        }
        // … and sequential ids touch every shard (no striding pathology).
        let mut touched = [false; 7];
        for id in 0..64u64 {
            touched[engine.shard_of(StreamId(id))] = true;
        }
        assert!(touched.iter().all(|&t| t), "sequential ids skip a shard");
    }

    #[test]
    fn shard_count_is_clamped_to_one_and_k1_serves_everything() {
        let mut engine = ShardedEngine::new(fitted(), 0);
        assert_eq!(engine.n_shards(), 1);
        for id in 0..8u64 {
            assert_eq!(engine.shard_of(StreamId(id)), 0);
            engine.step(StreamId(id), &[0.4], 7).unwrap();
        }
        assert_eq!(engine.n_streams(), 8);
        assert_eq!(engine.shard_n_streams(0), Some(8));
        assert_eq!(engine.shard_n_streams(1), None);
    }

    #[test]
    fn sharded_steps_match_engine_and_sessions_bitwise() {
        let tauw = fitted();
        let series = make_series(24, 77, 8);
        let mut reference = tauw.clone().into_engine();
        let reference_waves = reference.step_series_waves(&series).unwrap();
        for n_shards in [1usize, 2, 7] {
            for threads in [1usize, 2, 8] {
                let mut sharded = ShardedEngine::new(tauw.clone(), n_shards);
                sharded.threads(threads);
                let waves = sharded.step_series_waves(&series).unwrap();
                assert_eq!(
                    waves, reference_waves,
                    "shards={n_shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn admission_caps_are_enforced_and_reclaimed() {
        let mut engine = ShardedEngine::new(fitted(), 2);
        engine.max_streams_per_shard(1);

        // Fill both shards: find one stream per shard.
        let mut per_shard: [Option<StreamId>; 2] = [None, None];
        let mut id = 0u64;
        while per_shard.iter().any(Option::is_none) {
            let stream = StreamId(id);
            let shard = engine.shard_of(stream);
            if per_shard[shard].is_none() {
                per_shard[shard] = Some(stream);
                assert_eq!(engine.admit(stream), Admission::Accepted { shard });
                // Admission claims capacity immediately.
                assert_eq!(engine.stream_len(stream), Some(0));
            }
            id += 1;
        }
        assert_eq!(engine.n_streams(), 2);

        // Every further stream is rejected with a typed reason…
        let overflow = StreamId(id + 1000);
        let shard = engine.shard_of(overflow);
        assert_eq!(
            engine.admit(overflow),
            Admission::Rejected {
                reason: AdmissionReason::ShardFull {
                    shard,
                    live: 1,
                    cap: 1
                }
            }
        );
        // …while live streams keep being re-accepted and served.
        let live = per_shard[shard].unwrap();
        assert!(engine.admission(live).is_accepted());
        engine.step(live, &[0.2], 7).unwrap();

        // The step paths refuse the newcomer without touching state.
        let err = engine.step(overflow, &[0.2], 7).unwrap_err().to_string();
        assert!(err.contains("admission rejected"), "{err}");
        assert!(err.contains("end_stream"), "{err}");
        assert_eq!(engine.stream_len(overflow), None);
        let before: Vec<_> = engine.stream_ids();
        assert!(engine
            .step_many(&[
                StreamStep::new(live, vec![0.2], 7),
                StreamStep::new(overflow, vec![0.2], 7),
            ])
            .is_err());
        assert_eq!(engine.stream_ids(), before, "failed batch mutated state");
        assert_eq!(
            engine.stream_len(live),
            Some(1),
            "failed batch advanced a live stream"
        );

        // A batch whose *own* new streams overflow a shard is refused even
        // with free capacity right now.
        engine.end_stream(live);
        // Find two fresh streams hashing to the same (now free) shard.
        let mut fresh = Vec::new();
        let mut probe = id + 2000;
        while fresh.len() < 2 {
            let s = StreamId(probe);
            if engine.shard_of(s) == shard {
                fresh.push(s);
            }
            probe += 1;
        }
        assert!(engine
            .step_many(&[
                StreamStep::new(fresh[0], vec![0.2], 7),
                StreamStep::new(fresh[1], vec![0.2], 7),
            ])
            .is_err());
        // One alone is admitted: end_stream reclaimed the capacity.
        engine.step(fresh[0], &[0.2], 7).unwrap();
    }

    #[test]
    fn begin_series_and_end_stream_manage_lifecycle() {
        let mut engine = ShardedEngine::new(fitted(), 3);
        engine.step(StreamId(4), &[0.1], 7).unwrap();
        engine.step(StreamId(4), &[0.1], 7).unwrap();
        assert_eq!(engine.stream_total_steps(StreamId(4)), Some(2));
        assert!(engine.begin_series(StreamId(4)).is_accepted());
        assert_eq!(engine.stream_len(StreamId(4)), Some(0));
        assert_eq!(engine.stream_total_steps(StreamId(4)), Some(0));
        assert!(engine.end_stream(StreamId(4)));
        assert!(!engine.end_stream(StreamId(4)));
        engine.step(StreamId(5), &[0.1], 7).unwrap();
        engine.clear_streams();
        assert_eq!(engine.n_streams(), 0);
        assert_eq!(engine.stream_ids(), Vec::<StreamId>::new());
    }

    #[test]
    fn adaptive_sharded_serving_matches_adaptive_sessions() {
        let tauw = fitted();
        let config = AdaptiveConfig {
            window: 6,
            min_observations: 3,
            ..Default::default()
        };
        let mut sharded = ShardedEngine::new(tauw.clone(), 3);
        sharded.enable_adaptation(config).unwrap();
        assert_eq!(sharded.adaptive_config(), Some(config));
        let mut sessions: Vec<_> = (0..5)
            .map(|_| tauw.new_adaptive_session(config).unwrap())
            .collect();
        for round in 0..12 {
            let batch: Vec<AdaptiveStreamStep> = (0..5u64)
                .map(|s| {
                    let q = 0.1 + 0.15 * s as f64 + 0.02 * (round % 4) as f64;
                    let failed = (round + s as usize) % 3 == 0;
                    AdaptiveStreamStep::new(
                        StreamId(s),
                        vec![q],
                        if failed { 3 } else { 7 },
                        failed,
                    )
                })
                .collect();
            let got = sharded.step_many_adaptive(&batch).unwrap();
            for (entry, step) in batch.iter().zip(&got) {
                let expected = sessions[entry.stream.0 as usize]
                    .step(&entry.quality_factors, entry.outcome, entry.failed)
                    .unwrap();
                assert_eq!(step, &expected, "round {round} {}", entry.stream);
            }
        }
        for s in 0..5u64 {
            assert_eq!(
                sharded.adaptive_state(StreamId(s)).unwrap(),
                sessions[s as usize].adaptive_state()
            );
            assert_eq!(
                sharded.stream_drift(StreamId(s)),
                Some(sessions[s as usize].drift())
            );
        }
    }

    #[test]
    fn step_many_adaptive_requires_enable_adaptation() {
        let mut engine = ShardedEngine::new(fitted(), 2);
        let err = engine
            .step_many_adaptive(&[AdaptiveStreamStep::new(StreamId(0), vec![0.2], 7, false)])
            .unwrap_err()
            .to_string();
        assert!(err.contains("enable_adaptation"), "{err}");
        assert!(engine.step_adaptive(StreamId(0), &[0.2], 7, false).is_err());
        assert_eq!(engine.n_streams(), 0);
    }

    #[test]
    fn bad_arity_is_rejected_before_any_shard_is_touched() {
        let mut engine = ShardedEngine::new(fitted(), 3);
        engine.step(StreamId(1), &[0.3], 7).unwrap();
        assert!(matches!(
            engine.step_many(&[
                StreamStep::new(StreamId(1), vec![0.1], 7),
                StreamStep::new(StreamId(2), vec![0.1, 0.2], 7),
            ]),
            Err(CoreError::FeatureArityMismatch { .. })
        ));
        assert_eq!(engine.stream_len(StreamId(1)), Some(1));
        assert_eq!(engine.stream_len(StreamId(2)), None);
    }

    #[test]
    fn snapshot_restore_round_trips_and_reshards() {
        let tauw = fitted();
        let config = AdaptiveConfig {
            window: 6,
            min_observations: 3,
            ..Default::default()
        };
        let series = make_series(16, 9, 8);
        // Drive a 2-shard engine halfway through an adaptive replay.
        let mut original = ShardedEngine::new(tauw.clone(), 2);
        original.enable_adaptation(config).unwrap();
        let step_wave = |engine: &mut ShardedEngine, j: usize| {
            let batch: Vec<AdaptiveStreamStep> = series
                .iter()
                .enumerate()
                .map(|(s, ts)| {
                    let step = &ts.steps[j];
                    let failed = step.outcome != 7;
                    AdaptiveStreamStep::new(
                        StreamId(s as u64),
                        step.quality_factors.clone(),
                        step.outcome,
                        failed,
                    )
                })
                .collect();
            engine.step_many_adaptive(&batch).unwrap()
        };
        for j in 0..4 {
            step_wave(&mut original, j);
        }

        // Snapshot → restore into 5 shards; structural equality holds.
        let snapshots = original.snapshot();
        assert_eq!(snapshots.len(), 2);
        for (shard, snapshot) in snapshots.iter().enumerate() {
            assert_eq!(snapshot.shard, shard);
            assert_eq!(snapshot.n_shards, 2);
            snapshot.validate().unwrap();
        }
        assert_eq!(snapshots.iter().map(|s| s.streams.len()).sum::<usize>(), 16);
        let mut resharded = ShardedEngine::new(tauw, 5);
        resharded.enable_adaptation(config).unwrap();
        for snapshot in &snapshots {
            resharded.restore(snapshot).unwrap();
        }
        assert_eq!(resharded.n_streams(), 16);
        assert_eq!(resharded.stream_ids(), original.stream_ids());

        // The restored engine continues bit-identically to the original.
        for j in 4..8 {
            let a = step_wave(&mut original, j);
            let b = step_wave(&mut resharded, j);
            assert_eq!(a, b, "wave {j} diverged after resharding");
        }
        // And its own snapshot round-trips structurally.
        let again = resharded.snapshot_shard(0).unwrap();
        again.validate().unwrap();

        assert!(resharded.snapshot_shard(9).is_err());
    }

    #[test]
    fn restore_respects_the_admission_cap_atomically() {
        let tauw = fitted();
        let mut source = ShardedEngine::new(tauw.clone(), 1);
        for id in 0..6u64 {
            source.step(StreamId(id), &[0.3], 7).unwrap();
        }
        let snapshot = source.snapshot_shard(0).unwrap();

        let mut target = ShardedEngine::new(tauw, 1);
        target.max_streams_per_shard(3);
        let err = target.restore(&snapshot).unwrap_err().to_string();
        assert!(err.contains("admission rejected"), "{err}");
        assert_eq!(target.n_streams(), 0, "failed restore must be atomic");

        target.max_streams_per_shard(6);
        target.restore(&snapshot).unwrap();
        assert_eq!(target.n_streams(), 6);
    }

    #[test]
    fn shard_snapshot_validation_rejects_malformed_state() {
        let tauw = fitted();
        let mut engine = ShardedEngine::new(tauw, 2);
        engine.step(StreamId(1), &[0.3], 7).unwrap();
        engine.step(StreamId(2), &[0.4], 7).unwrap();
        let mut all: Vec<StreamState> = engine
            .snapshot()
            .into_iter()
            .flat_map(|s| s.streams)
            .collect();
        all.sort_unstable_by_key(|s| s.stream);

        let shard_oob = EngineShardState {
            shard: 2,
            n_shards: 2,
            streams: Vec::new(),
        };
        assert!(shard_oob.validate().is_err());

        let mut unsorted = EngineShardState {
            shard: 0,
            n_shards: 1,
            streams: all.clone(),
        };
        unsorted.streams.reverse();
        if unsorted.streams.len() > 1 {
            assert!(unsorted.validate().is_err());
        }

        let mut duplicated = EngineShardState {
            shard: 0,
            n_shards: 1,
            streams: all.clone(),
        };
        duplicated.streams.push(all[0].clone());
        duplicated.streams.sort_unstable_by_key(|s| s.stream);
        assert!(duplicated.validate().is_err());

        let ok = EngineShardState {
            shard: 0,
            n_shards: 1,
            streams: all,
        };
        ok.validate().unwrap();
        let mut target = ShardedEngine::new(engine.wrapper().clone(), 3);
        target.restore(&ok).unwrap();
        assert_eq!(target.n_streams(), 2);
    }
}
