//! Calibrated quality impact models: a decision tree whose leaves carry
//! dependable (one-sided, high-confidence) failure-probability bounds.
//!
//! The paper's procedure (Section IV-C.2): train a CART tree on the
//! training data, prune on the *calibration* set so every leaf keeps at
//! least 200 calibration samples, then compute a statistical uncertainty
//! guarantee per leaf at confidence 0.999.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use tauw_dtree::prune::prune_to_min_count;
use tauw_dtree::{DecisionTree, FlatTree, LeafId, NodeId};
use tauw_stats::binomial::{upper_bound, BoundMethod};

/// Calibration statistics and the resulting bound for one leaf.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedLeaf {
    /// Observed failures among the calibration samples routed to the leaf.
    pub failures: u64,
    /// Calibration samples routed to the leaf.
    pub total: u64,
    /// One-sided upper confidence bound on the failure probability: the
    /// *dependable uncertainty* reported for inputs landing in this leaf.
    pub uncertainty_bound: f64,
}

impl CalibratedLeaf {
    /// Point estimate `failures / total`.
    pub fn point_estimate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.failures as f64 / self.total as f64
        }
    }
}

/// Hyper-parameters of the calibration step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationOptions {
    /// Minimum calibration samples per leaf (paper: 200).
    pub min_samples_per_leaf: u64,
    /// Confidence level of the per-leaf bound (paper: 0.999).
    pub confidence: f64,
    /// Bound construction method (paper: exact/Clopper–Pearson).
    pub method: BoundMethod,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            min_samples_per_leaf: 200,
            confidence: 0.999,
            method: BoundMethod::ClopperPearson,
        }
    }
}

/// A quality impact model after calibration: routing tree + per-leaf
/// dependable uncertainty bounds.
///
/// Two representations of the same model are kept:
///
/// * the pointer [`DecisionTree`] plus a [`NodeId`]-indexed bound table —
///   the transparent, reviewable form used for export, explanations and as
///   the reference path in bit-identity checks;
/// * a compiled [`FlatTree`] plus a dense [`LeafId`]-indexed bound array —
///   the serving form. [`CalibratedQim::uncertainty`] is one flat
///   traversal and one array index, which is what every wrapper, session
///   and engine step executes.
///
/// Both forms are serialized, so a persisted artifact round-trips the flat
/// form byte-for-byte instead of re-deriving it at load time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedQim {
    tree: DecisionTree,
    /// Indexed by [`NodeId`]; `None` for internal nodes.
    leaves: Vec<Option<CalibratedLeaf>>,
    options: CalibrationOptions,
    /// The compiled serving form of `tree`.
    flat: FlatTree,
    /// Uncertainty bounds indexed by [`LeafId`] — the leaf-ID fast path.
    leaf_bounds: Vec<f64>,
}

impl CalibratedQim {
    /// Calibrates a trained tree against a calibration set.
    ///
    /// `samples` yields `(features, failed)` pairs; the tree is pruned so
    /// every leaf keeps at least `options.min_samples_per_leaf` of them,
    /// then each leaf receives an `upper_bound` on its failure rate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the calibration set is empty, too small for
    /// even the root to satisfy the minimum, or rows have the wrong arity.
    pub fn calibrate(
        mut tree: DecisionTree,
        samples: &[(Vec<f64>, bool)],
        options: CalibrationOptions,
    ) -> Result<Self, CoreError> {
        if samples.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "calibration set is empty".into(),
            });
        }
        // 1. Route calibration samples and prune.
        let counts = tree.node_sample_counts(samples.iter().map(|(f, _)| f.as_slice()))?;
        prune_to_min_count(&mut tree, &counts, options.min_samples_per_leaf)?;

        // 2. Compile the pruned tree and re-route the calibration set on
        // the flat form (batched, thread-fanned, input-order) to collect
        // per-leaf failure stats keyed by the dense leaf id.
        let flat = FlatTree::from_tree(&tree);
        let rows: Vec<&[f64]> = samples.iter().map(|(f, _)| f.as_slice()).collect();
        let routed = flat.predict_leaf_ids(parallel::max_threads(), &rows)?;
        let mut failures = vec![0u64; flat.n_leaves()];
        let mut totals = vec![0u64; flat.n_leaves()];
        for (leaf, (_, failed)) in routed.into_iter().zip(samples) {
            totals[leaf as usize] += 1;
            if *failed {
                failures[leaf as usize] += 1;
            }
        }

        // 3. Bound per leaf, filling both the dense leaf-id array (serving
        // path) and the node-indexed table (transparency path).
        let mut leaf_bounds = vec![0.0; flat.n_leaves()];
        let mut leaves = vec![None; tree.n_nodes()];
        for (leaf_id, flat_leaf) in flat.leaves().iter().enumerate() {
            let bound = upper_bound(
                options.method,
                failures[leaf_id],
                totals[leaf_id],
                options.confidence,
            )?;
            leaf_bounds[leaf_id] = bound;
            leaves[flat_leaf.node_id] = Some(CalibratedLeaf {
                failures: failures[leaf_id],
                total: totals[leaf_id],
                uncertainty_bound: bound,
            });
        }
        Ok(CalibratedQim {
            tree,
            leaves,
            options,
            flat,
            leaf_bounds,
        })
    }

    /// Dependable uncertainty for a feature vector: one flat traversal to
    /// the leaf id plus one array index. This is **the** per-step serving
    /// routine behind every wrapper, session and engine step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        Ok(self.leaf_bounds[self.flat.predict_leaf_id(features)? as usize])
    }

    /// Reference implementation of [`CalibratedQim::uncertainty`] over the
    /// pointer tree. Kept for bit-identity verification (tests, the bench
    /// baseline's flat-vs-pointer rows) — not a serving path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        let leaf = self.tree.leaf_id(features)?;
        Ok(self.leaves[leaf]
            .as_ref()
            .expect("every reachable leaf was calibrated")
            .uncertainty_bound)
    }

    /// Routes a feature vector on the flat form, returning both identities
    /// of the leaf it lands in: the dense [`LeafId`] and the arena
    /// [`NodeId`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route_ids(&self, features: &[f64]) -> Result<(LeafId, NodeId), CoreError> {
        let leaf_id = self.flat.predict_leaf_id(features)?;
        Ok((leaf_id, self.flat.leaf(leaf_id).node_id))
    }

    /// The calibrated leaf a feature vector routes to (id + statistics).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route(&self, features: &[f64]) -> Result<(NodeId, CalibratedLeaf), CoreError> {
        let (_, node) = self.route_ids(features)?;
        Ok((
            node,
            self.calibrated_leaf(node)
                .expect("every reachable leaf was calibrated"),
        ))
    }

    /// Calibration statistics of the leaf at arena node `node`, or `None`
    /// for internal/unknown nodes.
    pub fn calibrated_leaf(&self, node: NodeId) -> Option<CalibratedLeaf> {
        self.leaves.get(node).copied().flatten()
    }

    /// Checks the internal consistency of the two model representations:
    /// the flat form must be exactly the lowering of the pointer tree, and
    /// the leaf-ID bound table must mirror the node-indexed calibrated
    /// leaves. Freshly calibrated models satisfy this by construction; the
    /// persistence layer calls it on every load so a truncated or
    /// hand-edited artifact fails with a clean error instead of panicking
    /// on the serving path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.flat != FlatTree::from_tree(&self.tree) {
            return Err(CoreError::InvalidInput {
                reason: "calibrated QIM: flat form is not the lowering of its tree".into(),
            });
        }
        if self.leaf_bounds.len() != self.flat.n_leaves() {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "calibrated QIM: {} leaf bounds for {} leaves",
                    self.leaf_bounds.len(),
                    self.flat.n_leaves()
                ),
            });
        }
        for (leaf_id, flat_leaf) in self.flat.leaves().iter().enumerate() {
            let Some(leaf) = self.calibrated_leaf(flat_leaf.node_id) else {
                return Err(CoreError::InvalidInput {
                    reason: format!(
                        "calibrated QIM: leaf node {} carries no calibration record",
                        flat_leaf.node_id
                    ),
                });
            };
            if leaf.uncertainty_bound.to_bits() != self.leaf_bounds[leaf_id].to_bits() {
                return Err(CoreError::InvalidInput {
                    reason: format!("calibrated QIM: bound table diverges at leaf id {leaf_id}"),
                });
            }
        }
        Ok(())
    }

    /// The underlying (pruned) routing tree, for transparency/export.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The compiled serving form of the routing tree.
    pub fn flat(&self) -> &FlatTree {
        &self.flat
    }

    /// The dependable uncertainty bounds indexed by [`LeafId`] — the
    /// lookup table the serving path reads after routing.
    pub fn leaf_bounds(&self) -> &[f64] {
        &self.leaf_bounds
    }

    /// Calibration options used.
    pub fn options(&self) -> CalibrationOptions {
        self.options
    }

    /// All calibrated leaves `(id, leaf)` in depth-first order.
    pub fn calibrated_leaves(&self) -> Vec<(NodeId, CalibratedLeaf)> {
        self.tree
            .leaf_ids()
            .into_iter()
            .map(|id| {
                (
                    id,
                    self.leaves[id].expect("every reachable leaf was calibrated"),
                )
            })
            .collect()
    }

    /// The smallest uncertainty bound any leaf guarantees — the "lowest
    /// uncertainty" highlighted in the paper's Fig. 5.
    pub fn min_uncertainty(&self) -> f64 {
        self.calibrated_leaves()
            .iter()
            .map(|(_, l)| l.uncertainty_bound)
            .fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauw_dtree::{Dataset, TreeBuilder};

    /// Training data: failure iff x > 0.5, with x uniform on a grid.
    fn trained_tree(n: usize) -> DecisionTree {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..n {
            let x = i as f64 / n as f64;
            ds.push_row(&[x], u32::from(x > 0.5)).unwrap();
        }
        TreeBuilder::new().max_depth(4).fit(&ds).unwrap()
    }

    fn calib_samples(n: usize, failure_rule: impl Fn(f64) -> bool) -> Vec<(Vec<f64>, bool)> {
        (0..n)
            .map(|i| {
                let x = (i as f64 + 0.5) / n as f64;
                (vec![x], failure_rule(x))
            })
            .collect()
    }

    #[test]
    fn calibrated_bounds_cover_observed_rates() {
        let tree = trained_tree(400);
        let calib = calib_samples(1000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        for (_, leaf) in qim.calibrated_leaves() {
            assert!(leaf.total >= 200);
            assert!(leaf.uncertainty_bound >= leaf.point_estimate());
            assert!(leaf.uncertainty_bound <= 1.0);
        }
    }

    #[test]
    fn low_risk_region_gets_low_bound() {
        let tree = trained_tree(400);
        let calib = calib_samples(2000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        let low = qim.uncertainty(&[0.1]).unwrap();
        let high = qim.uncertainty(&[0.9]).unwrap();
        assert!(low < 0.05, "clean region bound {low}");
        assert!(high > 0.9, "failing region bound {high}");
        assert_eq!(qim.min_uncertainty(), low.min(high));
    }

    #[test]
    fn min_samples_forces_pruning() {
        let tree = trained_tree(400);
        let n_leaves_before = tree.n_leaves();
        let calib = calib_samples(450, |x| x > 0.5);
        let opts = CalibrationOptions {
            min_samples_per_leaf: 200,
            ..Default::default()
        };
        let qim = CalibratedQim::calibrate(tree, &calib, opts).unwrap();
        assert!(qim.tree().n_leaves() <= n_leaves_before);
        assert!(
            qim.tree().n_leaves() <= 2,
            "450 samples / 200 per leaf allows at most 2 leaves"
        );
    }

    #[test]
    fn higher_confidence_widens_bounds() {
        let tree = trained_tree(400);
        let calib = calib_samples(2000, |x| x > 0.5);
        let loose = CalibratedQim::calibrate(
            tree.clone(),
            &calib,
            CalibrationOptions {
                confidence: 0.9,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = CalibratedQim::calibrate(
            tree,
            &calib,
            CalibrationOptions {
                confidence: 0.9999,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tight.uncertainty(&[0.1]).unwrap() > loose.uncertainty(&[0.1]).unwrap());
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let tree = trained_tree(100);
        assert!(matches!(
            CalibratedQim::calibrate(tree, &[], CalibrationOptions::default()),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn tiny_calibration_is_infeasible() {
        let tree = trained_tree(100);
        let calib = calib_samples(50, |x| x > 0.5);
        assert!(matches!(
            CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()),
            Err(CoreError::Tree(
                tauw_dtree::DtreeError::CalibrationInfeasible { .. }
            ))
        ));
    }

    #[test]
    fn arity_mismatch_at_query_time() {
        let tree = trained_tree(200);
        let calib = calib_samples(500, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        assert!(qim.uncertainty(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn route_returns_leaf_statistics() {
        let tree = trained_tree(200);
        let calib = calib_samples(1000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        let (id, leaf) = qim.route(&[0.2]).unwrap();
        assert!(leaf.total >= 200);
        assert_eq!(qim.uncertainty(&[0.2]).unwrap(), leaf.uncertainty_bound);
        let (id2, _) = qim.route(&[0.21]).unwrap();
        assert_eq!(id, id2, "nearby inputs route to the same leaf");
    }

    #[test]
    fn flat_serving_path_matches_pointer_reference() {
        let tree = trained_tree(400);
        let calib = calib_samples(2000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        assert_eq!(qim.flat().n_leaves(), qim.tree().n_leaves());
        assert_eq!(qim.leaf_bounds().len(), qim.flat().n_leaves());
        for i in 0..200 {
            let q = [i as f64 / 199.0];
            let fast = qim.uncertainty(&q).unwrap();
            let reference = qim.uncertainty_reference(&q).unwrap();
            assert_eq!(fast.to_bits(), reference.to_bits(), "x={}", q[0]);
            let (leaf_id, node_id) = qim.route_ids(&q).unwrap();
            assert_eq!(qim.leaf_bounds()[leaf_id as usize], fast);
            assert_eq!(qim.route(&q).unwrap().0, node_id);
        }
    }

    #[test]
    fn calibration_shift_is_detected_in_bounds() {
        // Tree learned "failure iff x > 0.5" but calibration data fails
        // everywhere: bounds must reflect calibration, not training.
        let tree = trained_tree(200);
        let calib = calib_samples(800, |_| true);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        for (_, leaf) in qim.calibrated_leaves() {
            assert!(leaf.uncertainty_bound > 0.98);
        }
    }
}
