//! Calibrated quality impact models: decision trees (and bootstrap
//! ensembles of them) whose leaves carry dependable (one-sided,
//! high-confidence) failure-probability bounds.
//!
//! The paper's procedure (Section IV-C.2): train a CART tree on the
//! training data, prune on the *calibration* set so every leaf keeps at
//! least 200 calibration samples, then compute a statistical uncertainty
//! guarantee per leaf at confidence 0.999.
//!
//! [`CalibratedQim`] is that single-tree model. [`CalibratedForestQim`]
//! applies the identical per-tree procedure to every member of a
//! bootstrap [`Forest`] and reports the **mean** of the members' bounds —
//! the hard-boundary mitigation of Gerber, Jöckel & Kläs: one tree's
//! estimate jumps discontinuously at its split thresholds, while an
//! ensemble average steps through many small boundaries.
//!
//! **The backend seam.** [`QimBackend`] is the one serving contract every
//! quality-impact-model backend implements: per-sample and batch-major
//! uncertainty, a bitwise reference recompute, structural validation,
//! [`RouteSupport`]-style calibration-support introspection, and a
//! persistence kind tag. [`TaQim`] is the sealed closed set of backend
//! shapes a wrapper actually serves — a plain enum, so the hot path stays
//! statically dispatched — and itself implements the contract by
//! delegation. The split-conformal backend ([`ConformalQim`]) is the first
//! non-tree member of the set; see `crate::conformal` for adding more.

use crate::conformal::ConformalQim;
use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use tauw_dtree::prune::prune_to_min_count;
use tauw_dtree::{DecisionTree, FlatForest, FlatTree, Forest, LeafId, NodeId};
use tauw_stats::binomial::{upper_bound, BoundMethod};

/// Calibration statistics and the resulting bound for one leaf.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedLeaf {
    /// Observed failures among the calibration samples routed to the leaf.
    pub failures: u64,
    /// Calibration samples routed to the leaf.
    pub total: u64,
    /// One-sided upper confidence bound on the failure probability: the
    /// *dependable uncertainty* reported for inputs landing in this leaf.
    pub uncertainty_bound: f64,
}

impl CalibratedLeaf {
    /// Point estimate `failures / total`.
    pub fn point_estimate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.failures as f64 / self.total as f64
        }
    }
}

/// Hyper-parameters of the calibration step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationOptions {
    /// Minimum calibration samples per leaf (paper: 200).
    pub min_samples_per_leaf: u64,
    /// Confidence level of the per-leaf bound (paper: 0.999).
    pub confidence: f64,
    /// Bound construction method (paper: exact/Clopper–Pearson).
    pub method: BoundMethod,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            min_samples_per_leaf: 200,
            confidence: 0.999,
            method: BoundMethod::ClopperPearson,
        }
    }
}

impl CalibrationOptions {
    /// Checks the options are usable *before* calibration starts, so a
    /// bad `confidence` fails at the entry point with an error naming the
    /// field instead of surfacing deep inside the binomial bound
    /// computation mid-calibration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when `confidence` is
    /// non-finite, ≤ 0, or ≥ 1 (a one-sided confidence level must lie
    /// strictly inside the open unit interval).
    pub fn validate(&self) -> Result<(), CoreError> {
        if !self.confidence.is_finite() || self.confidence <= 0.0 || self.confidence >= 1.0 {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "calibration options: `confidence` must be a finite value strictly between \
                     0 and 1, got {}",
                    self.confidence
                ),
            });
        }
        Ok(())
    }
}

/// Caller-owned reusable buffers for the serving hot path.
///
/// The per-step routines assemble a `[stateless QFs ‖ selected taQFs]`
/// feature row, and the batched routines hold a row-major table of routed
/// leaf ids. Keeping both in a `ServingScratch` that outlives the step
/// loop makes the steady-state serving path allocation-free: each buffer
/// grows to its working size on the first step and is reused verbatim
/// afterwards.
///
/// A fresh (default) scratch is always valid — every routine clears the
/// buffers it reads before filling them, so no state leaks between steps,
/// sessions, or models. Sessions and engine wave slots own one scratch
/// each; standalone callers create one next to their step loop.
#[derive(Debug, Clone, Default)]
pub struct ServingScratch {
    /// The assembled taQIM feature row `[stateless QFs ‖ selected taQFs]`.
    pub(crate) features: Vec<f64>,
    /// Routed leaf ids, row-major (`row · n_trees + member` for forests).
    pub(crate) leaf_ids: Vec<LeafId>,
}

impl ServingScratch {
    /// Creates an empty scratch; the buffers grow on first use and are
    /// reused from then on.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Calibration support behind a served bound, as reported through the
/// [`QimBackend`] seam.
///
/// Tree-shaped backends know exactly how many calibration samples routed
/// to the leaf that produced a bound and report
/// [`RouteSupport::Samples`]. Leafless backends (e.g. the split-conformal
/// model, whose quantile is a property of the whole calibration split)
/// have no per-region figure to report and say so **explicitly** with
/// [`RouteSupport::Unsupported`] — the adaptive layer then classifies
/// undercoverage as
/// [`DriftSignal::SupportUnavailable`](crate::adaptive::DriftSignal)
/// instead of silently defaulting the epistemic/aleatoric split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteSupport {
    /// The routed region's calibration-sample count.
    Samples(u64),
    /// The backend keeps no per-region calibration counts.
    Unsupported,
}

impl RouteSupport {
    /// The sample count, or `None` for [`RouteSupport::Unsupported`].
    pub fn samples(self) -> Option<u64> {
        match self {
            RouteSupport::Samples(n) => Some(n),
            RouteSupport::Unsupported => None,
        }
    }
}

/// A quality impact model after calibration: routing tree + per-leaf
/// dependable uncertainty bounds.
///
/// Two representations of the same model are kept:
///
/// * the pointer [`DecisionTree`] plus a [`NodeId`]-indexed bound table —
///   the transparent, reviewable form used for export, explanations and as
///   the reference path in bit-identity checks;
/// * a compiled [`FlatTree`] plus a dense [`LeafId`]-indexed bound array —
///   the serving form. [`CalibratedQim::uncertainty`] is one flat
///   traversal and one array index, which is what every wrapper, session
///   and engine step executes.
///
/// Both forms are serialized, so a persisted artifact round-trips the flat
/// form byte-for-byte instead of re-deriving it at load time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedQim {
    tree: DecisionTree,
    /// Indexed by [`NodeId`]; `None` for internal nodes.
    leaves: Vec<Option<CalibratedLeaf>>,
    options: CalibrationOptions,
    /// The compiled serving form of `tree`.
    flat: FlatTree,
    /// Uncertainty bounds indexed by [`LeafId`] — the leaf-ID fast path.
    leaf_bounds: Vec<f64>,
}

impl CalibratedQim {
    /// Calibrates a trained tree against a calibration set.
    ///
    /// `samples` yields `(features, failed)` pairs; the tree is pruned so
    /// every leaf keeps at least `options.min_samples_per_leaf` of them,
    /// then each leaf receives an `upper_bound` on its failure rate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the options are invalid (see
    /// [`CalibrationOptions::validate`]), the calibration set is empty, too
    /// small for even the root to satisfy the minimum, or rows have the
    /// wrong arity.
    pub fn calibrate(
        tree: DecisionTree,
        samples: &[(Vec<f64>, bool)],
        options: CalibrationOptions,
    ) -> Result<Self, CoreError> {
        options.validate()?;
        if samples.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "calibration set is empty".into(),
            });
        }
        let parts = calibrate_tree(tree, samples, options)?;
        Ok(CalibratedQim {
            tree: parts.tree,
            leaves: parts.leaves,
            options,
            flat: parts.flat,
            leaf_bounds: parts.leaf_bounds,
        })
    }

    /// Dependable uncertainty for a feature vector: one flat traversal to
    /// the leaf id plus one array index. This is **the** per-step serving
    /// routine behind every wrapper, session and engine step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        Ok(self.leaf_bounds[self.flat.predict_leaf_id(features)? as usize])
    }

    /// Batched [`CalibratedQim::uncertainty`]: routes the whole batch
    /// through the level-synchronous wave traversal
    /// ([`FlatTree::predict_leaf_ids_into`]) fanned over `threads`, then
    /// appends one bound per row to `out` in input order. Routed leaf ids
    /// stage in `scratch.leaf_ids`, so a warmed scratch makes the only
    /// allocation the growth of the caller-owned `out`. Bit-identical to
    /// calling [`CalibratedQim::uncertainty`] per row, for every thread
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch of **any** row;
    /// `out` is untouched on error.
    pub fn uncertainty_batch_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync,
    {
        scratch.leaf_ids.clear();
        self.flat
            .predict_leaf_ids_into(threads, rows, &mut scratch.leaf_ids)?;
        out.extend(
            scratch
                .leaf_ids
                .iter()
                .map(|&leaf| self.leaf_bounds[leaf as usize]),
        );
        Ok(())
    }

    /// Reference implementation of [`CalibratedQim::uncertainty`] over the
    /// pointer tree. Kept for bit-identity verification (tests, the bench
    /// baseline's flat-vs-pointer rows) — not a serving path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        let leaf = self.tree.leaf_id(features)?;
        Ok(self.leaves[leaf]
            .as_ref()
            .expect("every reachable leaf was calibrated")
            .uncertainty_bound)
    }

    /// Routes a feature vector on the flat form, returning both identities
    /// of the leaf it lands in: the dense [`LeafId`] and the arena
    /// [`NodeId`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route_ids(&self, features: &[f64]) -> Result<(LeafId, NodeId), CoreError> {
        let leaf_id = self.flat.predict_leaf_id(features)?;
        Ok((leaf_id, self.flat.leaf(leaf_id).node_id))
    }

    /// The calibrated leaf a feature vector routes to (id + statistics).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route(&self, features: &[f64]) -> Result<(NodeId, CalibratedLeaf), CoreError> {
        let (_, node) = self.route_ids(features)?;
        Ok((
            node,
            self.calibrated_leaf(node)
                .expect("every reachable leaf was calibrated"),
        ))
    }

    /// Calibration statistics of the leaf at arena node `node`, or `None`
    /// for internal/unknown nodes.
    pub fn calibrated_leaf(&self, node: NodeId) -> Option<CalibratedLeaf> {
        self.leaves.get(node).copied().flatten()
    }

    /// How many calibration samples routed to the leaf this feature vector
    /// lands in — the *calibration support* behind the served bound. The
    /// adaptive layer reads this to tell a knowledge gap (thin support)
    /// from plain noise.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route_support(&self, features: &[f64]) -> Result<u64, CoreError> {
        let (_, node) = self.route_ids(features)?;
        Ok(self.calibrated_leaf(node).map_or(0, |l| l.total))
    }

    /// Checks the internal consistency of the two model representations:
    /// the flat form must be exactly the lowering of the pointer tree, and
    /// the leaf-ID bound table must mirror the node-indexed calibrated
    /// leaves. Freshly calibrated models satisfy this by construction; the
    /// persistence layer calls it on every load so a truncated or
    /// hand-edited artifact fails with a clean error instead of panicking
    /// on the serving path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), CoreError> {
        validate_parts(
            &self.tree,
            &self.leaves,
            &self.flat,
            &self.leaf_bounds,
            "calibrated QIM",
        )
    }

    /// The underlying (pruned) routing tree, for transparency/export.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The compiled serving form of the routing tree.
    pub fn flat(&self) -> &FlatTree {
        &self.flat
    }

    /// The dependable uncertainty bounds indexed by [`LeafId`] — the
    /// lookup table the serving path reads after routing.
    pub fn leaf_bounds(&self) -> &[f64] {
        &self.leaf_bounds
    }

    /// Calibration options used.
    pub fn options(&self) -> CalibrationOptions {
        self.options
    }

    /// All calibrated leaves `(id, leaf)` in depth-first order.
    pub fn calibrated_leaves(&self) -> Vec<(NodeId, CalibratedLeaf)> {
        self.tree
            .leaf_ids()
            .into_iter()
            .map(|id| {
                (
                    id,
                    self.leaves[id].expect("every reachable leaf was calibrated"),
                )
            })
            .collect()
    }

    /// The smallest uncertainty bound any leaf guarantees — the "lowest
    /// uncertainty" highlighted in the paper's Fig. 5.
    pub fn min_uncertainty(&self) -> f64 {
        self.calibrated_leaves()
            .iter()
            .map(|(_, l)| l.uncertainty_bound)
            .fold(1.0, f64::min)
    }
}

/// The artifacts calibrating one routing tree produces — the shared core
/// of the single-tree and forest procedures.
struct CalibratedTreeParts {
    tree: DecisionTree,
    leaves: Vec<Option<CalibratedLeaf>>,
    flat: FlatTree,
    leaf_bounds: Vec<f64>,
}

/// Prunes one tree against the calibration set, compiles it, and bounds
/// every reachable leaf — the paper's per-tree calibration procedure,
/// applied identically by [`CalibratedQim::calibrate`] (once) and
/// [`CalibratedForestQim::calibrate`] (once per member).
fn calibrate_tree(
    mut tree: DecisionTree,
    samples: &[(Vec<f64>, bool)],
    options: CalibrationOptions,
) -> Result<CalibratedTreeParts, CoreError> {
    // 1. Route calibration samples and prune.
    let counts = tree.node_sample_counts(samples.iter().map(|(f, _)| f.as_slice()))?;
    prune_to_min_count(&mut tree, &counts, options.min_samples_per_leaf)?;

    // 2. Compile the pruned tree and re-route the calibration set on
    // the flat form (batched, thread-fanned, input-order) to collect
    // per-leaf failure stats keyed by the dense leaf id.
    let flat = FlatTree::from_tree(&tree);
    let rows: Vec<&[f64]> = samples.iter().map(|(f, _)| f.as_slice()).collect();
    let routed = flat.predict_leaf_ids(parallel::max_threads(), &rows)?;
    let mut failures = vec![0u64; flat.n_leaves()];
    let mut totals = vec![0u64; flat.n_leaves()];
    for (leaf, (_, failed)) in routed.into_iter().zip(samples) {
        totals[leaf as usize] += 1;
        if *failed {
            failures[leaf as usize] += 1;
        }
    }

    // 3. Bound per leaf, filling both the dense leaf-id array (serving
    // path) and the node-indexed table (transparency path).
    let mut leaf_bounds = vec![0.0; flat.n_leaves()];
    let mut leaves = vec![None; tree.n_nodes()];
    for (leaf_id, flat_leaf) in flat.leaves().iter().enumerate() {
        let bound = upper_bound(
            options.method,
            failures[leaf_id],
            totals[leaf_id],
            options.confidence,
        )?;
        leaf_bounds[leaf_id] = bound;
        leaves[flat_leaf.node_id] = Some(CalibratedLeaf {
            failures: failures[leaf_id],
            total: totals[leaf_id],
            uncertainty_bound: bound,
        });
    }
    Ok(CalibratedTreeParts {
        tree,
        leaves,
        flat,
        leaf_bounds,
    })
}

/// Checks that one (tree, calibrated leaves, flat form, bound table)
/// quadruple is internally consistent; `context` labels error messages
/// (e.g. `"calibrated QIM"`, `"calibrated forest QIM member 3"`).
fn validate_parts(
    tree: &DecisionTree,
    leaves: &[Option<CalibratedLeaf>],
    flat: &FlatTree,
    leaf_bounds: &[f64],
    context: &str,
) -> Result<(), CoreError> {
    if *flat != FlatTree::from_tree(tree) {
        return Err(CoreError::InvalidInput {
            reason: format!("{context}: flat form is not the lowering of its tree"),
        });
    }
    if leaf_bounds.len() != flat.n_leaves() {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "{context}: {} leaf bounds for {} leaves",
                leaf_bounds.len(),
                flat.n_leaves()
            ),
        });
    }
    for (leaf_id, flat_leaf) in flat.leaves().iter().enumerate() {
        let Some(leaf) = leaves.get(flat_leaf.node_id).copied().flatten() else {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "{context}: leaf node {} carries no calibration record",
                    flat_leaf.node_id
                ),
            });
        };
        if leaf.uncertainty_bound.to_bits() != leaf_bounds[leaf_id].to_bits() {
            return Err(CoreError::InvalidInput {
                reason: format!("{context}: bound table diverges at leaf id {leaf_id}"),
            });
        }
    }
    Ok(())
}

/// The canonical ordering key of one calibrated member: the serialized
/// pruned tree. Members are stored (and summed) in ascending key order, so
/// the assembled model — and therefore every served estimate, bit for bit
/// — is independent of the order the trees were supplied in.
fn member_key(tree: &DecisionTree) -> String {
    serde_json::to_string(tree).expect("a decision tree always serializes")
}

/// A forest quality impact model after calibration: `K` routing trees,
/// each pruned and bounded by the exact single-tree procedure, whose
/// served uncertainty is the **mean of the members' calibrated leaf
/// bounds**.
///
/// Why a forest: a single tree's bound jumps discontinuously at its split
/// thresholds (the *hard boundary* problem — an input 1 mm either side of
/// a threshold can see a very different guarantee). Averaging `K`
/// bootstrap-trained members replaces the few large jumps with many small
/// ones, smoothing the estimate while each member's bound keeps its
/// per-leaf statistical pedigree.
///
/// Determinism contract, mirroring [`CalibratedQim`]:
///
/// * members are stored in a **canonical order** (sorted by serialized
///   form at calibration), so the mean — summed left-to-right over that
///   order — is bit-identical no matter how the input [`Forest`] ordered
///   its trees;
/// * at `K = 1` the mean degenerates to `bound / 1.0`, which is exactly
///   the member's bound: a one-tree forest serves **bitwise** the value
///   the equivalent [`CalibratedQim`] would (asserted by proptest);
/// * serving reads the compiled [`FlatForest`] (`K` flat traversals plus
///   `K` bound-array indexes, no allocation); the pointer members stay
///   aboard as [`CalibratedForestQim::uncertainty_reference`].
///
/// # Examples
///
/// ```
/// use tauw_core::calibration::{CalibratedForestQim, CalibrationOptions};
/// use tauw_dtree::{Dataset, ForestBuilder, TreeBuilder};
///
/// // Failure iff x > 0.5; train a 4-member bootstrap forest on it.
/// let mut ds = Dataset::new(vec!["x".into()], 2)?;
/// for i in 0..400 {
///     let x = i as f64 / 400.0;
///     ds.push_row(&[x], u32::from(x > 0.5))?;
/// }
/// let mut builder = ForestBuilder::new(4, 7);
/// builder.tree(TreeBuilder::new().max_depth(4).clone());
/// let forest = builder.fit(&ds)?;
///
/// // Calibrate every member on held-out samples, then query the mean
/// // of the per-member dependable bounds.
/// let calib: Vec<(Vec<f64>, bool)> = (0..1000)
///     .map(|i| {
///         let x = (i as f64 + 0.5) / 1000.0;
///         (vec![x], x > 0.5)
///     })
///     .collect();
/// let qim = CalibratedForestQim::calibrate(
///     forest,
///     &calib,
///     CalibrationOptions { min_samples_per_leaf: 100, ..Default::default() },
/// )?;
/// assert_eq!(qim.n_trees(), 4);
/// let low = qim.uncertainty(&[0.1])?;
/// let high = qim.uncertainty(&[0.9])?;
/// assert!(low < 0.2 && high > 0.8, "low {low}, high {high}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedForestQim {
    /// Pruned pointer members in canonical order (transparency/reference).
    trees: Vec<DecisionTree>,
    /// Per-member [`NodeId`]-indexed calibration records.
    leaves: Vec<Vec<Option<CalibratedLeaf>>>,
    options: CalibrationOptions,
    /// The compiled serving form: one flat tree per member.
    flat: FlatForest,
    /// Per-member uncertainty bounds indexed by [`LeafId`].
    leaf_bounds: Vec<Vec<f64>>,
    /// The smallest uncertainty the ensemble *actually served* over the
    /// calibration set (min over calibration-sample routings) — the
    /// attainable floor [`CalibratedForestQim::min_uncertainty`] reports.
    min_served_bound: f64,
}

impl CalibratedForestQim {
    /// Calibrates every member of a trained forest against a calibration
    /// set — the single-tree procedure (route, prune to the per-leaf
    /// minimum, bound at the configured confidence), applied per member —
    /// and stores the members in canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the options are invalid (see
    /// [`CalibrationOptions::validate`]), the calibration set is empty, too
    /// small for any member's root to satisfy the minimum, or rows have the
    /// wrong arity.
    pub fn calibrate(
        forest: Forest,
        samples: &[(Vec<f64>, bool)],
        options: CalibrationOptions,
    ) -> Result<Self, CoreError> {
        options.validate()?;
        if samples.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "calibration set is empty".into(),
            });
        }
        let mut parts = Vec::with_capacity(forest.n_trees());
        for tree in forest.into_trees() {
            let member = calibrate_tree(tree, samples, options)?;
            parts.push((member_key(&member.tree), member));
        }
        // Canonical member order: ascending serialized-tree key. Equal keys
        // are identical members (same tree, same calibration data, same
        // bounds), so their relative order cannot affect the sum.
        parts.sort_by(|(a, _), (b, _)| a.cmp(b));

        let mut trees = Vec::with_capacity(parts.len());
        let mut leaves = Vec::with_capacity(parts.len());
        let mut flats = Vec::with_capacity(parts.len());
        let mut leaf_bounds = Vec::with_capacity(parts.len());
        for (_, member) in parts {
            trees.push(member.tree);
            leaves.push(member.leaves);
            flats.push(member.flat);
            leaf_bounds.push(member.leaf_bounds);
        }
        let mut qim = CalibratedForestQim {
            trees,
            leaves,
            options,
            flat: FlatForest::from_flat_trees(flats)?,
            leaf_bounds,
            min_served_bound: 1.0,
        };
        // The attainable serving floor: the smallest mean-of-member-bounds
        // any *calibration sample* actually receives. Unlike the mean of
        // per-member minima (which no single input generally attains —
        // each member routes it to a different leaf), every value in this
        // minimum is a real served estimate.
        let mut min_served = 1.0f64;
        for (features, _) in samples {
            min_served = min_served.min(qim.uncertainty(features)?);
        }
        qim.min_served_bound = min_served;
        Ok(qim)
    }

    /// Dependable uncertainty for a feature vector: `K` flat traversals,
    /// `K` bound-array indexes, one left-to-right sum over the canonical
    /// member order, one division. No allocation; bit-identical regardless
    /// of the order the forest's trees were supplied in (the canonical
    /// order is part of the model).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        let mut sum = 0.0;
        for (tree, bounds) in self.flat.trees().iter().zip(&self.leaf_bounds) {
            sum += bounds[tree.predict_leaf_id(features)? as usize];
        }
        Ok(sum / self.flat.n_trees() as f64)
    }

    /// Batched [`CalibratedForestQim::uncertainty`]: one forest-interleaved
    /// pass over the batch ([`FlatForest::predict_leaf_ids_into`], row-major
    /// `row · K + member`) fanned over `threads`, then one bound per row
    /// appended to `out` in input order — summed left-to-right over the
    /// canonical member order, exactly like the per-sample form, so results
    /// are bit-identical to it for every thread budget. Routed leaf ids
    /// stage in `scratch.leaf_ids`; a warmed scratch makes the only
    /// allocation the growth of the caller-owned `out`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch of **any** row;
    /// `out` is untouched on error.
    pub fn uncertainty_batch_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync,
    {
        let k = self.flat.n_trees();
        scratch.leaf_ids.clear();
        self.flat
            .predict_leaf_ids_into(threads, rows, &mut scratch.leaf_ids)?;
        for row in scratch.leaf_ids.chunks_exact(k) {
            let mut sum = 0.0;
            for (bounds, &leaf) in self.leaf_bounds.iter().zip(row) {
                sum += bounds[leaf as usize];
            }
            out.push(sum / k as f64);
        }
        Ok(())
    }

    /// Reference implementation of [`CalibratedForestQim::uncertainty`]
    /// over the pointer members: same member order, same summation, routed
    /// through each member's arena tree. Kept for bit-identity
    /// verification — not a serving path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        let mut sum = 0.0;
        for (tree, leaves) in self.trees.iter().zip(&self.leaves) {
            let leaf = tree.leaf_id(features)?;
            sum += leaves[leaf]
                .as_ref()
                .expect("every reachable leaf was calibrated")
                .uncertainty_bound;
        }
        Ok(sum / self.trees.len() as f64)
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the members route on.
    pub fn n_features(&self) -> usize {
        self.flat.n_features()
    }

    /// The pruned pointer members in canonical order, for
    /// transparency/export.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The compiled serving form of the ensemble.
    pub fn flat(&self) -> &FlatForest {
        &self.flat
    }

    /// Per-member dependable bounds indexed by [`LeafId`] — the lookup
    /// tables the serving path reads after routing.
    pub fn leaf_bounds(&self) -> &[Vec<f64>] {
        &self.leaf_bounds
    }

    /// Calibration options used (shared by every member).
    pub fn options(&self) -> CalibrationOptions {
        self.options
    }

    /// Calibration statistics of member `t`'s leaf at arena node `node`,
    /// or `None` for internal/unknown nodes or an out-of-range member.
    pub fn calibrated_leaf(&self, t: usize, node: NodeId) -> Option<CalibratedLeaf> {
        self.leaves.get(t)?.get(node).copied().flatten()
    }

    /// The smallest uncertainty the ensemble **actually serves**: the
    /// minimum of `uncertainty(x)` over the calibration samples, computed
    /// once at calibration time. Every value entering this minimum is a
    /// real served estimate, so `min_uncertainty() <= uncertainty(x)`
    /// holds for every calibration sample `x` — the attainability contract
    /// [`CalibratedQim::min_uncertainty`] gives for a single tree.
    ///
    /// (The previous formulation — the mean of per-member minima, still
    /// available as [`CalibratedForestQim::min_member_mean_bound`] — is
    /// generally *unachievable*: no single feature vector routes every
    /// member to its own best leaf at once, so it could undercut every
    /// value the model can produce.)
    pub fn min_uncertainty(&self) -> f64 {
        self.min_served_bound
    }

    /// The mean of the members' per-leaf minimum bounds — a **lower
    /// bound** on [`CalibratedForestQim::min_uncertainty`] that is
    /// generally not attained by any input (each member would have to
    /// route it to that member's own best leaf simultaneously). Kept for
    /// diagnostics; never served.
    pub fn min_member_mean_bound(&self) -> f64 {
        let sum: f64 = self
            .leaf_bounds
            .iter()
            .map(|bounds| bounds.iter().copied().fold(1.0, f64::min))
            .sum();
        sum / self.leaf_bounds.len() as f64
    }

    /// Calibration support behind the served bound for this feature
    /// vector: the **minimum** over members of the routed leaf's
    /// calibration-sample count (the ensemble's estimate is only as
    /// grounded as its least-supported member).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route_support(&self, features: &[f64]) -> Result<u64, CoreError> {
        let mut support = u64::MAX;
        for (t, tree) in self.flat.trees().iter().enumerate() {
            let leaf = tree.predict_leaf_id(features)?;
            let node = tree.leaf(leaf).node_id;
            support = support.min(self.calibrated_leaf(t, node).map_or(0, |l| l.total));
        }
        Ok(support)
    }

    /// Checks the internal consistency of every member (see
    /// [`CalibratedQim::validate`]) plus the ensemble-level invariants:
    /// parallel tables of equal length, at least one member, and the
    /// canonical member order — so a hand-edited artifact cannot smuggle
    /// in a permutation that silently changes the served sum.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.trees.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "calibrated forest QIM: no members".into(),
            });
        }
        if self.leaves.len() != self.trees.len()
            || self.flat.n_trees() != self.trees.len()
            || self.leaf_bounds.len() != self.trees.len()
        {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "calibrated forest QIM: {} trees but {} leaf tables, {} flat members, \
                     {} bound tables",
                    self.trees.len(),
                    self.leaves.len(),
                    self.flat.n_trees(),
                    self.leaf_bounds.len()
                ),
            });
        }
        let mut previous_key: Option<String> = None;
        for (t, tree) in self.trees.iter().enumerate() {
            // Members must agree on the routing shape; otherwise a loaded
            // model would pass per-member checks yet fail (arity mismatch)
            // on every serve call.
            if tree.n_features() != self.trees[0].n_features()
                || tree.n_classes() != self.trees[0].n_classes()
            {
                return Err(CoreError::InvalidInput {
                    reason: format!(
                        "calibrated forest QIM: member {t} routes on {} features / {} classes, \
                         member 0 on {} / {}",
                        tree.n_features(),
                        tree.n_classes(),
                        self.trees[0].n_features(),
                        self.trees[0].n_classes()
                    ),
                });
            }
            validate_parts(
                tree,
                &self.leaves[t],
                self.flat.tree(t),
                &self.leaf_bounds[t],
                &format!("calibrated forest QIM member {t}"),
            )?;
            let key = member_key(tree);
            if previous_key.as_ref().is_some_and(|prev| *prev > key) {
                return Err(CoreError::InvalidInput {
                    reason: format!(
                        "calibrated forest QIM: member {t} violates the canonical member order"
                    ),
                });
            }
            previous_key = Some(key);
        }
        if !self.min_served_bound.is_finite() || !(0.0..=1.0).contains(&self.min_served_bound) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "calibrated forest QIM: served minimum bound {} lies outside [0, 1]",
                    self.min_served_bound
                ),
            });
        }
        // Any served value is a mean of per-member bounds, each at least
        // its member's minimum; f64 addition and division are monotone, so
        // the mean of minima is a hard floor on every servable value.
        if self.min_served_bound < self.min_member_mean_bound() {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "calibrated forest QIM: served minimum bound {} undercuts the member-minima \
                     floor {}",
                    self.min_served_bound,
                    self.min_member_mean_bound()
                ),
            });
        }
        Ok(())
    }
}

/// The closed set of quality-impact-model shapes a timeseries-aware
/// wrapper can serve: the paper's single calibrated tree, a
/// boundary-smoothing calibrated forest, or a leafless split-conformal
/// model. Every serving, reference and validation entry point dispatches
/// on the shape — a plain `match`, so the hot path stays statically
/// dispatched — and wrapper, session and engine code is shape-agnostic.
/// The enum is the sealed half of the [`QimBackend`] seam: every variant's
/// payload implements the trait, and so does `TaQim` itself (by
/// delegation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaQim {
    /// A single calibrated tree (the paper's taQIM).
    Tree(CalibratedQim),
    /// A calibrated bootstrap forest (mean of per-member bounds).
    Forest(CalibratedForestQim),
    /// A split-conformal model (distribution-free one-sided bounds).
    Conformal(ConformalQim),
}

impl TaQim {
    /// Dependable uncertainty via the shape's flat serving form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        match self {
            TaQim::Tree(qim) => qim.uncertainty(features),
            TaQim::Forest(qim) => qim.uncertainty(features),
            TaQim::Conformal(qim) => qim.uncertainty(features),
        }
    }

    /// Batched [`TaQim::uncertainty`] via the shape's batch-major wave
    /// traversal (see [`CalibratedQim::uncertainty_batch_into`] /
    /// [`CalibratedForestQim::uncertainty_batch_into`]): one bound per row
    /// appended to `out` in input order, bit-identical to the per-sample
    /// form for every thread budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch of **any** row;
    /// `out` is untouched on error.
    pub fn uncertainty_batch_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync,
    {
        match self {
            TaQim::Tree(qim) => qim.uncertainty_batch_into(threads, rows, scratch, out),
            TaQim::Forest(qim) => qim.uncertainty_batch_into(threads, rows, scratch, out),
            TaQim::Conformal(qim) => qim.uncertainty_batch_into(threads, rows, scratch, out),
        }
    }

    /// Pointer-representation recompute of [`TaQim::uncertainty`], for
    /// bit-identity verification.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        match self {
            TaQim::Tree(qim) => qim.uncertainty_reference(features),
            TaQim::Forest(qim) => qim.uncertainty_reference(features),
            TaQim::Conformal(qim) => qim.uncertainty_reference(features),
        }
    }

    /// Internal-consistency check of the underlying model (see
    /// [`CalibratedQim::validate`] / [`CalibratedForestQim::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on an inconsistent model.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            TaQim::Tree(qim) => qim.validate(),
            TaQim::Forest(qim) => qim.validate(),
            TaQim::Conformal(qim) => qim.validate(),
        }
    }

    /// Number of routing trees (1 for the single-tree shape, 0 for
    /// leafless backends).
    pub fn n_trees(&self) -> usize {
        match self {
            TaQim::Tree(_) => 1,
            TaQim::Forest(qim) => qim.n_trees(),
            TaQim::Conformal(_) => 0,
        }
    }

    /// Total reachable leaves across all routing trees (0 for leafless
    /// backends).
    pub fn n_leaves(&self) -> usize {
        match self {
            TaQim::Tree(qim) => qim.flat().n_leaves(),
            TaQim::Forest(qim) => qim.flat().n_leaves_total(),
            TaQim::Conformal(_) => 0,
        }
    }

    /// Number of features the model reads.
    pub fn n_features(&self) -> usize {
        match self {
            TaQim::Tree(qim) => qim.tree().n_features(),
            TaQim::Forest(qim) => qim.n_features(),
            TaQim::Conformal(qim) => qim.n_features(),
        }
    }

    /// The smallest uncertainty the model actually serves — the minimum
    /// leaf bound for the single-tree shape, the minimum served mean over
    /// the calibration set for forests (see
    /// [`CalibratedForestQim::min_uncertainty`]).
    pub fn min_uncertainty(&self) -> f64 {
        match self {
            TaQim::Tree(qim) => qim.min_uncertainty(),
            TaQim::Forest(qim) => qim.min_uncertainty(),
            TaQim::Conformal(qim) => qim.min_uncertainty(),
        }
    }

    /// Calibration support behind the bound served for this feature
    /// vector: the routed leaf's calibration-sample count (minimum over
    /// members for a forest), or [`RouteSupport::Unsupported`] for a
    /// leafless backend. See [`CalibratedQim::route_support`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route_support(&self, features: &[f64]) -> Result<RouteSupport, CoreError> {
        match self {
            TaQim::Tree(qim) => Ok(RouteSupport::Samples(qim.route_support(features)?)),
            TaQim::Forest(qim) => Ok(RouteSupport::Samples(qim.route_support(features)?)),
            TaQim::Conformal(qim) => {
                // Leafless: validate the query like every other entry
                // point, then say explicitly that no figure exists.
                qim.uncertainty(features)?;
                Ok(RouteSupport::Unsupported)
            }
        }
    }

    /// The single-tree model, if this is the tree shape.
    pub fn as_tree(&self) -> Option<&CalibratedQim> {
        match self {
            TaQim::Tree(qim) => Some(qim),
            _ => None,
        }
    }

    /// The forest model, if this is the forest shape.
    pub fn as_forest(&self) -> Option<&CalibratedForestQim> {
        match self {
            TaQim::Forest(qim) => Some(qim),
            _ => None,
        }
    }

    /// The split-conformal model, if this is the conformal shape.
    pub fn as_conformal(&self) -> Option<&ConformalQim> {
        match self {
            TaQim::Conformal(qim) => Some(qim),
            _ => None,
        }
    }
}

mod sealed {
    /// Seals [`super::QimBackend`]: the set of backends is closed over the
    /// [`super::TaQim`] variants (plus the enum itself), so the serving
    /// contract can evolve with the codebase without breaking downstream
    /// implementors that could not be dispatched anyway.
    pub trait Sealed {}
    impl Sealed for super::CalibratedQim {}
    impl Sealed for super::CalibratedForestQim {}
    impl Sealed for crate::conformal::ConformalQim {}
    impl Sealed for super::TaQim {}
}

/// The one serving contract every quality-impact-model backend fulfils —
/// the seam wrapper, session and engine code is written against.
///
/// The trait is **sealed** over the [`TaQim`] variants (and `TaQim`
/// itself, which implements it by delegation): serving stays a statically
/// dispatched `match` on the enum, while this contract pins down, in one
/// place, what a backend must provide and with which invariants.
///
/// # The contract
///
/// * [`uncertainty`](QimBackend::uncertainty) — the per-step serving
///   routine; [`uncertainty_batch_into`](QimBackend::uncertainty_batch_into)
///   — the scratch-threaded batch-major wave form, **bit-identical** to
///   the per-sample form for every thread budget, appending to `out` in
///   input order and leaving `out` untouched on error;
/// * [`uncertainty_reference`](QimBackend::uncertainty_reference) — an
///   independent recompute over a second model representation, asserted
///   bitwise against serving by the determinism suite;
/// * [`validate`](QimBackend::validate) — structural consistency of all
///   stored representations (the persistence layer calls it on load);
/// * [`route_support`](QimBackend::route_support) — calibration-support
///   introspection with an explicit [`RouteSupport::Unsupported`] for
///   leafless backends, so drift detection degrades gracefully;
/// * [`artifact_kind_name`](QimBackend::artifact_kind_name) — the
///   persistence kind tag under which the backend's standalone artifact
///   envelope is registered (see `crate::persist`).
///
/// # Adding a backend
///
/// Implement the model type with the methods above (plus a deterministic
/// `calibrate` constructor), add a [`TaQim`] variant and dispatch arms, a
/// `BackendSpec` variant in `crate::tauw`, an `ArtifactKind` in
/// `crate::persist` with round-trip/tamper/version tests, and extend the
/// seam-generic proptest in `tests/properties.rs`. The engine and session
/// layers need no changes — they only speak this contract.
pub trait QimBackend: sealed::Sealed {
    /// Dependable uncertainty for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError>;

    /// Batch-major [`QimBackend::uncertainty`]: one bound per row appended
    /// to `out` in input order, staged through the caller-owned `scratch`,
    /// bit-identical to the per-sample form for every thread budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch of **any** row;
    /// `out` is untouched on error.
    fn uncertainty_batch_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync;

    /// Independent recompute of [`QimBackend::uncertainty`] over a second
    /// model representation, for bitwise verification.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError>;

    /// Structural consistency of every stored representation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on an inconsistent model.
    fn validate(&self) -> Result<(), CoreError>;

    /// Calibration support behind the bound this feature vector receives.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    fn route_support(&self, features: &[f64]) -> Result<RouteSupport, CoreError>;

    /// Number of features the backend reads.
    fn n_features(&self) -> usize;

    /// The smallest uncertainty the backend actually serves.
    fn min_uncertainty(&self) -> f64;

    /// The persistence kind tag of the backend's standalone artifact
    /// envelope (see `crate::persist`).
    fn artifact_kind_name(&self) -> &'static str;
}

impl QimBackend for CalibratedQim {
    fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.uncertainty(features)
    }

    fn uncertainty_batch_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync,
    {
        self.uncertainty_batch_into(threads, rows, scratch, out)
    }

    fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.uncertainty_reference(features)
    }

    fn validate(&self) -> Result<(), CoreError> {
        self.validate()
    }

    fn route_support(&self, features: &[f64]) -> Result<RouteSupport, CoreError> {
        Ok(RouteSupport::Samples(self.route_support(features)?))
    }

    fn n_features(&self) -> usize {
        self.tree().n_features()
    }

    fn min_uncertainty(&self) -> f64 {
        self.min_uncertainty()
    }

    fn artifact_kind_name(&self) -> &'static str {
        "TreeQim"
    }
}

impl QimBackend for CalibratedForestQim {
    fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.uncertainty(features)
    }

    fn uncertainty_batch_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync,
    {
        self.uncertainty_batch_into(threads, rows, scratch, out)
    }

    fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.uncertainty_reference(features)
    }

    fn validate(&self) -> Result<(), CoreError> {
        self.validate()
    }

    fn route_support(&self, features: &[f64]) -> Result<RouteSupport, CoreError> {
        Ok(RouteSupport::Samples(self.route_support(features)?))
    }

    fn n_features(&self) -> usize {
        self.n_features()
    }

    fn min_uncertainty(&self) -> f64 {
        self.min_uncertainty()
    }

    fn artifact_kind_name(&self) -> &'static str {
        "ForestQim"
    }
}

impl QimBackend for ConformalQim {
    fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.uncertainty(features)
    }

    fn uncertainty_batch_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync,
    {
        self.uncertainty_batch_into(threads, rows, scratch, out)
    }

    fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.uncertainty_reference(features)
    }

    fn validate(&self) -> Result<(), CoreError> {
        self.validate()
    }

    fn route_support(&self, features: &[f64]) -> Result<RouteSupport, CoreError> {
        // Leafless: validate the query, then report the absence of a
        // per-region figure explicitly.
        self.uncertainty(features)?;
        Ok(RouteSupport::Unsupported)
    }

    fn n_features(&self) -> usize {
        self.n_features()
    }

    fn min_uncertainty(&self) -> f64 {
        self.min_uncertainty()
    }

    fn artifact_kind_name(&self) -> &'static str {
        "ConformalQim"
    }
}

impl QimBackend for TaQim {
    fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.uncertainty(features)
    }

    fn uncertainty_batch_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync,
    {
        self.uncertainty_batch_into(threads, rows, scratch, out)
    }

    fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.uncertainty_reference(features)
    }

    fn validate(&self) -> Result<(), CoreError> {
        self.validate()
    }

    fn route_support(&self, features: &[f64]) -> Result<RouteSupport, CoreError> {
        self.route_support(features)
    }

    fn n_features(&self) -> usize {
        self.n_features()
    }

    fn min_uncertainty(&self) -> f64 {
        self.min_uncertainty()
    }

    fn artifact_kind_name(&self) -> &'static str {
        match self {
            TaQim::Tree(qim) => QimBackend::artifact_kind_name(qim),
            TaQim::Forest(qim) => QimBackend::artifact_kind_name(qim),
            TaQim::Conformal(qim) => QimBackend::artifact_kind_name(qim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauw_dtree::{Dataset, TreeBuilder};

    /// Training data: failure iff x > 0.5, with x uniform on a grid.
    fn trained_tree(n: usize) -> DecisionTree {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..n {
            let x = i as f64 / n as f64;
            ds.push_row(&[x], u32::from(x > 0.5)).unwrap();
        }
        TreeBuilder::new().max_depth(4).fit(&ds).unwrap()
    }

    fn calib_samples(n: usize, failure_rule: impl Fn(f64) -> bool) -> Vec<(Vec<f64>, bool)> {
        (0..n)
            .map(|i| {
                let x = (i as f64 + 0.5) / n as f64;
                (vec![x], failure_rule(x))
            })
            .collect()
    }

    #[test]
    fn calibrated_bounds_cover_observed_rates() {
        let tree = trained_tree(400);
        let calib = calib_samples(1000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        for (_, leaf) in qim.calibrated_leaves() {
            assert!(leaf.total >= 200);
            assert!(leaf.uncertainty_bound >= leaf.point_estimate());
            assert!(leaf.uncertainty_bound <= 1.0);
        }
    }

    #[test]
    fn low_risk_region_gets_low_bound() {
        let tree = trained_tree(400);
        let calib = calib_samples(2000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        let low = qim.uncertainty(&[0.1]).unwrap();
        let high = qim.uncertainty(&[0.9]).unwrap();
        assert!(low < 0.05, "clean region bound {low}");
        assert!(high > 0.9, "failing region bound {high}");
        assert_eq!(qim.min_uncertainty(), low.min(high));
    }

    #[test]
    fn min_samples_forces_pruning() {
        let tree = trained_tree(400);
        let n_leaves_before = tree.n_leaves();
        let calib = calib_samples(450, |x| x > 0.5);
        let opts = CalibrationOptions {
            min_samples_per_leaf: 200,
            ..Default::default()
        };
        let qim = CalibratedQim::calibrate(tree, &calib, opts).unwrap();
        assert!(qim.tree().n_leaves() <= n_leaves_before);
        assert!(
            qim.tree().n_leaves() <= 2,
            "450 samples / 200 per leaf allows at most 2 leaves"
        );
    }

    #[test]
    fn higher_confidence_widens_bounds() {
        let tree = trained_tree(400);
        let calib = calib_samples(2000, |x| x > 0.5);
        let loose = CalibratedQim::calibrate(
            tree.clone(),
            &calib,
            CalibrationOptions {
                confidence: 0.9,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = CalibratedQim::calibrate(
            tree,
            &calib,
            CalibrationOptions {
                confidence: 0.9999,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tight.uncertainty(&[0.1]).unwrap() > loose.uncertainty(&[0.1]).unwrap());
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let tree = trained_tree(100);
        assert!(matches!(
            CalibratedQim::calibrate(tree, &[], CalibrationOptions::default()),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn tiny_calibration_is_infeasible() {
        let tree = trained_tree(100);
        let calib = calib_samples(50, |x| x > 0.5);
        assert!(matches!(
            CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()),
            Err(CoreError::Tree(
                tauw_dtree::DtreeError::CalibrationInfeasible { .. }
            ))
        ));
    }

    #[test]
    fn arity_mismatch_at_query_time() {
        let tree = trained_tree(200);
        let calib = calib_samples(500, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        assert!(qim.uncertainty(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn route_returns_leaf_statistics() {
        let tree = trained_tree(200);
        let calib = calib_samples(1000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        let (id, leaf) = qim.route(&[0.2]).unwrap();
        assert!(leaf.total >= 200);
        assert_eq!(qim.uncertainty(&[0.2]).unwrap(), leaf.uncertainty_bound);
        let (id2, _) = qim.route(&[0.21]).unwrap();
        assert_eq!(id, id2, "nearby inputs route to the same leaf");
    }

    #[test]
    fn flat_serving_path_matches_pointer_reference() {
        let tree = trained_tree(400);
        let calib = calib_samples(2000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        assert_eq!(qim.flat().n_leaves(), qim.tree().n_leaves());
        assert_eq!(qim.leaf_bounds().len(), qim.flat().n_leaves());
        for i in 0..200 {
            let q = [i as f64 / 199.0];
            let fast = qim.uncertainty(&q).unwrap();
            let reference = qim.uncertainty_reference(&q).unwrap();
            assert_eq!(fast.to_bits(), reference.to_bits(), "x={}", q[0]);
            let (leaf_id, node_id) = qim.route_ids(&q).unwrap();
            assert_eq!(qim.leaf_bounds()[leaf_id as usize], fast);
            assert_eq!(qim.route(&q).unwrap().0, node_id);
        }
    }

    /// A small bootstrap forest over the same toy world as the tree tests.
    fn trained_forest(k: usize, seed: u64, n: usize) -> tauw_dtree::Forest {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..n {
            let x = i as f64 / n as f64;
            let noisy = i % 31 == 0;
            ds.push_row(&[x], u32::from((x > 0.5) ^ noisy)).unwrap();
        }
        let mut builder = tauw_dtree::ForestBuilder::new(k, seed);
        builder.tree(TreeBuilder::new().max_depth(4).clone());
        builder.fit(&ds).unwrap()
    }

    #[test]
    fn one_member_forest_is_bitwise_the_single_tree_path() {
        let tree = trained_tree(400);
        let calib = calib_samples(1000, |x| x > 0.5);
        let single =
            CalibratedQim::calibrate(tree.clone(), &calib, CalibrationOptions::default()).unwrap();
        let forest = CalibratedForestQim::calibrate(
            tauw_dtree::Forest::from_trees(vec![tree]).unwrap(),
            &calib,
            CalibrationOptions::default(),
        )
        .unwrap();
        assert_eq!(forest.n_trees(), 1);
        for i in 0..200 {
            let q = [i as f64 / 199.0];
            assert_eq!(
                forest.uncertainty(&q).unwrap().to_bits(),
                single.uncertainty(&q).unwrap().to_bits(),
                "x={}",
                q[0]
            );
            assert_eq!(
                forest.uncertainty_reference(&q).unwrap().to_bits(),
                single.uncertainty_reference(&q).unwrap().to_bits()
            );
        }
        assert_eq!(
            forest.min_uncertainty().to_bits(),
            single.min_uncertainty().to_bits()
        );
    }

    #[test]
    fn forest_calibration_is_permutation_invariant_in_tree_order() {
        let forest = trained_forest(5, 3, 500);
        let calib = calib_samples(2000, |x| x > 0.5);
        let in_order = CalibratedForestQim::calibrate(
            tauw_dtree::Forest::from_trees(forest.trees().to_vec()).unwrap(),
            &calib,
            CalibrationOptions::default(),
        )
        .unwrap();
        let mut reversed_trees = forest.trees().to_vec();
        reversed_trees.reverse();
        let reversed = CalibratedForestQim::calibrate(
            tauw_dtree::Forest::from_trees(reversed_trees).unwrap(),
            &calib,
            CalibrationOptions::default(),
        )
        .unwrap();
        assert_eq!(in_order, reversed, "canonical order erases input order");
        for i in 0..100 {
            let q = [i as f64 / 99.0];
            assert_eq!(
                in_order.uncertainty(&q).unwrap().to_bits(),
                reversed.uncertainty(&q).unwrap().to_bits()
            );
        }
        in_order.validate().unwrap();
    }

    #[test]
    fn forest_serving_matches_pointer_reference_and_member_envelope() {
        let forest = trained_forest(6, 9, 600);
        let calib = calib_samples(3000, |x| x > 0.5);
        let qim =
            CalibratedForestQim::calibrate(forest, &calib, CalibrationOptions::default()).unwrap();
        assert_eq!(qim.n_trees(), 6);
        assert_eq!(qim.leaf_bounds().len(), 6);
        for i in 0..200 {
            let q = [i as f64 / 199.0];
            let fast = qim.uncertainty(&q).unwrap();
            let reference = qim.uncertainty_reference(&q).unwrap();
            assert_eq!(fast.to_bits(), reference.to_bits(), "x={}", q[0]);
            // The mean lies inside the envelope of the member bounds.
            let member_bounds: Vec<f64> = (0..qim.n_trees())
                .map(|t| {
                    let leaf = qim.flat().tree(t).predict_leaf_id(&q).unwrap();
                    qim.leaf_bounds()[t][leaf as usize]
                })
                .collect();
            let lo = member_bounds.iter().copied().fold(1.0, f64::min);
            let hi = member_bounds.iter().copied().fold(0.0, f64::max);
            assert!(fast >= lo - 1e-15 && fast <= hi + 1e-15);
        }
        assert!(qim.min_uncertainty() > 0.0);
        assert!(qim.min_uncertainty() <= qim.uncertainty(&[0.1]).unwrap());
    }

    #[test]
    fn forest_rejects_empty_calibration_and_wrong_arity() {
        let forest = trained_forest(2, 1, 200);
        assert!(matches!(
            CalibratedForestQim::calibrate(
                tauw_dtree::Forest::from_trees(forest.trees().to_vec()).unwrap(),
                &[],
                CalibrationOptions::default()
            ),
            Err(CoreError::InvalidInput { .. })
        ));
        let calib = calib_samples(800, |x| x > 0.5);
        let qim =
            CalibratedForestQim::calibrate(forest, &calib, CalibrationOptions::default()).unwrap();
        assert!(qim.uncertainty(&[0.5, 0.5]).is_err());
        assert!(qim.uncertainty_reference(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn forest_validate_catches_tampering() {
        let forest = trained_forest(3, 5, 400);
        let calib = calib_samples(1500, |x| x > 0.5);
        let qim =
            CalibratedForestQim::calibrate(forest, &calib, CalibrationOptions::default()).unwrap();
        qim.validate().unwrap();

        // A permuted member order (all tables swapped consistently) must be
        // rejected: the canonical order is part of the model.
        let mut permuted = qim.clone();
        permuted.trees.swap(0, qim.n_trees() - 1);
        permuted.leaves.swap(0, qim.n_trees() - 1);
        permuted.leaf_bounds.swap(0, qim.n_trees() - 1);
        let mut flats = qim.flat.trees().to_vec();
        flats.swap(0, qim.n_trees() - 1);
        permuted.flat = FlatForest::from_flat_trees(flats).unwrap();
        if permuted.trees != qim.trees {
            let err = permuted.validate().unwrap_err();
            let CoreError::InvalidInput { reason } = err else {
                panic!("expected InvalidInput");
            };
            assert!(reason.contains("canonical member order"), "{reason}");
        }

        // A desynchronized bound table must be rejected by the per-member
        // representation check.
        let mut tampered = qim.clone();
        tampered.leaf_bounds[1][0] += 0.25;
        let err = tampered.validate().unwrap_err();
        let CoreError::InvalidInput { reason } = err else {
            panic!("expected InvalidInput");
        };
        assert!(
            reason.contains("calibrated forest QIM member 1"),
            "{reason}"
        );

        // A member routing on a different shape must be rejected before a
        // serve call can hit the arity mismatch at runtime.
        let mut two_features = Dataset::new(vec!["a".into(), "b".into()], 2).unwrap();
        for i in 0..400 {
            two_features
                .push_row(&[i as f64 / 400.0, 0.0], u32::from(i >= 200))
                .unwrap();
        }
        let alien = TreeBuilder::new().max_depth(2).fit(&two_features).unwrap();
        let mut mismatched = qim.clone();
        mismatched.trees[1] = alien;
        let err = mismatched.validate().unwrap_err();
        let CoreError::InvalidInput { reason } = err else {
            panic!("expected InvalidInput");
        };
        assert!(reason.contains("member 1 routes on 2 features"), "{reason}");
    }

    #[test]
    fn taqim_dispatch_matches_the_underlying_models() {
        let tree = trained_tree(400);
        let calib = calib_samples(1000, |x| x > 0.5);
        let single =
            CalibratedQim::calibrate(tree.clone(), &calib, CalibrationOptions::default()).unwrap();
        let forest_qim = CalibratedForestQim::calibrate(
            trained_forest(3, 2, 400),
            &calib,
            CalibrationOptions::default(),
        )
        .unwrap();
        let as_tree = TaQim::Tree(single.clone());
        let as_forest = TaQim::Forest(forest_qim.clone());
        assert_eq!(as_tree.n_trees(), 1);
        assert_eq!(as_forest.n_trees(), 3);
        assert_eq!(as_tree.n_features(), 1);
        assert_eq!(as_forest.n_leaves(), forest_qim.flat().n_leaves_total());
        assert!(as_tree.as_tree().is_some() && as_tree.as_forest().is_none());
        assert!(as_forest.as_forest().is_some() && as_forest.as_tree().is_none());
        for q in [[0.1], [0.5], [0.9]] {
            assert_eq!(
                as_tree.uncertainty(&q).unwrap().to_bits(),
                single.uncertainty(&q).unwrap().to_bits()
            );
            assert_eq!(
                as_forest.uncertainty(&q).unwrap().to_bits(),
                forest_qim.uncertainty(&q).unwrap().to_bits()
            );
            assert_eq!(
                as_forest.uncertainty_reference(&q).unwrap().to_bits(),
                forest_qim.uncertainty_reference(&q).unwrap().to_bits()
            );
        }
        as_tree.validate().unwrap();
        as_forest.validate().unwrap();
        assert_eq!(as_tree.min_uncertainty(), single.min_uncertainty());
        assert_eq!(as_forest.min_uncertainty(), forest_qim.min_uncertainty());

        // The leafless backend dispatches through the same arms.
        let conformal = crate::conformal::ConformalQim::calibrate(
            &calib_samples(600, |x| x > 0.5),
            &calib,
            CalibrationOptions::default(),
            crate::conformal::ConformalOptions::default(),
        )
        .unwrap();
        let as_conf = TaQim::Conformal(conformal.clone());
        assert_eq!(as_conf.n_trees(), 0);
        assert_eq!(as_conf.n_leaves(), 0);
        assert_eq!(as_conf.n_features(), 1);
        assert!(as_conf.as_conformal().is_some());
        assert!(as_conf.as_tree().is_none() && as_conf.as_forest().is_none());
        assert!(as_tree.as_conformal().is_none() && as_forest.as_conformal().is_none());
        for q in [[0.1], [0.5], [0.9]] {
            assert_eq!(
                as_conf.uncertainty(&q).unwrap().to_bits(),
                conformal.uncertainty(&q).unwrap().to_bits()
            );
            assert_eq!(
                as_conf.uncertainty_reference(&q).unwrap().to_bits(),
                conformal.uncertainty_reference(&q).unwrap().to_bits()
            );
        }
        as_conf.validate().unwrap();
        assert_eq!(as_conf.min_uncertainty(), conformal.min_uncertainty());
        assert_eq!(
            as_conf.route_support(&[0.3]).unwrap(),
            RouteSupport::Unsupported
        );
        assert!(as_conf.route_support(&[0.1, 0.2]).is_err());
    }

    /// Drives every backend through the sealed [`QimBackend`] contract via
    /// a generic helper, so the trait surface itself is exercised (not
    /// just the inherent methods it shadows).
    #[test]
    fn qim_backend_trait_agrees_with_inherent_dispatch() {
        fn exercise<B: QimBackend>(backend: &B, expected_kind: &str) {
            assert_eq!(backend.artifact_kind_name(), expected_kind);
            assert_eq!(QimBackend::n_features(backend), 1);
            backend.validate().unwrap();
            let mut scratch = ServingScratch::default();
            let rows = [vec![0.1], vec![0.5], vec![0.9]];
            let mut out = Vec::new();
            backend
                .uncertainty_batch_into(1, &rows, &mut scratch, &mut out)
                .unwrap();
            for (row, served) in rows.iter().zip(&out) {
                assert_eq!(
                    served.to_bits(),
                    QimBackend::uncertainty(backend, row).unwrap().to_bits()
                );
                assert_eq!(
                    served.to_bits(),
                    backend.uncertainty_reference(row).unwrap().to_bits()
                );
            }
            let support = QimBackend::route_support(backend, &rows[0]).unwrap();
            match support {
                RouteSupport::Samples(n) => assert!(n >= 1),
                RouteSupport::Unsupported => {}
            }
            assert!(QimBackend::min_uncertainty(backend) <= out[0]);
            assert!(QimBackend::route_support(backend, &[0.1, 0.2]).is_err());
        }

        let calib = calib_samples(1000, |x| x > 0.5);
        let single =
            CalibratedQim::calibrate(trained_tree(400), &calib, CalibrationOptions::default())
                .unwrap();
        let forest_qim = CalibratedForestQim::calibrate(
            trained_forest(3, 2, 400),
            &calib,
            CalibrationOptions::default(),
        )
        .unwrap();
        let conformal = crate::conformal::ConformalQim::calibrate(
            &calib_samples(600, |x| x > 0.5),
            &calib,
            CalibrationOptions::default(),
            crate::conformal::ConformalOptions::default(),
        )
        .unwrap();
        exercise(&single, "TreeQim");
        exercise(&forest_qim, "ForestQim");
        exercise(&conformal, "ConformalQim");
        exercise(&TaQim::Tree(single), "TreeQim");
        exercise(&TaQim::Forest(forest_qim), "ForestQim");
        exercise(&TaQim::Conformal(conformal), "ConformalQim");
    }

    #[test]
    fn calibration_shift_is_detected_in_bounds() {
        // Tree learned "failure iff x > 0.5" but calibration data fails
        // everywhere: bounds must reflect calibration, not training.
        let tree = trained_tree(200);
        let calib = calib_samples(800, |_| true);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        for (_, leaf) in qim.calibrated_leaves() {
            assert!(leaf.uncertainty_bound > 0.98);
        }
    }

    /// Satellite regression test: the forest's reported minimum must be
    /// *attainable* — `min_uncertainty() <= uncertainty(x)` for every
    /// calibration sample, with equality at some sample. (The old mean of
    /// per-member minima generally undercut every servable value.)
    #[test]
    fn forest_min_uncertainty_is_attained_on_a_calibration_sample() {
        let forest = trained_forest(5, 11, 600);
        let calib = calib_samples(2500, |x| x > 0.5);
        let qim =
            CalibratedForestQim::calibrate(forest, &calib, CalibrationOptions::default()).unwrap();
        let mut attained = false;
        for (features, _) in &calib {
            let served = qim.uncertainty(features).unwrap();
            assert!(
                qim.min_uncertainty() <= served,
                "min {} exceeds served {} at x={}",
                qim.min_uncertainty(),
                served,
                features[0]
            );
            attained |= served.to_bits() == qim.min_uncertainty().to_bits();
        }
        assert!(attained, "the minimum must be a real served value");
        // The old formulation survives as a documented diagnostic floor.
        assert!(qim.min_member_mean_bound() <= qim.min_uncertainty());
        qim.validate().unwrap();
    }

    #[test]
    fn invalid_confidence_is_rejected_at_both_calibrate_entries() {
        let assert_names_field = |err: CoreError| {
            let CoreError::InvalidInput { reason } = err else {
                panic!("expected InvalidInput");
            };
            assert!(reason.contains("`confidence`"), "{reason}");
        };
        let calib = calib_samples(1000, |x| x > 0.5);
        for confidence in [0.0, -0.5, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            let opts = CalibrationOptions {
                confidence,
                ..Default::default()
            };
            assert_names_field(
                CalibratedQim::calibrate(trained_tree(400), &calib, opts).unwrap_err(),
            );
            assert_names_field(
                CalibratedForestQim::calibrate(trained_forest(2, 1, 400), &calib, opts)
                    .unwrap_err(),
            );
        }
    }

    #[test]
    fn route_support_reports_calibration_sample_counts() {
        let calib = calib_samples(1000, |x| x > 0.5);
        let single =
            CalibratedQim::calibrate(trained_tree(400), &calib, CalibrationOptions::default())
                .unwrap();
        // Single tree: support is exactly the routed leaf's total.
        for q in [[0.1], [0.5], [0.9]] {
            let (_, leaf) = single.route(&q).unwrap();
            assert_eq!(single.route_support(&q).unwrap(), leaf.total);
            assert!(leaf.total >= 200, "pruning floor guarantees support");
        }

        // Forest: support is the min over members' routed-leaf totals.
        let qim = CalibratedForestQim::calibrate(
            trained_forest(4, 3, 500),
            &calib,
            CalibrationOptions::default(),
        )
        .unwrap();
        for q in [[0.1], [0.5], [0.9]] {
            let expected = (0..qim.n_trees())
                .map(|t| {
                    let leaf = qim.flat().tree(t).predict_leaf_id(&q).unwrap();
                    let node = qim.flat().tree(t).leaf(leaf).node_id;
                    qim.calibrated_leaf(t, node).unwrap().total
                })
                .min()
                .unwrap();
            assert_eq!(qim.route_support(&q).unwrap(), expected);
        }

        // Dispatch wraps the per-leaf counts in `RouteSupport::Samples`.
        assert_eq!(
            TaQim::Tree(single.clone()).route_support(&[0.3]).unwrap(),
            RouteSupport::Samples(single.route_support(&[0.3]).unwrap())
        );
        assert_eq!(
            TaQim::Forest(qim.clone()).route_support(&[0.3]).unwrap(),
            RouteSupport::Samples(qim.route_support(&[0.3]).unwrap())
        );
        assert_eq!(
            TaQim::Tree(single.clone())
                .route_support(&[0.3])
                .unwrap()
                .samples(),
            Some(single.route_support(&[0.3]).unwrap())
        );
        assert_eq!(RouteSupport::Unsupported.samples(), None);
        // Arity mismatches surface as errors, not panics.
        assert!(single.route_support(&[0.1, 0.2]).is_err());
        assert!(qim.route_support(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn forest_validate_rejects_an_undercutting_served_minimum() {
        let forest = trained_forest(3, 5, 400);
        let calib = calib_samples(1500, |x| x > 0.5);
        let qim =
            CalibratedForestQim::calibrate(forest, &calib, CalibrationOptions::default()).unwrap();
        // Below the member-minima floor: provably unservable.
        let mut tampered = qim.clone();
        tampered.min_served_bound = qim.min_member_mean_bound() / 2.0;
        let err = tampered.validate().unwrap_err();
        let CoreError::InvalidInput { reason } = err else {
            panic!("expected InvalidInput");
        };
        assert!(reason.contains("calibrated forest QIM"), "{reason}");
        assert!(reason.contains("undercuts"), "{reason}");
        // Outside [0, 1] entirely.
        let mut tampered = qim.clone();
        tampered.min_served_bound = f64::NAN;
        assert!(tampered.validate().is_err());
    }

    #[test]
    fn batched_uncertainty_matches_per_sample_bitwise() {
        let calib = calib_samples(1500, |x| x > 0.5);
        let single =
            CalibratedQim::calibrate(trained_tree(400), &calib, CalibrationOptions::default())
                .unwrap();
        let forest = CalibratedForestQim::calibrate(
            trained_forest(4, 3, 500),
            &calib,
            CalibrationOptions::default(),
        )
        .unwrap();
        let rows: Vec<[f64; 1]> = (0..97).map(|i| [i as f64 / 96.0]).collect();
        let mut scratch = ServingScratch::new();
        for threads in [1usize, 2, 8] {
            // Single tree: appends in input order, preserving prior content.
            let mut out = vec![9.0];
            single
                .uncertainty_batch_into(threads, &rows, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out[0], 9.0);
            assert_eq!(out.len(), rows.len() + 1);
            for (row, &got) in rows.iter().zip(&out[1..]) {
                assert_eq!(got.to_bits(), single.uncertainty(row).unwrap().to_bits());
            }
            // Forest: one interleaved pass, same member-order summation.
            let mut out = Vec::new();
            forest
                .uncertainty_batch_into(threads, &rows, &mut scratch, &mut out)
                .unwrap();
            for (row, &got) in rows.iter().zip(&out) {
                assert_eq!(got.to_bits(), forest.uncertainty(row).unwrap().to_bits());
            }
            // TaQim dispatch agrees with the underlying shapes.
            for taqim in [TaQim::Tree(single.clone()), TaQim::Forest(forest.clone())] {
                let mut via_dispatch = Vec::new();
                taqim
                    .uncertainty_batch_into(threads, &rows, &mut scratch, &mut via_dispatch)
                    .unwrap();
                for (row, &got) in rows.iter().zip(&via_dispatch) {
                    assert_eq!(got.to_bits(), taqim.uncertainty(row).unwrap().to_bits());
                }
            }
        }
        // Empty batches are fine; arity mismatches leave `out` untouched.
        let mut out = vec![0.5];
        let empty: [[f64; 1]; 0] = [];
        single
            .uncertainty_batch_into(2, &empty, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out, vec![0.5]);
        assert!(single
            .uncertainty_batch_into(2, &[[0.1, 0.2]], &mut scratch, &mut out)
            .is_err());
        assert!(forest
            .uncertainty_batch_into(2, &[[0.1, 0.2]], &mut scratch, &mut out)
            .is_err());
        assert_eq!(out, vec![0.5], "failed batches must not leak output");
    }
}
