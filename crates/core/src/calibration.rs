//! Calibrated quality impact models: a decision tree whose leaves carry
//! dependable (one-sided, high-confidence) failure-probability bounds.
//!
//! The paper's procedure (Section IV-C.2): train a CART tree on the
//! training data, prune on the *calibration* set so every leaf keeps at
//! least 200 calibration samples, then compute a statistical uncertainty
//! guarantee per leaf at confidence 0.999.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use tauw_dtree::prune::prune_to_min_count;
use tauw_dtree::{DecisionTree, NodeId};
use tauw_stats::binomial::{upper_bound, BoundMethod};

/// Calibration statistics and the resulting bound for one leaf.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedLeaf {
    /// Observed failures among the calibration samples routed to the leaf.
    pub failures: u64,
    /// Calibration samples routed to the leaf.
    pub total: u64,
    /// One-sided upper confidence bound on the failure probability: the
    /// *dependable uncertainty* reported for inputs landing in this leaf.
    pub uncertainty_bound: f64,
}

impl CalibratedLeaf {
    /// Point estimate `failures / total`.
    pub fn point_estimate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.failures as f64 / self.total as f64
        }
    }
}

/// Hyper-parameters of the calibration step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationOptions {
    /// Minimum calibration samples per leaf (paper: 200).
    pub min_samples_per_leaf: u64,
    /// Confidence level of the per-leaf bound (paper: 0.999).
    pub confidence: f64,
    /// Bound construction method (paper: exact/Clopper–Pearson).
    pub method: BoundMethod,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            min_samples_per_leaf: 200,
            confidence: 0.999,
            method: BoundMethod::ClopperPearson,
        }
    }
}

/// A quality impact model after calibration: routing tree + per-leaf
/// dependable uncertainty bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedQim {
    tree: DecisionTree,
    /// Indexed by [`NodeId`]; `None` for internal nodes.
    leaves: Vec<Option<CalibratedLeaf>>,
    options: CalibrationOptions,
}

impl CalibratedQim {
    /// Calibrates a trained tree against a calibration set.
    ///
    /// `samples` yields `(features, failed)` pairs; the tree is pruned so
    /// every leaf keeps at least `options.min_samples_per_leaf` of them,
    /// then each leaf receives an `upper_bound` on its failure rate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the calibration set is empty, too small for
    /// even the root to satisfy the minimum, or rows have the wrong arity.
    pub fn calibrate(
        mut tree: DecisionTree,
        samples: &[(Vec<f64>, bool)],
        options: CalibrationOptions,
    ) -> Result<Self, CoreError> {
        if samples.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "calibration set is empty".into(),
            });
        }
        // 1. Route calibration samples and prune.
        let counts = tree.node_sample_counts(samples.iter().map(|(f, _)| f.as_slice()))?;
        prune_to_min_count(&mut tree, &counts, options.min_samples_per_leaf)?;

        // 2. Re-route on the pruned tree and collect per-leaf failure stats.
        let mut failures = vec![0u64; tree.n_nodes()];
        let mut totals = vec![0u64; tree.n_nodes()];
        for (features, failed) in samples {
            let leaf = tree.leaf_id(features)?;
            totals[leaf] += 1;
            if *failed {
                failures[leaf] += 1;
            }
        }

        // 3. Bound per leaf.
        let mut leaves = vec![None; tree.n_nodes()];
        for leaf in tree.leaf_ids() {
            let bound = upper_bound(
                options.method,
                failures[leaf],
                totals[leaf],
                options.confidence,
            )?;
            leaves[leaf] = Some(CalibratedLeaf {
                failures: failures[leaf],
                total: totals[leaf],
                uncertainty_bound: bound,
            });
        }
        Ok(CalibratedQim {
            tree,
            leaves,
            options,
        })
    }

    /// Dependable uncertainty for a feature vector: the bound of the leaf
    /// the vector routes to.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        let leaf = self.tree.leaf_id(features)?;
        Ok(self.leaves[leaf]
            .as_ref()
            .expect("every reachable leaf was calibrated")
            .uncertainty_bound)
    }

    /// The calibrated leaf a feature vector routes to (id + statistics).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route(&self, features: &[f64]) -> Result<(NodeId, CalibratedLeaf), CoreError> {
        let leaf = self.tree.leaf_id(features)?;
        Ok((
            leaf,
            self.leaves[leaf].expect("every reachable leaf was calibrated"),
        ))
    }

    /// The underlying (pruned) routing tree, for transparency/export.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Calibration options used.
    pub fn options(&self) -> CalibrationOptions {
        self.options
    }

    /// All calibrated leaves `(id, leaf)` in depth-first order.
    pub fn calibrated_leaves(&self) -> Vec<(NodeId, CalibratedLeaf)> {
        self.tree
            .leaf_ids()
            .into_iter()
            .map(|id| {
                (
                    id,
                    self.leaves[id].expect("every reachable leaf was calibrated"),
                )
            })
            .collect()
    }

    /// The smallest uncertainty bound any leaf guarantees — the "lowest
    /// uncertainty" highlighted in the paper's Fig. 5.
    pub fn min_uncertainty(&self) -> f64 {
        self.calibrated_leaves()
            .iter()
            .map(|(_, l)| l.uncertainty_bound)
            .fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauw_dtree::{Dataset, TreeBuilder};

    /// Training data: failure iff x > 0.5, with x uniform on a grid.
    fn trained_tree(n: usize) -> DecisionTree {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..n {
            let x = i as f64 / n as f64;
            ds.push_row(&[x], u32::from(x > 0.5)).unwrap();
        }
        TreeBuilder::new().max_depth(4).fit(&ds).unwrap()
    }

    fn calib_samples(n: usize, failure_rule: impl Fn(f64) -> bool) -> Vec<(Vec<f64>, bool)> {
        (0..n)
            .map(|i| {
                let x = (i as f64 + 0.5) / n as f64;
                (vec![x], failure_rule(x))
            })
            .collect()
    }

    #[test]
    fn calibrated_bounds_cover_observed_rates() {
        let tree = trained_tree(400);
        let calib = calib_samples(1000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        for (_, leaf) in qim.calibrated_leaves() {
            assert!(leaf.total >= 200);
            assert!(leaf.uncertainty_bound >= leaf.point_estimate());
            assert!(leaf.uncertainty_bound <= 1.0);
        }
    }

    #[test]
    fn low_risk_region_gets_low_bound() {
        let tree = trained_tree(400);
        let calib = calib_samples(2000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        let low = qim.uncertainty(&[0.1]).unwrap();
        let high = qim.uncertainty(&[0.9]).unwrap();
        assert!(low < 0.05, "clean region bound {low}");
        assert!(high > 0.9, "failing region bound {high}");
        assert_eq!(qim.min_uncertainty(), low.min(high));
    }

    #[test]
    fn min_samples_forces_pruning() {
        let tree = trained_tree(400);
        let n_leaves_before = tree.n_leaves();
        let calib = calib_samples(450, |x| x > 0.5);
        let opts = CalibrationOptions {
            min_samples_per_leaf: 200,
            ..Default::default()
        };
        let qim = CalibratedQim::calibrate(tree, &calib, opts).unwrap();
        assert!(qim.tree().n_leaves() <= n_leaves_before);
        assert!(
            qim.tree().n_leaves() <= 2,
            "450 samples / 200 per leaf allows at most 2 leaves"
        );
    }

    #[test]
    fn higher_confidence_widens_bounds() {
        let tree = trained_tree(400);
        let calib = calib_samples(2000, |x| x > 0.5);
        let loose = CalibratedQim::calibrate(
            tree.clone(),
            &calib,
            CalibrationOptions {
                confidence: 0.9,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = CalibratedQim::calibrate(
            tree,
            &calib,
            CalibrationOptions {
                confidence: 0.9999,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tight.uncertainty(&[0.1]).unwrap() > loose.uncertainty(&[0.1]).unwrap());
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let tree = trained_tree(100);
        assert!(matches!(
            CalibratedQim::calibrate(tree, &[], CalibrationOptions::default()),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn tiny_calibration_is_infeasible() {
        let tree = trained_tree(100);
        let calib = calib_samples(50, |x| x > 0.5);
        assert!(matches!(
            CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()),
            Err(CoreError::Tree(
                tauw_dtree::DtreeError::CalibrationInfeasible { .. }
            ))
        ));
    }

    #[test]
    fn arity_mismatch_at_query_time() {
        let tree = trained_tree(200);
        let calib = calib_samples(500, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        assert!(qim.uncertainty(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn route_returns_leaf_statistics() {
        let tree = trained_tree(200);
        let calib = calib_samples(1000, |x| x > 0.5);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        let (id, leaf) = qim.route(&[0.2]).unwrap();
        assert!(leaf.total >= 200);
        assert_eq!(qim.uncertainty(&[0.2]).unwrap(), leaf.uncertainty_bound);
        let (id2, _) = qim.route(&[0.21]).unwrap();
        assert_eq!(id, id2, "nearby inputs route to the same leaf");
    }

    #[test]
    fn calibration_shift_is_detected_in_bounds() {
        // Tree learned "failure iff x > 0.5" but calibration data fails
        // everywhere: bounds must reflect calibration, not training.
        let tree = trained_tree(200);
        let calib = calib_samples(800, |_| true);
        let qim = CalibratedQim::calibrate(tree, &calib, CalibrationOptions::default()).unwrap();
        for (_, leaf) in qim.calibrated_leaves() {
            assert!(leaf.uncertainty_bound > 0.98);
        }
    }
}
