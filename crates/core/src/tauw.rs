//! The timeseries-aware uncertainty wrapper (taUW): the paper's main
//! contribution.
//!
//! Architecture (paper Fig. 2): at every timestep the classical stateless
//! wrapper produces `u_i` from the current quality factors; the result and
//! the DDM outcome `o_i` enter the **timeseries buffer**; the information
//! fusion component computes the fused outcome `o_i^(if)` over the buffer;
//! the **timeseries-aware quality model** derives taQF1–4 from the buffer;
//! and the **timeseries-aware quality impact model** (a second calibrated
//! CART tree over stateless QFs + taQFs) produces the dependable
//! uncertainty for the *fused* outcome.

use crate::buffer::TimeseriesBuffer;
use crate::calibration::{
    CalibratedForestQim, CalibratedQim, CalibrationOptions, RouteSupport, ServingScratch, TaQim,
};
use crate::conformal::{ConformalOptions, ConformalQim};
use crate::error::CoreError;
use crate::taqf::{TaqfSet, TaqfVector};
use crate::training::{flatten_stateless, validate_series, TrainingSeries};
use crate::wrapper::{UncertaintyWrapper, WrapperBuilder};
use serde::{Deserialize, Serialize};
use tauw_dtree::{Dataset, ForestBuilder, TreeBuilder};

/// Output of one taUW timestep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TauwStep {
    /// The fused outcome `o_i^(if)` (majority vote with most-recent
    /// tie-breaking over the buffered outcomes).
    pub fused_outcome: u32,
    /// Dependable uncertainty of the fused outcome from the taQIM.
    pub uncertainty: f64,
    /// The stateless wrapper's uncertainty `u_i` for the current step's
    /// isolated outcome (also what entered the buffer).
    pub stateless_uncertainty: f64,
    /// The timeseries-aware quality factors computed this step.
    pub taqf: TaqfVector,
    /// Steps in the current series so far (`i + 1`) — the lifetime count,
    /// which a bounded buffer's eviction does not shrink (it equals
    /// `taqf.length`).
    pub series_length: usize,
    /// The uncertainty actually served after online adaptation (see
    /// [`crate::adaptive`]). On the non-adaptive paths this equals
    /// [`TauwStep::uncertainty`] bit-identically.
    pub adapted_uncertainty: f64,
    /// Per-stream drift/regime classification from the adaptive coverage
    /// loop. Always [`crate::adaptive::DriftSignal::Stable`] on the
    /// non-adaptive paths.
    pub drift: crate::adaptive::DriftSignal,
}

/// Which taQIM backend [`TauwBuilder::fit`] trains behind the
/// [`crate::calibration::QimBackend`] seam.
///
/// Every variant trains deterministically and serves through the same
/// session/engine wave path; see the trait docs for the full contract.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum BackendSpec {
    /// The paper's single calibrated CART tree (the default).
    #[default]
    Tree,
    /// A calibrated bootstrap forest: `n_trees` members resampled
    /// deterministically from `seed`, serving the mean of per-member
    /// bounds (smooths the hard split boundaries of a single tree).
    Forest {
        /// Number of bootstrap members.
        n_trees: usize,
        /// Root seed the member resamples derive from.
        seed: u64,
    },
    /// A leafless split-conformal model: histogram base scorer fit on the
    /// training replay, one-sided conformal quantile shift calibrated on
    /// the calibration replay (see [`crate::conformal::ConformalQim`]).
    Conformal(ConformalOptions),
}

/// Builder/trainer for [`TimeseriesAwareWrapper`].
#[derive(Debug, Clone, PartialEq)]
pub struct TauwBuilder {
    stateless: WrapperBuilder,
    taqf_set: TaqfSet,
    backend: BackendSpec,
}

impl Default for TauwBuilder {
    fn default() -> Self {
        TauwBuilder {
            stateless: WrapperBuilder::new(),
            taqf_set: TaqfSet::FULL,
            backend: BackendSpec::Tree,
        }
    }
}

impl TauwBuilder {
    /// Creates a builder with the paper's defaults (all four taQFs, gini
    /// CART depth 8, ≥200 calibration samples per leaf, 0.999-confidence
    /// Clopper–Pearson bounds).
    pub fn new() -> Self {
        Self::default()
    }

    /// Configures the underlying stateless wrapper (tree depth, criterion,
    /// calibration options — shared by the taQIM).
    pub fn wrapper(&mut self, builder: WrapperBuilder) -> &mut Self {
        self.stateless = builder;
        self
    }

    /// Selects which taQFs the taQIM consumes (the RQ3 feature study
    /// sweeps all 16 subsets).
    pub fn taqf_set(&mut self, set: TaqfSet) -> &mut Self {
        self.taqf_set = set;
        self
    }

    /// Selects the taQIM backend trained behind the
    /// [`crate::calibration::QimBackend`] seam: the paper's single tree
    /// (the default), a boundary-smoothing bootstrap forest, or the
    /// leafless split-conformal model. Every choice trains
    /// deterministically and serves through the same session/engine step
    /// routine.
    ///
    /// # Examples
    ///
    /// ```
    /// use tauw_core::calibration::CalibrationOptions;
    /// use tauw_core::tauw::{BackendSpec, TauwBuilder};
    /// use tauw_core::training::{TrainingSeries, TrainingStep};
    /// use tauw_core::wrapper::WrapperBuilder;
    ///
    /// let series = |q: f64, outcomes: &[u32]| TrainingSeries {
    ///     true_outcome: 0,
    ///     steps: outcomes
    ///         .iter()
    ///         .map(|&o| TrainingStep { quality_factors: vec![q], outcome: o })
    ///         .collect(),
    /// };
    /// let mut train = Vec::new();
    /// let mut calib = Vec::new();
    /// for i in 0..120 {
    ///     let q = (i % 12) as f64 / 12.0;
    ///     let outcomes: Vec<u32> = (0..10).map(|j| u32::from(q > 0.6 && j % 3 == 0)).collect();
    ///     train.push(series(q, &outcomes));
    ///     calib.push(series(q, &outcomes));
    /// }
    /// let mut wb = WrapperBuilder::new();
    /// wb.max_depth(3).calibration(CalibrationOptions {
    ///     min_samples_per_leaf: 50,
    ///     confidence: 0.99,
    ///     ..Default::default()
    /// });
    /// let mut builder = TauwBuilder::new();
    /// builder.wrapper(wb).backend(BackendSpec::Forest { n_trees: 4, seed: 42 });
    /// let tauw = builder.fit(vec!["q".into()], &train, &calib)?;
    /// assert_eq!(tauw.taqim().n_trees(), 4);
    ///
    /// // Forests serve through the same session/engine step routine.
    /// let mut session = tauw.new_session();
    /// let step = session.step(&[0.1], 0)?;
    /// assert!(step.uncertainty > 0.0 && step.uncertainty < 0.5);
    /// # Ok::<(), tauw_core::CoreError>(())
    /// ```
    pub fn backend(&mut self, spec: BackendSpec) -> &mut Self {
        self.backend = spec;
        self
    }

    /// Trains the full taUW pipeline:
    ///
    /// 1. fit + calibrate the stateless wrapper on the flattened steps,
    /// 2. replay every training series through the stateless wrapper and
    ///    information fusion to compute taQFs and fused-failure labels,
    /// 3. fit the taQIM tree on `[stateless QFs ‖ selected taQFs]`,
    /// 4. calibrate it on the replayed calibration series.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on empty/ragged input or infeasible
    /// calibration.
    pub fn fit(
        &self,
        feature_names: Vec<String>,
        train: &[TrainingSeries],
        calib: &[TrainingSeries],
    ) -> Result<TimeseriesAwareWrapper, CoreError> {
        let arity = validate_series(train)?;
        let calib_arity = validate_series(calib)?;
        if arity != calib_arity {
            return Err(CoreError::InvalidInput {
                reason: format!("train arity {arity} differs from calibration arity {calib_arity}"),
            });
        }
        if feature_names.len() != arity {
            return Err(CoreError::FeatureArityMismatch {
                expected: arity,
                actual: feature_names.len(),
            });
        }

        // 1. Stateless wrapper.
        let stateless_train = flatten_stateless(train);
        let stateless_calib = flatten_stateless(calib);
        let stateless =
            self.stateless
                .fit(feature_names.clone(), &stateless_train, &stateless_calib)?;

        // 2. Replay series to build the timeseries-aware rows.
        let train_rows = replay(&stateless, train)?;
        let calib_rows = replay(&stateless, calib)?;

        // 3./4. Fit + calibrate the taQIM.
        self.fit_reusing_stateless(stateless, &feature_names, &train_rows, &calib_rows)
    }

    /// Fits only the timeseries-aware part on top of an already trained
    /// stateless wrapper, consuming pre-computed [`replay`] rows. This is
    /// the fast path for the RQ3 subset sweep, where 16 taQIM variants
    /// share one stateless wrapper and one replay pass.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on empty replay batches or infeasible
    /// calibration.
    pub fn fit_reusing_stateless(
        &self,
        stateless: UncertaintyWrapper,
        feature_names: &[String],
        train_replay: &[ReplayRow],
        calib_replay: &[ReplayRow],
    ) -> Result<TimeseriesAwareWrapper, CoreError> {
        if train_replay.is_empty() || calib_replay.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "replay rows are empty".into(),
            });
        }
        let calib_rows: Vec<(Vec<f64>, bool)> = calib_replay
            .iter()
            .map(|row| (row.ta_features(self.taqf_set), row.fused_failed))
            .collect();
        let options = self.calibration_options();
        let taqim = match self.backend {
            BackendSpec::Tree => {
                let ds = self.ta_dataset(feature_names, train_replay)?;
                let tree = clone_tree_builder(&self.stateless).fit(&ds)?;
                TaQim::Tree(CalibratedQim::calibrate(tree, &calib_rows, options)?)
            }
            BackendSpec::Forest { n_trees, seed } => {
                let ds = self.ta_dataset(feature_names, train_replay)?;
                let mut forest_builder = ForestBuilder::new(n_trees, seed);
                forest_builder.tree(clone_tree_builder(&self.stateless));
                let forest = forest_builder.fit(&ds)?;
                TaQim::Forest(CalibratedForestQim::calibrate(
                    forest,
                    &calib_rows,
                    options,
                )?)
            }
            BackendSpec::Conformal(conformal) => {
                // The leafless backend consumes labelled rows directly —
                // no tree dataset is built.
                let train_rows: Vec<(Vec<f64>, bool)> = train_replay
                    .iter()
                    .map(|row| (row.ta_features(self.taqf_set), row.fused_failed))
                    .collect();
                TaQim::Conformal(ConformalQim::calibrate(
                    &train_rows,
                    &calib_rows,
                    options,
                    conformal,
                )?)
            }
        };
        Ok(TimeseriesAwareWrapper {
            stateless,
            taqim,
            taqf_set: self.taqf_set,
        })
    }

    /// Assembles the taQIM training dataset `[stateless QFs ‖ selected
    /// taQFs] → fused-failure label` for the tree-shaped backends.
    fn ta_dataset(
        &self,
        feature_names: &[String],
        train_replay: &[ReplayRow],
    ) -> Result<Dataset, CoreError> {
        let ta_names = ta_feature_names(feature_names, self.taqf_set);
        let mut ds = Dataset::new(ta_names, 2)?;
        ds.reserve(train_replay.len());
        for row in train_replay {
            ds.push_row(&row.ta_features(self.taqf_set), u32::from(row.fused_failed))?;
        }
        Ok(ds)
    }

    fn calibration_options(&self) -> CalibrationOptions {
        // WrapperBuilder owns the canonical calibration options; reuse them
        // for the taQIM (paper: same procedure for both models).
        self.stateless.calibration_options()
    }
}

/// One replayed timestep: everything needed to assemble taQIM training
/// rows for *any* taQF subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayRow {
    /// The step's stateless quality factors.
    pub quality_factors: Vec<f64>,
    /// The step's stateless uncertainty estimate `u_i`.
    pub stateless_uncertainty: f64,
    /// The fused outcome after this step.
    pub fused_outcome: u32,
    /// All four taQF values after this step.
    pub taqf: TaqfVector,
    /// Whether the fused outcome disagrees with the series ground truth.
    pub fused_failed: bool,
    /// Whether the step's isolated DDM outcome disagrees with ground truth.
    pub isolated_failed: bool,
    /// Position of the step within its series (0-based).
    pub step: usize,
}

impl ReplayRow {
    /// The taQIM feature vector `[stateless QFs ‖ selected taQFs]`.
    pub fn ta_features(&self, set: TaqfSet) -> Vec<f64> {
        let mut features = self.quality_factors.clone();
        features.extend(set.select(&self.taqf));
        features
    }
}

/// Replays series through the stateless wrapper + majority voting,
/// producing one [`ReplayRow`] per step. This is the shared preprocessing
/// for taQIM training, calibration and evaluation.
///
/// Uses the process-wide [`parallel::max_threads`] budget; see
/// [`replay_with_threads`] for an explicit budget. Output is bit-identical
/// for every thread count.
///
/// # Errors
///
/// Returns [`CoreError`] on feature-arity mismatch.
pub fn replay(
    stateless: &UncertaintyWrapper,
    batch: &[TrainingSeries],
) -> Result<Vec<ReplayRow>, CoreError> {
    replay_with_threads(stateless, batch, parallel::max_threads())
}

/// [`replay`] with an explicit thread budget. Every series is replayed
/// independently (series own their buffers), so the fan-out preserves
/// bit-identical rows in batch order for any `threads`.
///
/// # Errors
///
/// Returns [`CoreError`] on feature-arity mismatch.
pub fn replay_with_threads(
    stateless: &UncertaintyWrapper,
    batch: &[TrainingSeries],
    threads: usize,
) -> Result<Vec<ReplayRow>, CoreError> {
    let per_series: Vec<Result<Vec<ReplayRow>, CoreError>> =
        parallel::par_map(threads, batch, |series| replay_one(stateless, series));
    let mut rows = Vec::with_capacity(batch.iter().map(TrainingSeries::len).sum());
    for series_rows in per_series {
        rows.extend(series_rows?);
    }
    Ok(rows)
}

/// Replays a single series (one buffer, steps in order).
fn replay_one(
    stateless: &UncertaintyWrapper,
    series: &TrainingSeries,
) -> Result<Vec<ReplayRow>, CoreError> {
    let mut buffer = TimeseriesBuffer::with_capacity(series.len());
    let mut rows = Vec::with_capacity(series.len());
    for (step_idx, step) in series.steps.iter().enumerate() {
        let u = stateless.uncertainty(&step.quality_factors)?;
        buffer.push(step.outcome, u);
        // Same incremental fusion + taQF aggregates as the serving path, so
        // training rows and runtime estimates come from one routine.
        let fused = buffer
            .fused_outcome()
            .expect("buffer is non-empty after push");
        let taqf = TaqfVector::compute(&buffer, fused).expect("buffer is non-empty");
        rows.push(ReplayRow {
            quality_factors: step.quality_factors.clone(),
            stateless_uncertainty: u,
            fused_outcome: fused,
            taqf,
            fused_failed: fused != series.true_outcome,
            isolated_failed: step.outcome != series.true_outcome,
            step: step_idx,
        });
    }
    Ok(rows)
}

/// Column names for the taQIM: stateless names followed by the selected
/// taQF names.
fn ta_feature_names(stateless: &[String], set: TaqfSet) -> Vec<String> {
    stateless
        .iter()
        .cloned()
        .chain(set.kinds().into_iter().map(|k| k.name().to_string()))
        .collect()
}

/// Rebuilds a `TreeBuilder` with the wrapper builder's tree
/// hyper-parameters.
fn clone_tree_builder(wb: &WrapperBuilder) -> TreeBuilder {
    let mut tb = TreeBuilder::new();
    tb.criterion(wb.criterion_value())
        .splitter(wb.splitter_value())
        .max_depth(wb.max_depth_value())
        .min_samples_leaf(wb.min_samples_leaf_value());
    tb
}

/// A trained timeseries-aware uncertainty wrapper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeseriesAwareWrapper {
    stateless: UncertaintyWrapper,
    taqim: TaQim,
    taqf_set: TaqfSet,
}

impl TimeseriesAwareWrapper {
    /// Starts a runtime session (one session per camera stream; call
    /// [`TauwSession::begin_series`] whenever tracking reports a new
    /// object).
    pub fn new_session(&self) -> TauwSession<'_> {
        TauwSession {
            wrapper: self,
            buffer: TimeseriesBuffer::with_capacity(32),
            scratch: ServingScratch::new(),
        }
    }

    /// The embedded stateless wrapper.
    pub fn stateless(&self) -> &UncertaintyWrapper {
        &self.stateless
    }

    /// The calibrated timeseries-aware quality impact model — a single
    /// tree by default; see [`TauwBuilder::backend`] and [`BackendSpec`]
    /// for the other shapes.
    pub fn taqim(&self) -> &TaQim {
        &self.taqim
    }

    /// Checks the internal consistency of both calibrated models (see
    /// [`CalibratedQim::validate`]); called by the persistence layer on
    /// every load.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on an inconsistent model.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.stateless.validate()?;
        self.taqim.validate()
    }

    /// Which taQFs the taQIM consumes.
    pub fn taqf_set(&self) -> TaqfSet {
        self.taqf_set
    }

    /// The smallest uncertainty the taQIM actually serves (Fig. 5's
    /// "lowest uncertainty"): the minimum leaf bound for the single-tree
    /// shape, the minimum served mean over the calibration set for a
    /// forest (see
    /// [`crate::calibration::CalibratedForestQim::min_uncertainty`]).
    pub fn min_uncertainty(&self) -> f64 {
        self.taqim.min_uncertainty()
    }

    /// Moves the wrapper into a multi-stream [`crate::engine::TauwEngine`].
    pub fn into_engine(self) -> crate::engine::TauwEngine {
        crate::engine::TauwEngine::new(self)
    }

    /// Processes one timestep against an externally owned buffer — the
    /// convenience form of [`TimeseriesAwareWrapper::step_with_parts`]
    /// with a throwaway [`ServingScratch`]. Results are bit-identical to
    /// the scratch-reusing form; hot loops (sessions, engine waves) hold a
    /// scratch and call `step_with_parts` directly so the steady state
    /// performs no per-step allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn step_with_buffer(
        &self,
        buffer: &mut TimeseriesBuffer,
        quality_factors: &[f64],
        outcome: u32,
    ) -> Result<TauwStep, CoreError> {
        self.step_with_parts(buffer, &mut ServingScratch::new(), quality_factors, outcome)
    }

    /// Processes one timestep against an externally owned buffer and
    /// serving scratch. This is **the** per-step computation:
    /// [`TauwSession::step`] and the multi-stream
    /// [`crate::engine::TauwEngine`] wave workers all delegate here, so a
    /// batched engine step is exactly a session step by construction.
    ///
    /// Every stage is O(1) in the series length: both tree lookups run on
    /// the compiled [`tauw_dtree::FlatTree`] serving form (one flat
    /// traversal plus one bound-array index per model), the buffer push is
    /// a ring write, and the fused outcome and taQF vector are reads of the
    /// buffer's running aggregates
    /// ([`TimeseriesBuffer::fused_outcome`], [`TaqfVector::compute`]). The
    /// O(window) recompute survives as the verification reference
    /// ([`TimeseriesBuffer::fused_outcome_reference`],
    /// [`TaqfVector::compute_reference`]), bit-identical by construction.
    ///
    /// With a bounded `buffer` and a warmed `scratch` the steady state
    /// performs **no heap allocation**: the taQIM feature row assembles in
    /// `scratch.features` (cleared and refilled in place), and both model
    /// shapes route without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn step_with_parts(
        &self,
        buffer: &mut TimeseriesBuffer,
        scratch: &mut ServingScratch,
        quality_factors: &[f64],
        outcome: u32,
    ) -> Result<TauwStep, CoreError> {
        let stateless_uncertainty = self.stateless.uncertainty(quality_factors)?;
        buffer.push(outcome, stateless_uncertainty);
        let fused = buffer
            .fused_outcome()
            .expect("buffer is non-empty after push");
        let taqf = TaqfVector::compute(buffer, fused).expect("buffer is non-empty");
        let uncertainty = self.ta_uncertainty_with_scratch(scratch, quality_factors, &taqf)?;
        Ok(TauwStep {
            fused_outcome: fused,
            uncertainty,
            stateless_uncertainty,
            taqf,
            // Saturate rather than wrap on targets where usize is narrower
            // than the lifetime counter (a >2^32-step stream on 32 bits).
            series_length: usize::try_from(buffer.total_steps()).unwrap_or(usize::MAX),
            adapted_uncertainty: uncertainty,
            drift: crate::adaptive::DriftSignal::Stable,
        })
    }

    /// The taQIM lookup for one step: assembles `[stateless QFs ‖ selected
    /// taQFs]` and routes it through the flat taQIM. Exposed so callers
    /// that already hold a [`TaqfVector`] (diagnostics, verification
    /// harnesses) query exactly the routine the serving path uses.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn ta_uncertainty(
        &self,
        quality_factors: &[f64],
        taqf: &TaqfVector,
    ) -> Result<f64, CoreError> {
        self.ta_uncertainty_with_scratch(&mut ServingScratch::new(), quality_factors, taqf)
    }

    /// [`TimeseriesAwareWrapper::ta_uncertainty`] against caller-owned
    /// scratch: the feature row assembles in `scratch.features` (cleared
    /// and refilled in place), so a warmed scratch makes the lookup
    /// allocation-free. Bit-identical to the allocating form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn ta_uncertainty_with_scratch(
        &self,
        scratch: &mut ServingScratch,
        quality_factors: &[f64],
        taqf: &TaqfVector,
    ) -> Result<f64, CoreError> {
        scratch.features.clear();
        scratch.features.extend_from_slice(quality_factors);
        scratch.features.extend(self.taqf_set.select(taqf));
        self.taqim.uncertainty(&scratch.features)
    }

    /// How many calibration samples routed to the leaf combination the
    /// taQIM serves for this step's `[stateless QFs ‖ selected taQFs]`
    /// feature vector (minimum over members for a forest), or
    /// [`RouteSupport::Unsupported`] for a leafless backend. The adaptive
    /// layer uses this to separate epistemic drift (thin calibration
    /// support) from aleatoric noise — see
    /// [`crate::adaptive::AdaptiveState::classify`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route_support(
        &self,
        quality_factors: &[f64],
        taqf: &TaqfVector,
    ) -> Result<RouteSupport, CoreError> {
        self.route_support_with_scratch(&mut ServingScratch::new(), quality_factors, taqf)
    }

    /// [`TimeseriesAwareWrapper::route_support`] against caller-owned
    /// scratch (same contract as
    /// [`TimeseriesAwareWrapper::ta_uncertainty_with_scratch`]): the
    /// feature row assembles in `scratch.features`, so a warmed scratch
    /// makes the lookup allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn route_support_with_scratch(
        &self,
        scratch: &mut ServingScratch,
        quality_factors: &[f64],
        taqf: &TaqfVector,
    ) -> Result<RouteSupport, CoreError> {
        scratch.features.clear();
        scratch.features.extend_from_slice(quality_factors);
        scratch.features.extend(self.taqf_set.select(taqf));
        self.taqim.route_support(&scratch.features)
    }
}

/// Mutable runtime state: the timeseries buffer plus a reference to the
/// trained models, and a reusable [`ServingScratch`] so steady-state
/// stepping performs no per-step allocation.
#[derive(Debug, Clone)]
pub struct TauwSession<'w> {
    wrapper: &'w TimeseriesAwareWrapper,
    buffer: TimeseriesBuffer,
    scratch: ServingScratch,
}

impl TauwSession<'_> {
    /// Clears the buffer at the onset of a new timeseries (new physical
    /// object reported by tracking). This resets the fusion window **and**
    /// the lifetime step counter — the next step's `series_length` (and
    /// taQF2) restarts at 1, exactly like
    /// [`crate::engine::TauwEngine::begin_series`] on the multi-stream
    /// path (the regression suite pins both).
    pub fn begin_series(&mut self) {
        self.buffer.clear();
    }

    /// Steps in the current series so far (`i + 1`, lifetime — not capped
    /// by a window bound; saturates if it outgrows `usize`).
    pub fn series_length(&self) -> usize {
        usize::try_from(self.buffer.total_steps()).unwrap_or(usize::MAX)
    }

    /// Read access to the buffer (for diagnostics).
    pub fn buffer(&self) -> &TimeseriesBuffer {
        &self.buffer
    }

    /// Processes one timestep: quality factors + DDM outcome in, fused
    /// outcome + dependable uncertainty out.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn step(&mut self, quality_factors: &[f64], outcome: u32) -> Result<TauwStep, CoreError> {
        self.wrapper.step_with_parts(
            &mut self.buffer,
            &mut self.scratch,
            quality_factors,
            outcome,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::TrainingStep;

    /// A miniature world: one quality factor `q` in [0,1]; the DDM fails
    /// with probability ~q (with series-level persistence); true class 7,
    /// confusions collapse onto class 3.
    fn make_series(n: usize, seed: u64, steps: usize) -> Vec<TrainingSeries> {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let q = next();
                // Series-level persistence: one latent coin biases all steps.
                let series_bias = next() < 0.5;
                let steps = (0..steps)
                    .map(|_| {
                        let p_fail = (q * if series_bias { 1.3 } else { 0.5 }).min(0.95);
                        let failed = next() < p_fail;
                        TrainingStep {
                            quality_factors: vec![q],
                            outcome: if failed { 3 } else { 7 },
                        }
                    })
                    .collect();
                TrainingSeries {
                    true_outcome: 7,
                    steps,
                }
            })
            .collect()
    }

    fn small_builder() -> TauwBuilder {
        let mut wb = WrapperBuilder::new();
        wb.max_depth(3).calibration(CalibrationOptions {
            min_samples_per_leaf: 50,
            confidence: 0.99,
            ..Default::default()
        });
        let mut b = TauwBuilder::new();
        b.wrapper(wb);
        b
    }

    fn fitted() -> TimeseriesAwareWrapper {
        let train = make_series(300, 1, 10);
        let calib = make_series(300, 2, 10);
        small_builder()
            .fit(vec!["q".into()], &train, &calib)
            .unwrap()
    }

    #[test]
    fn session_fuses_outcomes_by_majority() {
        let w = fitted();
        let mut s = w.new_session();
        s.begin_series();
        assert_eq!(s.step(&[0.1], 7).unwrap().fused_outcome, 7);
        assert_eq!(
            s.step(&[0.1], 3).unwrap().fused_outcome,
            3,
            "tie breaks to most recent"
        );
        assert_eq!(s.step(&[0.1], 7).unwrap().fused_outcome, 7);
        assert_eq!(s.step(&[0.1], 7).unwrap().fused_outcome, 7);
        assert_eq!(s.series_length(), 4);
    }

    #[test]
    fn begin_series_resets_the_buffer() {
        let w = fitted();
        let mut s = w.new_session();
        for _ in 0..5 {
            s.step(&[0.2], 3).unwrap();
        }
        assert_eq!(s.series_length(), 5);
        s.begin_series();
        assert_eq!(s.series_length(), 0);
        // After reset, a single new outcome defines the fused outcome.
        assert_eq!(s.step(&[0.2], 7).unwrap().fused_outcome, 7);
    }

    #[test]
    fn consistent_series_reach_lower_uncertainty_than_single_steps() {
        let w = fitted();
        let mut s = w.new_session();
        s.begin_series();
        let first = s.step(&[0.3], 7).unwrap();
        let mut last = first;
        for _ in 0..9 {
            last = s.step(&[0.3], 7).unwrap();
        }
        assert!(
            last.uncertainty <= first.uncertainty + 1e-12,
            "10 agreeing steps ({}) should not be more uncertain than 1 ({})",
            last.uncertainty,
            first.uncertainty
        );
    }

    #[test]
    fn disagreement_raises_uncertainty() {
        let w = fitted();
        // Session A: 6 agreeing outcomes. Session B: alternating outcomes.
        let mut a = w.new_session();
        let mut b = w.new_session();
        let mut ua = 0.0;
        let mut ub = 0.0;
        for i in 0..6 {
            ua = a.step(&[0.5], 7).unwrap().uncertainty;
            ub = b
                .step(&[0.5], if i % 2 == 0 { 7 } else { 3 })
                .unwrap()
                .uncertainty;
        }
        assert!(
            ub >= ua,
            "alternating outcomes ({ub}) must not look safer than agreement ({ua})"
        );
    }

    #[test]
    fn taqf_values_track_the_buffer() {
        let w = fitted();
        let mut s = w.new_session();
        s.step(&[0.1], 7).unwrap();
        s.step(&[0.1], 3).unwrap();
        let out = s.step(&[0.1], 7).unwrap();
        assert_eq!(out.fused_outcome, 7);
        assert!((out.taqf.ratio - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.taqf.length, 3.0);
        assert_eq!(out.taqf.unique_outcomes, 2.0);
        assert_eq!(out.series_length, 3);
    }

    #[test]
    fn taqf_subset_changes_model_arity() {
        let train = make_series(300, 3, 10);
        let calib = make_series(300, 4, 10);
        let mut b = small_builder();
        b.taqf_set(TaqfSet::from_kinds(&[crate::taqf::TaqfKind::Ratio]));
        let w = b.fit(vec!["q".into()], &train, &calib).unwrap();
        assert_eq!(w.taqim().n_features(), 2, "1 stateless QF + 1 taQF");
        assert_eq!(w.taqf_set().len(), 1);
        // Sessions still work.
        let mut s = w.new_session();
        let step = s.step(&[0.4], 7).unwrap();
        assert!(step.uncertainty > 0.0 && step.uncertainty <= 1.0);
    }

    #[test]
    fn empty_taqf_set_degenerates_to_stateless_features() {
        let train = make_series(300, 5, 10);
        let calib = make_series(300, 6, 10);
        let mut b = small_builder();
        b.taqf_set(TaqfSet::EMPTY);
        let w = b.fit(vec!["q".into()], &train, &calib).unwrap();
        assert_eq!(w.taqim().n_features(), 1);
    }

    #[test]
    fn fit_rejects_mismatched_names() {
        let train = make_series(50, 7, 10);
        let calib = make_series(50, 8, 10);
        let err = small_builder().fit(vec!["a".into(), "b".into()], &train, &calib);
        assert!(matches!(err, Err(CoreError::FeatureArityMismatch { .. })));
    }

    #[test]
    fn fit_rejects_empty_batches() {
        let err = small_builder().fit(vec!["q".into()], &[], &[]);
        assert!(matches!(err, Err(CoreError::InvalidInput { .. })));
    }

    #[test]
    fn step_rejects_wrong_arity() {
        let w = fitted();
        let mut s = w.new_session();
        assert!(s.step(&[0.1, 0.2], 7).is_err());
    }

    #[test]
    fn forest_taqim_fits_and_serves_through_sessions() {
        let train = make_series(300, 1, 10);
        let calib = make_series(300, 2, 10);
        let mut b = small_builder();
        b.backend(BackendSpec::Forest {
            n_trees: 4,
            seed: 0xF0,
        });
        let w = b.fit(vec!["q".into()], &train, &calib).unwrap();
        assert_eq!(w.taqim().n_trees(), 4);
        assert!(w.taqim().as_forest().is_some());
        w.validate().unwrap();
        let mut s = w.new_session();
        for i in 0..8 {
            let out = s.step(&[0.3], if i % 4 == 0 { 3 } else { 7 }).unwrap();
            assert!(out.uncertainty > 0.0 && out.uncertainty <= 1.0);
            // The per-step estimate is the shared ta_uncertainty routine.
            let again = w.ta_uncertainty(&[0.3], &out.taqf).unwrap();
            assert_eq!(out.uncertainty.to_bits(), again.to_bits());
            // And the pointer-member reference recompute agrees bitwise.
            let mut features = vec![0.3];
            features.extend(w.taqf_set().select(&out.taqf));
            let reference = w.taqim().uncertainty_reference(&features).unwrap();
            assert_eq!(out.uncertainty.to_bits(), reference.to_bits());
        }
        // `backend(BackendSpec::Tree)` restores the default shape.
        let mut b2 = small_builder();
        b2.backend(BackendSpec::Forest {
            n_trees: 4,
            seed: 0xF0,
        })
        .backend(BackendSpec::Tree);
        let w2 = b2.fit(vec!["q".into()], &train, &calib).unwrap();
        assert_eq!(w2.taqim().n_trees(), 1);
        assert!(w2.taqim().as_tree().is_some());
    }

    #[test]
    fn conformal_taqim_fits_and_serves_through_sessions() {
        let train = make_series(300, 1, 10);
        let calib = make_series(300, 2, 10);
        let mut b = small_builder();
        b.backend(BackendSpec::Conformal(ConformalOptions::default()));
        let w = b.fit(vec!["q".into()], &train, &calib).unwrap();
        assert_eq!(w.taqim().n_trees(), 0, "leafless backend");
        assert!(w.taqim().as_conformal().is_some());
        w.validate().unwrap();
        let mut s = w.new_session();
        for i in 0..8 {
            let out = s.step(&[0.3], if i % 4 == 0 { 3 } else { 7 }).unwrap();
            assert!(out.uncertainty > 0.0 && out.uncertainty <= 1.0);
            // The per-step estimate is the shared ta_uncertainty routine.
            let again = w.ta_uncertainty(&[0.3], &out.taqf).unwrap();
            assert_eq!(out.uncertainty.to_bits(), again.to_bits());
            // And the nested-table reference recompute agrees bitwise.
            let mut features = vec![0.3];
            features.extend(w.taqf_set().select(&out.taqf));
            let reference = w.taqim().uncertainty_reference(&features).unwrap();
            assert_eq!(out.uncertainty.to_bits(), reference.to_bits());
            // Leafless: support introspection degrades explicitly.
            assert_eq!(
                w.route_support(&[0.3], &out.taqf).unwrap(),
                RouteSupport::Unsupported
            );
        }
    }

    #[test]
    fn forest_training_is_deterministic_per_seed() {
        let train = make_series(200, 3, 10);
        let calib = make_series(200, 4, 10);
        let fit = |seed: u64| {
            let mut b = small_builder();
            b.backend(BackendSpec::Forest { n_trees: 3, seed });
            b.fit(vec!["q".into()], &train, &calib).unwrap()
        };
        let a = fit(7);
        let b = fit(7);
        assert_eq!(a, b, "same root seed must reproduce the forest");
        let c = fit(8);
        assert_ne!(
            a.taqim(),
            c.taqim(),
            "a different root seed draws different bootstrap resamples"
        );
    }

    /// Acceptance pin: steady-state stepping performs no per-step heap
    /// allocation on any taQIM shape. With a bounded (ring) buffer and a
    /// warmed scratch, the only growable buffer on the step path is
    /// `scratch.features` — asserting its pointer and capacity stay fixed
    /// across hundreds of steps proves it is reused in place rather than
    /// reallocated, while a twin session on the allocating convenience path
    /// pins bit-identical results.
    #[test]
    fn step_with_parts_reuses_scratch_without_reallocating() {
        let train = make_series(300, 1, 10);
        let calib = make_series(300, 2, 10);
        let tree_wrapper = fitted();
        let mut forest_builder = small_builder();
        forest_builder.backend(BackendSpec::Forest {
            n_trees: 4,
            seed: 0xF0,
        });
        let forest_wrapper = forest_builder
            .fit(vec!["q".into()], &train, &calib)
            .unwrap();
        let mut conformal_builder = small_builder();
        conformal_builder.backend(BackendSpec::Conformal(ConformalOptions::default()));
        let conformal_wrapper = conformal_builder
            .fit(vec!["q".into()], &train, &calib)
            .unwrap();
        for w in [&tree_wrapper, &forest_wrapper, &conformal_wrapper] {
            let mut buffer = TimeseriesBuffer::bounded(8);
            let mut twin = TimeseriesBuffer::bounded(8);
            let mut scratch = ServingScratch::new();
            // Warm-up: the feature row grows to its working size once.
            w.step_with_parts(&mut buffer, &mut scratch, &[0.3], 7)
                .unwrap();
            w.step_with_buffer(&mut twin, &[0.3], 7).unwrap();
            let ptr = scratch.features.as_ptr();
            let capacity = scratch.features.capacity();
            assert!(capacity > 0, "warm-up must size the feature row");
            for i in 0..300 {
                let outcome = if i % 3 == 0 { 3 } else { 7 };
                let q = [0.1 + 0.8 * ((i % 7) as f64 / 7.0)];
                let fast = w
                    .step_with_parts(&mut buffer, &mut scratch, &q, outcome)
                    .unwrap();
                let reference = w.step_with_buffer(&mut twin, &q, outcome).unwrap();
                assert_eq!(fast, reference, "step {i}");
            }
            assert_eq!(
                scratch.features.as_ptr(),
                ptr,
                "the feature row must be reused in place, never reallocated"
            );
            assert_eq!(scratch.features.capacity(), capacity);
        }
    }

    #[test]
    fn min_uncertainty_is_achievable() {
        let w = fitted();
        let min_u = w.min_uncertainty();
        assert!(
            min_u > 0.0,
            "a finite calibration set can never guarantee zero uncertainty"
        );
        assert!(min_u < 0.5);
    }
}
