//! The classical (stateless) uncertainty wrapper: quality impact model +
//! optional scope compliance model + combination.
//!
//! This is the baseline the paper extends. Given the stateless quality
//! factors of the current input it reports a *dependable* uncertainty — a
//! high-confidence upper bound on the probability that the wrapped DDM's
//! outcome is wrong in the current situation.

use crate::calibration::{CalibratedQim, CalibrationOptions};
use crate::error::CoreError;
use crate::scope::{ScopeComplianceModel, ScopeVerdict};
use serde::{Deserialize, Serialize};
use tauw_dtree::{Dataset, LeafId, NodeId, SplitCriterion, Splitter, TreeBuilder};

/// A complete uncertainty estimate for one input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertaintyEstimate {
    /// Input-quality-related uncertainty (the calibrated QIM bound).
    pub quality_uncertainty: f64,
    /// Scope-compliance probability (1.0 when no scope model is attached).
    pub scope_compliance: f64,
    /// Combined dependable uncertainty:
    /// `1 − scope_compliance · (1 − quality_uncertainty)`.
    pub combined_uncertainty: f64,
}

/// An explanation of how an estimate came about — the transparency the
/// decision-tree QIM affords.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Leaf the input routed to.
    pub leaf_id: NodeId,
    /// The same leaf as a dense, stable [`LeafId`] in the compiled serving
    /// form — the index into [`crate::calibration::CalibratedQim::leaf_bounds`].
    pub flat_leaf_id: LeafId,
    /// Calibration failures observed in the leaf.
    pub leaf_failures: u64,
    /// Calibration samples in the leaf.
    pub leaf_total: u64,
    /// Decision path (node ids from root to leaf).
    pub path: Vec<NodeId>,
    /// Scope verdict, when a scope model is attached.
    pub scope: Option<ScopeVerdict>,
}

/// Builder for [`UncertaintyWrapper`] (paper defaults: gini CART of depth
/// 8, leaves ≥ 200 calibration samples, 0.999-confidence Clopper–Pearson
/// bounds).
#[derive(Debug, Clone, PartialEq)]
pub struct WrapperBuilder {
    max_depth: usize,
    criterion: SplitCriterion,
    splitter: Splitter,
    min_samples_leaf: usize,
    calibration: CalibrationOptions,
    scope_padding: Option<f64>,
}

impl Default for WrapperBuilder {
    fn default() -> Self {
        WrapperBuilder {
            max_depth: 8,
            criterion: SplitCriterion::Gini,
            splitter: Splitter::Exact,
            min_samples_leaf: 1,
            calibration: CalibrationOptions::default(),
            scope_padding: None,
        }
    }
}

impl WrapperBuilder {
    /// Creates a builder with the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum QIM tree depth (paper: 8).
    pub fn max_depth(&mut self, depth: usize) -> &mut Self {
        self.max_depth = depth;
        self
    }

    /// Split criterion (paper: gini).
    pub fn criterion(&mut self, criterion: SplitCriterion) -> &mut Self {
        self.criterion = criterion;
        self
    }

    /// Split search strategy (exact by default; histogram for speed).
    pub fn splitter(&mut self, splitter: Splitter) -> &mut Self {
        self.splitter = splitter;
        self
    }

    /// Minimum training samples per leaf during tree growth.
    pub fn min_samples_leaf(&mut self, n: usize) -> &mut Self {
        self.min_samples_leaf = n;
        self
    }

    /// Calibration options (minimum leaf samples, confidence, bound
    /// method).
    pub fn calibration(&mut self, options: CalibrationOptions) -> &mut Self {
        self.calibration = options;
        self
    }

    /// Attaches a boundary-check scope compliance model learned from the
    /// training inputs, padded by the given fraction of each feature range.
    pub fn with_scope_model(&mut self, padding: f64) -> &mut Self {
        self.scope_padding = Some(padding);
        self
    }

    /// The configured calibration options.
    pub fn calibration_options(&self) -> CalibrationOptions {
        self.calibration
    }

    /// The configured split criterion.
    pub fn criterion_value(&self) -> SplitCriterion {
        self.criterion
    }

    /// The configured splitter.
    pub fn splitter_value(&self) -> Splitter {
        self.splitter
    }

    /// The configured maximum tree depth.
    pub fn max_depth_value(&self) -> usize {
        self.max_depth
    }

    /// The configured minimum training samples per leaf.
    pub fn min_samples_leaf_value(&self) -> usize {
        self.min_samples_leaf
    }

    /// Trains and calibrates a stateless uncertainty wrapper.
    ///
    /// * `feature_names` — names of the stateless quality factors;
    /// * `train` — `(quality factors, DDM failed?)` rows for tree growth;
    /// * `calib` — held-out rows of the same shape for pruning and bounds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on empty/mismatched data or infeasible
    /// calibration.
    pub fn fit(
        &self,
        feature_names: Vec<String>,
        train: &[(Vec<f64>, bool)],
        calib: &[(Vec<f64>, bool)],
    ) -> Result<UncertaintyWrapper, CoreError> {
        if train.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "training set is empty".into(),
            });
        }
        let mut ds = Dataset::new(feature_names.clone(), 2)?;
        ds.reserve(train.len());
        for (features, failed) in train {
            ds.push_row(features, u32::from(*failed))?;
        }
        let tree = TreeBuilder::new()
            .criterion(self.criterion)
            .splitter(self.splitter)
            .max_depth(self.max_depth)
            .min_samples_leaf(self.min_samples_leaf)
            .fit(&ds)?;
        let qim = CalibratedQim::calibrate(tree, calib, self.calibration)?;
        let scope = match self.scope_padding {
            Some(padding) => Some(ScopeComplianceModel::fit(
                train.iter().map(|(f, _)| f.as_slice()),
                feature_names.clone(),
                padding,
            )?),
            None => None,
        };
        Ok(UncertaintyWrapper {
            qim,
            scope,
            feature_names,
        })
    }
}

/// A trained, calibrated stateless uncertainty wrapper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertaintyWrapper {
    qim: CalibratedQim,
    scope: Option<ScopeComplianceModel>,
    feature_names: Vec<String>,
}

impl UncertaintyWrapper {
    /// Quality-related dependable uncertainty for the current input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn uncertainty(&self, quality_factors: &[f64]) -> Result<f64, CoreError> {
        self.qim.uncertainty(quality_factors)
    }

    /// Dependable certainty `1 − u` for the current input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn certainty(&self, quality_factors: &[f64]) -> Result<f64, CoreError> {
        Ok(1.0 - self.uncertainty(quality_factors)?)
    }

    /// Full estimate including scope compliance and the combined value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn estimate(&self, quality_factors: &[f64]) -> Result<UncertaintyEstimate, CoreError> {
        let quality_uncertainty = self.qim.uncertainty(quality_factors)?;
        let scope_compliance = match &self.scope {
            Some(model) => model.check(quality_factors)?.similarity,
            None => 1.0,
        };
        Ok(UncertaintyEstimate {
            quality_uncertainty,
            scope_compliance,
            combined_uncertainty: 1.0 - scope_compliance * (1.0 - quality_uncertainty),
        })
    }

    /// Explains the estimate: decision path, leaf statistics, scope
    /// verdict.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn explain(&self, quality_factors: &[f64]) -> Result<Explanation, CoreError> {
        let (flat_leaf_id, leaf_id) = self.qim.route_ids(quality_factors)?;
        let leaf = self
            .qim
            .calibrated_leaf(leaf_id)
            .expect("every reachable leaf was calibrated");
        let path = self.qim.tree().decision_path(quality_factors)?;
        let scope = match &self.scope {
            Some(model) => Some(model.check(quality_factors)?),
            None => None,
        };
        Ok(Explanation {
            leaf_id,
            flat_leaf_id,
            leaf_failures: leaf.failures,
            leaf_total: leaf.total,
            path,
            scope,
        })
    }

    /// The calibrated quality impact model.
    pub fn qim(&self) -> &CalibratedQim {
        &self.qim
    }

    /// Checks the internal consistency of the model representations (see
    /// [`CalibratedQim::validate`]); called by the persistence layer on
    /// every load.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on an inconsistent model.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.qim.validate()
    }

    /// The attached scope model, if any.
    pub fn scope_model(&self) -> Option<&ScopeComplianceModel> {
        self.scope.as_ref()
    }

    /// Names of the stateless quality factors.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world: failure probability is high iff `rain > 0.5`.
    fn toy_rows(n: usize, seed: u64) -> Vec<(Vec<f64>, bool)> {
        // Small deterministic LCG so the test has no rand dependency here.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let rain = next();
                let blur = next();
                let p_fail = if rain > 0.5 { 0.6 } else { 0.02 };
                let failed = next() < p_fail;
                (vec![rain, blur], failed)
            })
            .collect()
    }

    fn fitted() -> UncertaintyWrapper {
        let train = toy_rows(4000, 1);
        let calib = toy_rows(3000, 2);
        WrapperBuilder::new()
            .fit(vec!["rain".into(), "blur".into()], &train, &calib)
            .unwrap()
    }

    #[test]
    fn risky_inputs_get_higher_uncertainty() {
        let w = fitted();
        let dry = w.uncertainty(&[0.1, 0.5]).unwrap();
        let wet = w.uncertainty(&[0.9, 0.5]).unwrap();
        assert!(wet > 0.4, "wet uncertainty {wet}");
        assert!(dry < 0.1, "dry uncertainty {dry}");
        assert!(w.certainty(&[0.1, 0.5]).unwrap() > 0.9);
    }

    #[test]
    fn estimate_without_scope_model_has_full_compliance() {
        let w = fitted();
        let e = w.estimate(&[0.2, 0.2]).unwrap();
        assert_eq!(e.scope_compliance, 1.0);
        assert!((e.combined_uncertainty - e.quality_uncertainty).abs() < 1e-15);
    }

    #[test]
    fn scope_model_raises_combined_uncertainty_out_of_scope() {
        let train = toy_rows(4000, 3);
        let calib = toy_rows(3000, 4);
        let w = WrapperBuilder::new()
            .with_scope_model(0.0)
            .fit(vec!["rain".into(), "blur".into()], &train, &calib)
            .unwrap();
        let inside = w.estimate(&[0.2, 0.2]).unwrap();
        let outside = w.estimate(&[5.0, 0.2]).unwrap();
        assert!(outside.scope_compliance < 1.0);
        assert!(outside.combined_uncertainty > inside.combined_uncertainty);
        assert!(outside.combined_uncertainty >= outside.quality_uncertainty);
    }

    #[test]
    fn explanation_exposes_path_and_leaf_stats() {
        let w = fitted();
        let ex = w.explain(&[0.9, 0.5]).unwrap();
        assert!(ex.leaf_total >= 200, "calibration minimum respected");
        assert_eq!(*ex.path.first().unwrap(), 0, "path starts at the root");
        assert_eq!(*ex.path.last().unwrap(), ex.leaf_id);
        assert_eq!(
            w.qim().flat().leaf(ex.flat_leaf_id).node_id,
            ex.leaf_id,
            "flat leaf id names the same leaf"
        );
        assert!(ex.scope.is_none());
    }

    #[test]
    fn estimates_are_dependable_on_holdout() {
        // The bound must cover the observed failure rate on fresh data in
        // the overwhelming majority of leaves (0.999 confidence).
        let w = fitted();
        let holdout = toy_rows(4000, 9);
        let mut per_leaf: std::collections::HashMap<usize, (u64, u64, f64)> =
            std::collections::HashMap::new();
        for (f, failed) in &holdout {
            let ex = w.explain(f).unwrap();
            let u = w.uncertainty(f).unwrap();
            let e = per_leaf.entry(ex.leaf_id).or_insert((0, 0, u));
            e.1 += 1;
            if *failed {
                e.0 += 1;
            }
        }
        for (leaf, (failures, total, bound)) in per_leaf {
            if total < 100 {
                continue;
            }
            let rate = failures as f64 / total as f64;
            assert!(
                rate <= bound + 0.05,
                "leaf {leaf}: observed {rate:.3} far above bound {bound:.3}"
            );
        }
    }

    #[test]
    fn empty_training_is_rejected() {
        let err = WrapperBuilder::new().fit(vec!["x".into()], &[], &[]);
        assert!(matches!(err, Err(CoreError::InvalidInput { .. })));
    }

    #[test]
    fn builder_options_are_respected() {
        let train = toy_rows(2000, 5);
        let calib = toy_rows(2000, 6);
        let w = WrapperBuilder::new()
            .max_depth(1)
            .fit(vec!["rain".into(), "blur".into()], &train, &calib)
            .unwrap();
        assert!(w.qim().tree().depth() <= 1);
        assert_eq!(w.feature_names(), &["rain", "blur"]);
    }
}
