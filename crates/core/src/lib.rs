//! # tauw-core
//!
//! The uncertainty wrapper framework and its timeseries-aware extension
//! (taUW) — the primary contribution of the reproduced paper.
//!
//! * [`wrapper`] — the classical **stateless** uncertainty wrapper:
//!   decision-tree quality impact model with calibrated, dependable
//!   per-leaf uncertainty bounds, plus an optional scope compliance model.
//! * [`buffer`] — the **timeseries buffer** storing per-step outcomes and
//!   uncertainties for the current measurement object.
//! * [`taqf`] — the four **timeseries-aware quality factors** (ratio,
//!   length, size, cumulative certainty).
//! * [`tauw`] — the **timeseries-aware wrapper**: stateless wrapper +
//!   information fusion + taQIM, exposed as a runtime session.
//! * [`engine`] — the **multi-stream inference engine**: one trained
//!   wrapper serving many concurrent series via batched `step_many`.
//! * [`sharded`] — the **sharded serving front end**: K engine shards
//!   keyed by a deterministic stream hash, with cross-shard wave batching,
//!   typed admission control, and live per-shard snapshot/restore.
//! * [`adaptive`] — **online adaptive calibration**: a per-stream coverage
//!   window over the served bounds, bounded multiplicative bound
//!   adaptation when empirical coverage diverges, and an
//!   epistemic-vs-aleatoric drift signal.
//! * [`calibration`] — calibrated quality impact models (prune to a
//!   minimum calibration count, bound each leaf at high confidence); the
//!   serving path is a compiled [`tauw_dtree::FlatTree`] plus a leaf-ID →
//!   bound lookup table, bit-identical to the pointer tree. The taQIM can
//!   also be a calibrated bootstrap **forest** (mean of per-member bounds,
//!   served as `K` flat traversals) that smooths the hard split boundaries
//!   of a single tree. All taQIM backends plug into one sealed
//!   [`calibration::QimBackend`] serving contract.
//! * [`conformal`] — the first leafless taQIM backend: a **split-conformal**
//!   model serving distribution-free bounds from a histogram base scorer
//!   plus a one-sided conformal quantile shift.
//! * [`scope`] — boundary-check scope compliance.
//! * [`monitor`] — a simplex-style runtime gate over the estimates.
//! * [`persist`] — versioned JSON artifacts: train offline, deploy frozen.
//! * [`training`] — the series-shaped training-data representation.
//!
//! ## Quickstart
//!
//! ```
//! use tauw_core::calibration::CalibrationOptions;
//! use tauw_core::tauw::TauwBuilder;
//! use tauw_core::training::{TrainingSeries, TrainingStep};
//! use tauw_core::wrapper::WrapperBuilder;
//!
//! // A toy world with one quality factor; outcome 1 is a misreading of
//! // the true class 0 that happens when quality degrades.
//! let series = |q: f64, outcomes: &[u32]| TrainingSeries {
//!     true_outcome: 0,
//!     steps: outcomes
//!         .iter()
//!         .map(|&o| TrainingStep { quality_factors: vec![q], outcome: o })
//!         .collect(),
//! };
//! let mut train = Vec::new();
//! let mut calib = Vec::new();
//! for i in 0..120 {
//!     let q = (i % 12) as f64 / 12.0;
//!     let outcomes: Vec<u32> = (0..10).map(|j| u32::from(q > 0.6 && j % 3 == 0)).collect();
//!     train.push(series(q, &outcomes));
//!     calib.push(series(q, &outcomes));
//! }
//! let mut wb = WrapperBuilder::new();
//! wb.max_depth(3).calibration(CalibrationOptions {
//!     min_samples_per_leaf: 50,
//!     confidence: 0.99,
//!     ..Default::default()
//! });
//! let tauw = TauwBuilder::new().wrapper(wb).fit(vec!["q".into()], &train, &calib)?;
//!
//! let mut session = tauw.new_session();
//! session.begin_series();
//! let step = session.step(&[0.1], 0)?;
//! assert_eq!(step.fused_outcome, 0);
//! assert!(step.uncertainty < 0.5);
//! # Ok::<(), tauw_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptive;
pub mod buffer;
pub mod calibration;
pub mod conformal;
pub mod engine;
pub mod error;
pub mod monitor;
pub mod persist;
pub mod scope;
pub mod sharded;
pub mod taqf;
pub mod tauw;
pub mod training;
pub mod wrapper;

pub use adaptive::{
    AdaptiveConfig, AdaptiveState, AdaptiveTauwSession, CoverageStats, DriftSignal,
};
pub use buffer::{BufferEntry, TimeseriesBuffer};
pub use calibration::{
    CalibratedForestQim, CalibratedLeaf, CalibratedQim, CalibrationOptions, QimBackend,
    RouteSupport, ServingScratch, TaQim,
};
pub use conformal::{ConformalOptions, ConformalQim};
pub use engine::{StreamId, StreamStep, TauwEngine};
pub use error::CoreError;
pub use monitor::{MonitorDecision, MonitorStats, UncertaintyMonitor};
pub use scope::{ScopeComplianceModel, ScopeVerdict};
pub use sharded::{Admission, AdmissionReason, EngineShardState, ShardedEngine, StreamState};
pub use taqf::{TaqfKind, TaqfSet, TaqfVector};
pub use tauw::{
    replay, BackendSpec, ReplayRow, TauwBuilder, TauwSession, TauwStep, TimeseriesAwareWrapper,
};
pub use training::{TrainingSeries, TrainingStep};
pub use wrapper::{Explanation, UncertaintyEstimate, UncertaintyWrapper, WrapperBuilder};
