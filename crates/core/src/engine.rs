//! Multi-stream inference engine: one trained wrapper serving many
//! concurrent timeseries.
//!
//! A [`crate::tauw::TauwSession`] monitors exactly one stream. Production
//! deployments (one camera per vehicle, millions of users) need one set of
//! trained models to serve *many* interleaved series at once. The
//! [`TauwEngine`] owns the trained [`TimeseriesAwareWrapper`] plus one
//! [`TimeseriesBuffer`] per [`StreamId`], and exposes a batched
//! [`TauwEngine::step_many`] that fans independent streams out over a
//! thread budget.
//!
//! Two guarantees:
//!
//! * **Session equivalence** — every engine step delegates to the same
//!   [`TimeseriesAwareWrapper::step_with_buffer`] a session uses (and
//!   thereby to the same compiled [`tauw_dtree::FlatTree`] lookups), so an
//!   engine serving N streams produces bit-identical estimates to N
//!   sequential sessions (asserted by `tests/determinism.rs`).
//! * **Batch-order semantics** — a batch behaves exactly as if its steps
//!   were applied one by one in batch order; steps of the *same* stream
//!   within one batch see each other's effects in order.
//!
//! Per-step cost is O(1) in the series length: buffers are rings and the
//! taQF/fusion terms are running aggregates (see [`crate::buffer`]), so a
//! stream that has been alive for a million steps costs the same to step
//! as a fresh one — with or without a window bound.

use crate::adaptive::{adaptive_step_with_parts, AdaptiveConfig, AdaptiveState, DriftSignal};
use crate::buffer::TimeseriesBuffer;
use crate::calibration::ServingScratch;
use crate::error::CoreError;
use crate::tauw::{TauwStep, TimeseriesAwareWrapper};
use crate::training::TrainingSeries;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of one logical stream (one tracked object / user / camera).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// One unit of batched work for [`TauwEngine::step_many`]: the stream it
/// belongs to, the step's quality factors, and the DDM outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStep {
    /// Target stream (created on first use).
    pub stream: StreamId,
    /// Stateless quality factors of this step.
    pub quality_factors: Vec<f64>,
    /// DDM outcome (class id) of this step.
    pub outcome: u32,
}

impl StreamStep {
    /// Convenience constructor.
    pub fn new(stream: StreamId, quality_factors: Vec<f64>, outcome: u32) -> Self {
        StreamStep {
            stream,
            quality_factors,
            outcome,
        }
    }
}

/// One unit of batched work for [`TauwEngine::step_many_adaptive`]: a
/// [`StreamStep`] plus the step's realized ground truth, which feeds the
/// stream's coverage window *after* its adapted bound is served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveStreamStep {
    /// Target stream (created on first use).
    pub stream: StreamId,
    /// Stateless quality factors of this step.
    pub quality_factors: Vec<f64>,
    /// DDM outcome (class id) of this step.
    pub outcome: u32,
    /// Whether the DDM's reading was actually wrong at this step (the
    /// realized outcome the served bound promised to cover).
    pub failed: bool,
}

impl AdaptiveStreamStep {
    /// Convenience constructor.
    pub fn new(stream: StreamId, quality_factors: Vec<f64>, outcome: u32, failed: bool) -> Self {
        AdaptiveStreamStep {
            stream,
            quality_factors,
            outcome,
            failed,
        }
    }
}

/// A trained wrapper plus per-stream runtime state.
///
/// # Examples
///
/// ```
/// use tauw_core::calibration::CalibrationOptions;
/// use tauw_core::engine::{StreamId, StreamStep};
/// use tauw_core::tauw::TauwBuilder;
/// use tauw_core::training::{TrainingSeries, TrainingStep};
/// use tauw_core::wrapper::WrapperBuilder;
///
/// // Train a tiny wrapper (same toy world as the crate quickstart).
/// let series = |q: f64, outcomes: &[u32]| TrainingSeries {
///     true_outcome: 0,
///     steps: outcomes
///         .iter()
///         .map(|&o| TrainingStep { quality_factors: vec![q], outcome: o })
///         .collect(),
/// };
/// let mut train = Vec::new();
/// let mut calib = Vec::new();
/// for i in 0..120 {
///     let q = (i % 12) as f64 / 12.0;
///     let outcomes: Vec<u32> = (0..10).map(|j| u32::from(q > 0.6 && j % 3 == 0)).collect();
///     train.push(series(q, &outcomes));
///     calib.push(series(q, &outcomes));
/// }
/// let mut wb = WrapperBuilder::new();
/// wb.max_depth(3).calibration(CalibrationOptions {
///     min_samples_per_leaf: 50,
///     confidence: 0.99,
///     ..Default::default()
/// });
/// let mut builder = TauwBuilder::new();
/// builder.wrapper(wb);
/// let tauw = builder.fit(vec!["q".into()], &train, &calib)?;
///
/// // One engine, two concurrent streams, one batched call per "frame".
/// let mut engine = tauw.into_engine();
/// let batch = vec![
///     StreamStep::new(StreamId(1), vec![0.1], 0),
///     StreamStep::new(StreamId(2), vec![0.9], 1),
/// ];
/// let steps = engine.step_many(&batch)?;
/// assert_eq!(steps.len(), 2);
/// assert_eq!(steps[0].fused_outcome, 0);
/// assert_eq!(engine.n_streams(), 2);
/// // Each stream evolved independently, as if it had its own session.
/// assert_eq!(engine.stream_len(StreamId(1)), Some(1));
/// # Ok::<(), tauw_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TauwEngine {
    wrapper: TimeseriesAwareWrapper,
    streams: BTreeMap<StreamId, TimeseriesBuffer>,
    /// Per-stream adaptive calibration state, populated lazily once
    /// [`TauwEngine::enable_adaptation`] was called.
    adaptive: BTreeMap<StreamId, AdaptiveState>,
    adaptive_config: Option<AdaptiveConfig>,
    buffer_capacity: Option<usize>,
    n_threads: Option<usize>,
    /// Reusable per-wave scaffolding for the batched step paths (slot
    /// pool, grouping order, scatter table) — hoisted onto the engine so
    /// steady-state waves stop churning the allocator.
    wave: WaveScratch,
}

/// One reusable unit of per-stream wave state. While a batch is in flight
/// the slot owns the stream's detached fusion buffer (and adaptive state on
/// the adaptive path), the batch positions assigned to the stream, the
/// worker's [`ServingScratch`], and the output staging area. Slots persist
/// on the engine across calls, so steady-state waves reuse every one of
/// these allocations.
#[derive(Debug, Clone)]
struct WaveSlot {
    stream: StreamId,
    /// Batch positions assigned to this stream, in batch order.
    positions: Vec<usize>,
    /// The stream's fusion buffer, detached for the duration of the wave.
    buffer: TimeseriesBuffer,
    /// The stream's adaptive state (adaptive waves only; `None` otherwise).
    state: Option<AdaptiveState>,
    /// The worker's reusable serving scratch.
    scratch: ServingScratch,
    /// Results in `positions` order, staged before the batch-order scatter.
    output: Vec<TauwStep>,
}

impl WaveSlot {
    fn empty() -> Self {
        WaveSlot {
            stream: StreamId(0),
            positions: Vec::new(),
            buffer: TimeseriesBuffer::with_capacity(0),
            state: None,
            scratch: ServingScratch::new(),
            output: Vec::new(),
        }
    }
}

/// The engine's reusable wave scaffolding (see [`WaveSlot`]).
#[derive(Debug, Clone, Default)]
struct WaveScratch {
    /// Slot pool; the first `n_slots` entries of the current wave are live.
    slots: Vec<WaveSlot>,
    /// `(stream, batch position)` pairs, sorted to group by stream.
    order: Vec<(StreamId, usize)>,
    /// Batch-order scatter table.
    results: Vec<Option<TauwStep>>,
}

impl TauwEngine {
    /// Creates an engine around a trained wrapper with no active streams.
    pub fn new(wrapper: TimeseriesAwareWrapper) -> Self {
        TauwEngine {
            wrapper,
            streams: BTreeMap::new(),
            adaptive: BTreeMap::new(),
            adaptive_config: None,
            buffer_capacity: None,
            n_threads: None,
            wave: WaveScratch::default(),
        }
    }

    /// Bounds every *newly created* stream buffer to a sliding window of
    /// `capacity` steps (see [`TimeseriesBuffer::bounded`]); existing
    /// streams keep their buffers. Unbounded by default.
    pub fn buffer_capacity(&mut self, capacity: usize) -> &mut Self {
        self.buffer_capacity = Some(capacity.max(1));
        self
    }

    /// Pins the thread budget for [`TauwEngine::step_many`] (clamped to
    /// ≥ 1). Unpinned engines use [`parallel::max_threads`]. Results are
    /// bit-identical for every budget.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.n_threads = Some(n.max(1));
        self
    }

    /// The trained wrapper the engine serves.
    pub fn wrapper(&self) -> &TimeseriesAwareWrapper {
        &self.wrapper
    }

    /// Consumes the engine, returning the wrapper.
    pub fn into_wrapper(self) -> TimeseriesAwareWrapper {
        self.wrapper
    }

    /// Number of active streams.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Active stream ids in ascending order.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        self.streams.keys().copied().collect()
    }

    /// Steps currently buffered for a stream (the window occupancy for
    /// bounded buffers), or `None` if the stream is unknown. See
    /// [`TauwEngine::stream_total_steps`] for the lifetime series length.
    pub fn stream_len(&self, stream: StreamId) -> Option<usize> {
        self.streams.get(&stream).map(TimeseriesBuffer::len)
    }

    /// Lifetime steps of the stream's current series (`i + 1`, which
    /// window eviction does not shrink), or `None` if the stream is
    /// unknown.
    pub fn stream_total_steps(&self, stream: StreamId) -> Option<u64> {
        self.streams.get(&stream).map(TimeseriesBuffer::total_steps)
    }

    /// Read access to a stream's buffer (diagnostics).
    pub fn stream_buffer(&self, stream: StreamId) -> Option<&TimeseriesBuffer> {
        self.streams.get(&stream)
    }

    /// Clears a stream's buffer (tracking reported a new physical object on
    /// that stream), creating the stream if it does not exist yet.
    ///
    /// This resets the fusion window **and** the lifetime step counter:
    /// afterwards [`TauwEngine::stream_total_steps`] reads `Some(0)` and
    /// the next step's `series_length` (and taQF2) restarts at 1 — exactly
    /// the semantics of [`crate::tauw::TauwSession::begin_series`] on the
    /// single-stream path (the regression suite pins both). Adaptive
    /// calibration state, if enabled, deliberately survives: drift is a
    /// property of the stream, not of the tracked object.
    pub fn begin_series(&mut self, stream: StreamId) {
        let capacity = self.buffer_capacity;
        self.streams
            .entry(stream)
            .and_modify(TimeseriesBuffer::clear)
            .or_insert_with(|| new_buffer(capacity));
    }

    /// Removes a stream and its buffer entirely (the object left the scene
    /// / the user disconnected), including any adaptive state, and shrinks
    /// the wave slot pool so steady-state memory tracks the *live* stream
    /// count rather than the historical peak. Returns whether the stream
    /// existed.
    pub fn end_stream(&mut self, stream: StreamId) -> bool {
        self.adaptive.remove(&stream);
        let existed = self.streams.remove(&stream).is_some();
        if existed {
            self.shrink_wave_scratch();
        }
        existed
    }

    /// Removes all streams (including their adaptive state) and releases
    /// the wave scaffolding entirely.
    pub fn clear_streams(&mut self) {
        self.streams.clear();
        self.adaptive.clear();
        self.shrink_wave_scratch();
        // With no live streams there is nothing for the order/scatter
        // buffers to amortize either; the next wave resizes them.
        self.wave.order = Vec::new();
        self.wave.results = Vec::new();
    }

    /// Releases wave-slot capacity held for streams that no longer exist.
    /// The slot pool is sized by the largest number of distinct streams
    /// ever touched in one wave; each retired [`WaveSlot`] frees its
    /// positions/scratch/output buffers, so ending streams returns their
    /// share of the pool to the allocator instead of pinning the peak.
    fn shrink_wave_scratch(&mut self) {
        let live = self.streams.len();
        if self.wave.slots.len() > live {
            self.wave.slots.truncate(live);
            self.wave.slots.shrink_to_fit();
        }
    }

    /// Exports a stream's complete self-contained runtime state (fusion
    /// buffer plus adaptive state, if any) for engine handover — the
    /// building block of [`crate::sharded`] snapshots. Returns `None` for
    /// unknown streams.
    pub fn export_stream(
        &self,
        stream: StreamId,
    ) -> Option<(TimeseriesBuffer, Option<AdaptiveState>)> {
        let buffer = self.streams.get(&stream)?.clone();
        Some((buffer, self.adaptive.get(&stream).cloned()))
    }

    /// Installs a stream's complete runtime state (the counterpart of
    /// [`TauwEngine::export_stream`], used by snapshot restore and
    /// resharding). Replaces any existing state for `stream`; passing
    /// `adaptive: None` drops previously held adaptive state so the import
    /// is a faithful overwrite.
    pub fn import_stream(
        &mut self,
        stream: StreamId,
        buffer: TimeseriesBuffer,
        adaptive: Option<AdaptiveState>,
    ) {
        self.streams.insert(stream, buffer);
        match adaptive {
            Some(state) => {
                self.adaptive.insert(stream, state);
            }
            None => {
                self.adaptive.remove(&stream);
            }
        }
    }

    /// Processes one timestep on one stream (created on first use).
    /// Equivalent to [`crate::tauw::TauwSession::step`] on that stream's
    /// dedicated session.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch, in which case no
    /// stream state is created or modified.
    pub fn step(
        &mut self,
        stream: StreamId,
        quality_factors: &[f64],
        outcome: u32,
    ) -> Result<TauwStep, CoreError> {
        self.check_arity(quality_factors.len())?;
        let capacity = self.buffer_capacity;
        let buffer = self
            .streams
            .entry(stream)
            .or_insert_with(|| new_buffer(capacity));
        self.wrapper
            .step_with_buffer(buffer, quality_factors, outcome)
    }

    /// Processes a batch of steps spanning any number of streams,
    /// returning one [`TauwStep`] per input **in batch order**.
    ///
    /// Independent streams fan out over the engine's thread budget; steps
    /// of the same stream are applied in batch order within one worker.
    /// The results are bit-identical to calling [`TauwEngine::step`] for
    /// each entry sequentially (and therefore to N dedicated sessions).
    ///
    /// Prefer [`TauwEngine::step_many_borrowed`] in hot paths where the
    /// quality factors already live elsewhere — it avoids one `Vec`
    /// allocation per step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch of **any** batch
    /// entry; the batch is validated up front, so on error no stream state
    /// has been modified.
    pub fn step_many(&mut self, batch: &[StreamStep]) -> Result<Vec<TauwStep>, CoreError> {
        self.step_many_impl(batch.len(), |i| {
            let step = &batch[i];
            (step.stream, step.quality_factors.as_slice(), step.outcome)
        })
    }

    /// Zero-copy variant of [`TauwEngine::step_many`] over borrowed
    /// quality-factor slices. Identical semantics and results.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch of **any** batch
    /// entry; the batch is validated up front, so on error no stream state
    /// has been modified.
    pub fn step_many_borrowed(
        &mut self,
        batch: &[(StreamId, &[f64], u32)],
    ) -> Result<Vec<TauwStep>, CoreError> {
        self.step_many_impl(batch.len(), |i| batch[i])
    }

    /// Shared batched-step core: `get(i)` yields batch entry `i`. Crate
    /// visibility lets [`crate::sharded::ShardedEngine`] dispatch one wave
    /// per shard through an index indirection without materializing
    /// per-shard sub-batches.
    pub(crate) fn step_many_impl<'a, F>(
        &mut self,
        n: usize,
        get: F,
    ) -> Result<Vec<TauwStep>, CoreError>
    where
        F: Fn(usize) -> (StreamId, &'a [f64], u32) + Sync,
    {
        for i in 0..n {
            self.check_arity(get(i).1.len())?;
        }
        let n_slots = self.build_wave_slots(n, |i| get(i).0);

        let threads = self.n_threads.unwrap_or_else(parallel::max_threads).max(1);
        let wrapper = &self.wrapper;
        // Workers propagate errors instead of panicking: the arity
        // precheck makes failure unreachable for well-formed wrappers, but
        // an internally inconsistent model (e.g. a tampered persisted
        // artifact) must surface as `Err`, not abort the process.
        let per_slot: Vec<Result<(), CoreError>> =
            parallel::par_map_mut(threads, &mut self.wave.slots[..n_slots], |slot| {
                for &i in &slot.positions {
                    let (_, quality_factors, outcome) = get(i);
                    let step = wrapper.step_with_parts(
                        &mut slot.buffer,
                        &mut slot.scratch,
                        quality_factors,
                        outcome,
                    )?;
                    slot.output.push(step);
                }
                Ok(())
            });
        self.finish_wave(n, n_slots, per_slot)
    }

    /// Groups a batch by stream into the reusable wave slots: the `order`
    /// buffer collects `(stream, batch position)` pairs and sorts them
    /// (positions are unique, so the unstable sort is deterministic,
    /// preserves batch order within each stream via the position component,
    /// and visits streams in ascending id order — exactly the old per-call
    /// `BTreeMap` grouping, without its allocations). One slot per distinct
    /// stream then detaches that stream's fusion buffer so a wave worker
    /// owns its stream state. Returns the number of live slots.
    fn build_wave_slots(&mut self, n: usize, stream_of: impl Fn(usize) -> StreamId) -> usize {
        let order = &mut self.wave.order;
        order.clear();
        order.extend((0..n).map(|i| (stream_of(i), i)));
        order.sort_unstable();

        let capacity = self.buffer_capacity;
        let slots = &mut self.wave.slots;
        let mut n_slots = 0;
        for &(stream, position) in order.iter() {
            if n_slots == 0 || slots[n_slots - 1].stream != stream {
                if n_slots == slots.len() {
                    slots.push(WaveSlot::empty());
                }
                let slot = &mut slots[n_slots];
                slot.stream = stream;
                slot.positions.clear();
                slot.output.clear();
                slot.state = None;
                slot.buffer = self
                    .streams
                    .remove(&stream)
                    .unwrap_or_else(|| new_buffer(capacity));
                n_slots += 1;
            }
            slots[n_slots - 1].positions.push(position);
        }
        n_slots
    }

    /// Reattaches every live slot's stream state (even on error), then
    /// scatters the staged outputs back into batch order through the
    /// reusable `results` table. Errors report the lowest affected stream
    /// id (slots are in ascending stream order). The returned `Vec` is the
    /// one allocation inherent to the `step_many` API.
    fn finish_wave(
        &mut self,
        n: usize,
        n_slots: usize,
        per_slot: Vec<Result<(), CoreError>>,
    ) -> Result<Vec<TauwStep>, CoreError> {
        let results = &mut self.wave.results;
        results.clear();
        results.resize(n, None);
        let mut first_err: Option<CoreError> = None;
        for (slot, outcome) in self.wave.slots[..n_slots].iter_mut().zip(per_slot) {
            let buffer = std::mem::replace(&mut slot.buffer, TimeseriesBuffer::with_capacity(0));
            self.streams.insert(slot.stream, buffer);
            if let Some(state) = slot.state.take() {
                self.adaptive.insert(slot.stream, state);
            }
            match outcome {
                Ok(()) => {
                    for (&i, &step) in slot.positions.iter().zip(&slot.output) {
                        results[i] = Some(step);
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(results
            .iter_mut()
            .map(|r| r.take().expect("every batch position produced a result"))
            .collect())
    }

    /// Turns on online adaptive calibration (see [`crate::adaptive`]):
    /// every stream gets its own coverage window and bound-correction
    /// state, created lazily on its first adaptive step. Serving via
    /// [`TauwEngine::step_adaptive`] / [`TauwEngine::step_many_adaptive`]
    /// then returns adapted bounds and drift signals.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the config is invalid
    /// (see [`AdaptiveConfig::validate`]).
    pub fn enable_adaptation(&mut self, config: AdaptiveConfig) -> Result<(), CoreError> {
        config.validate()?;
        self.adaptive_config = Some(config);
        Ok(())
    }

    /// The adaptive configuration, if adaptation is enabled.
    pub fn adaptive_config(&self) -> Option<AdaptiveConfig> {
        self.adaptive_config
    }

    /// A stream's adaptive state (diagnostics, persistence), or `None` if
    /// the stream has no adaptive state yet.
    pub fn adaptive_state(&self, stream: StreamId) -> Option<&AdaptiveState> {
        self.adaptive.get(&stream)
    }

    /// The drift classification of a stream's most recent adaptive step,
    /// or `None` if the stream has no adaptive state.
    pub fn stream_drift(&self, stream: StreamId) -> Option<DriftSignal> {
        self.adaptive.get(&stream).map(AdaptiveState::last_drift)
    }

    /// Installs persisted adaptive state for a stream (resuming a serving
    /// process from an [`AdaptiveState`] artifact). Replaces any existing
    /// state; the state's own config governs that stream from here on.
    pub fn import_adaptive_state(&mut self, stream: StreamId, state: AdaptiveState) {
        self.adaptive.insert(stream, state);
    }

    fn require_adaptive_config(&self) -> Result<AdaptiveConfig, CoreError> {
        self.adaptive_config.ok_or_else(|| CoreError::InvalidInput {
            reason: "adaptive serving is not enabled — call `TauwEngine::enable_adaptation` first"
                .into(),
        })
    }

    /// Processes one adaptive timestep on one stream (created on first
    /// use). Equivalent to [`crate::adaptive::AdaptiveTauwSession::step`]
    /// on that stream's dedicated adaptive session: serve the adapted
    /// bound, classify drift, then feed `failed` into the coverage window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when adaptation is not enabled,
    /// or [`CoreError`] on feature-arity mismatch — in either case no
    /// stream state is created or modified.
    pub fn step_adaptive(
        &mut self,
        stream: StreamId,
        quality_factors: &[f64],
        outcome: u32,
        failed: bool,
    ) -> Result<TauwStep, CoreError> {
        let config = self.require_adaptive_config()?;
        self.check_arity(quality_factors.len())?;
        let capacity = self.buffer_capacity;
        let buffer = self
            .streams
            .entry(stream)
            .or_insert_with(|| new_buffer(capacity));
        let state = match self.adaptive.entry(stream) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => e.insert(AdaptiveState::new(config)?),
        };
        adaptive_step_with_parts(
            &self.wrapper,
            buffer,
            state,
            &mut ServingScratch::new(),
            quality_factors,
            outcome,
            failed,
        )
    }

    /// Adaptive variant of [`TauwEngine::step_many`]: a batch of
    /// (step, realized outcome) pairs spanning any number of streams,
    /// returning one [`TauwStep`] per input **in batch order** with
    /// [`TauwStep::adapted_uncertainty`] and [`TauwStep::drift`] filled by
    /// each stream's own coverage loop.
    ///
    /// Independent streams fan out over the engine's thread budget; steps
    /// of the same stream apply in batch order within one worker, each
    /// stream's (buffer, adaptive state) pair evolving exactly as its
    /// dedicated [`crate::adaptive::AdaptiveTauwSession`] would — so the
    /// results are bit-identical to N sequential adaptive sessions for
    /// every thread budget (asserted by `tests/determinism.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when adaptation is not enabled,
    /// or [`CoreError`] on feature-arity mismatch of **any** batch entry;
    /// the batch is validated up front, so on error no stream state has
    /// been modified.
    pub fn step_many_adaptive(
        &mut self,
        batch: &[AdaptiveStreamStep],
    ) -> Result<Vec<TauwStep>, CoreError> {
        self.step_many_adaptive_impl(batch.len(), |i| {
            let step = &batch[i];
            (
                step.stream,
                step.quality_factors.as_slice(),
                step.outcome,
                step.failed,
            )
        })
    }

    /// Shared adaptive batched-step core (see [`TauwEngine::step_many_impl`]
    /// for why it is crate-visible): `get(i)` yields batch entry `i` as
    /// `(stream, quality factors, outcome, failed)`.
    pub(crate) fn step_many_adaptive_impl<'a, F>(
        &mut self,
        n: usize,
        get: F,
    ) -> Result<Vec<TauwStep>, CoreError>
    where
        F: Fn(usize) -> (StreamId, &'a [f64], u32, bool) + Sync,
    {
        let config = self.require_adaptive_config()?;
        for i in 0..n {
            self.check_arity(get(i).1.len())?;
        }
        let n_slots = self.build_wave_slots(n, |i| get(i).0);

        // Detach each touched stream's adaptive state too, so a worker
        // owns the complete per-stream serving state.
        for slot in &mut self.wave.slots[..n_slots] {
            slot.state = Some(match self.adaptive.remove(&slot.stream) {
                Some(state) => state,
                None => AdaptiveState::new(config)?,
            });
        }

        let threads = self.n_threads.unwrap_or_else(parallel::max_threads).max(1);
        let wrapper = &self.wrapper;
        let per_slot: Vec<Result<(), CoreError>> =
            parallel::par_map_mut(threads, &mut self.wave.slots[..n_slots], |slot| {
                let state = slot
                    .state
                    .as_mut()
                    .expect("adaptive wave slots carry state");
                for &i in &slot.positions {
                    let (_, quality_factors, outcome, failed) = get(i);
                    let step = adaptive_step_with_parts(
                        wrapper,
                        &mut slot.buffer,
                        state,
                        &mut slot.scratch,
                        quality_factors,
                        outcome,
                        failed,
                    )?;
                    slot.output.push(step);
                }
                Ok(())
            });
        self.finish_wave(n, n_slots, per_slot)
    }

    /// Replays a batch of series as concurrent streams: series `s` becomes
    /// stream `StreamId(s as u64)` (reset at the start), and step `j` of
    /// every series is submitted as one batched wave. Returns one
    /// `Vec<TauwStep>` per series, in series order — bit-identical to
    /// replaying each series through its own dedicated session.
    ///
    /// This is the canonical wave-batching loop shared by the experiment
    /// evaluation, the monitoring example, and the bench baseline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch.
    pub fn step_series_waves(
        &mut self,
        series: &[TrainingSeries],
    ) -> Result<Vec<Vec<TauwStep>>, CoreError> {
        for s in 0..series.len() {
            self.begin_series(StreamId(s as u64));
        }
        let window_len = series.iter().map(TrainingSeries::len).max().unwrap_or(0);
        let mut out: Vec<Vec<TauwStep>> =
            series.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let mut positions: Vec<usize> = Vec::with_capacity(series.len());
        let mut batch: Vec<(StreamId, &[f64], u32)> = Vec::with_capacity(series.len());
        for j in 0..window_len {
            positions.clear();
            batch.clear();
            for (s, ts) in series.iter().enumerate() {
                if let Some(step) = ts.steps.get(j) {
                    positions.push(s);
                    batch.push((
                        StreamId(s as u64),
                        step.quality_factors.as_slice(),
                        step.outcome,
                    ));
                }
            }
            if batch.is_empty() {
                break;
            }
            for (&s, step) in positions.iter().zip(self.step_many_borrowed(&batch)?) {
                out[s].push(step);
            }
        }
        Ok(out)
    }

    pub(crate) fn check_arity(&self, actual: usize) -> Result<(), CoreError> {
        let expected = self.wrapper.stateless().feature_names().len();
        if actual != expected {
            return Err(CoreError::FeatureArityMismatch { expected, actual });
        }
        Ok(())
    }
}

fn new_buffer(capacity: Option<usize>) -> TimeseriesBuffer {
    match capacity {
        Some(cap) => TimeseriesBuffer::bounded(cap),
        None => TimeseriesBuffer::with_capacity(32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationOptions;
    use crate::tauw::TauwBuilder;
    use crate::training::{TrainingSeries, TrainingStep};
    use crate::wrapper::WrapperBuilder;

    /// Same miniature world as the `tauw` module tests.
    fn make_series(n: usize, seed: u64, steps: usize) -> Vec<TrainingSeries> {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let q = next();
                let series_bias = next() < 0.5;
                let steps = (0..steps)
                    .map(|_| {
                        let p_fail = (q * if series_bias { 1.3 } else { 0.5 }).min(0.95);
                        let failed = next() < p_fail;
                        TrainingStep {
                            quality_factors: vec![q],
                            outcome: if failed { 3 } else { 7 },
                        }
                    })
                    .collect();
                TrainingSeries {
                    true_outcome: 7,
                    steps,
                }
            })
            .collect()
    }

    fn fitted() -> TimeseriesAwareWrapper {
        let train = make_series(300, 1, 10);
        let calib = make_series(300, 2, 10);
        let mut wb = WrapperBuilder::new();
        wb.max_depth(3).calibration(CalibrationOptions {
            min_samples_per_leaf: 50,
            confidence: 0.99,
            ..Default::default()
        });
        let mut b = TauwBuilder::new();
        b.wrapper(wb);
        b.fit(vec!["q".into()], &train, &calib).unwrap()
    }

    #[test]
    fn streams_are_created_on_first_step_and_independent() {
        let mut engine = fitted().into_engine();
        let a = engine.step(StreamId(10), &[0.2], 7).unwrap();
        let b = engine.step(StreamId(20), &[0.2], 3).unwrap();
        assert_eq!(engine.n_streams(), 2);
        assert_eq!(a.fused_outcome, 7);
        assert_eq!(b.fused_outcome, 3);
        assert_eq!(engine.stream_len(StreamId(10)), Some(1));
        assert_eq!(engine.stream_len(StreamId(99)), None);
        assert_eq!(engine.stream_ids(), vec![StreamId(10), StreamId(20)]);
    }

    #[test]
    fn engine_step_matches_session_step_exactly() {
        let tauw = fitted();
        let mut engine = tauw.clone().into_engine();
        let mut session = tauw.new_session();
        for (i, &(q, o)) in [(0.1, 7), (0.5, 3), (0.2, 7), (0.9, 3)].iter().enumerate() {
            let from_engine = engine.step(StreamId(0), &[q], o).unwrap();
            let from_session = session.step(&[q], o).unwrap();
            assert_eq!(from_engine, from_session, "step {i}");
            assert_eq!(
                from_engine.uncertainty.to_bits(),
                from_session.uncertainty.to_bits()
            );
        }
    }

    #[test]
    fn step_many_preserves_batch_order_and_intra_stream_sequencing() {
        let tauw = fitted();
        let mut engine = tauw.clone().into_engine();
        // Stream 5 appears twice in one batch: the second occurrence must
        // see the first one's push (series_length 2).
        let batch = vec![
            StreamStep::new(StreamId(5), vec![0.1], 7),
            StreamStep::new(StreamId(9), vec![0.4], 3),
            StreamStep::new(StreamId(5), vec![0.1], 3),
        ];
        let out = engine.step_many(&batch).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].series_length, 1);
        assert_eq!(out[1].series_length, 1);
        assert_eq!(out[2].series_length, 2);
        assert_eq!(out[2].fused_outcome, 3, "tie breaks to most recent");

        let mut session = tauw.new_session();
        assert_eq!(session.step(&[0.1], 7).unwrap(), out[0]);
        assert_eq!(session.step(&[0.1], 3).unwrap(), out[2]);
    }

    #[test]
    fn step_many_rejects_bad_arity_without_mutating_state() {
        let mut engine = fitted().into_engine();
        engine.step(StreamId(1), &[0.3], 7).unwrap();
        let batch = vec![
            StreamStep::new(StreamId(1), vec![0.1], 7),
            StreamStep::new(StreamId(2), vec![0.1, 0.2], 7),
        ];
        assert!(matches!(
            engine.step_many(&batch),
            Err(CoreError::FeatureArityMismatch { .. })
        ));
        assert_eq!(
            engine.stream_len(StreamId(1)),
            Some(1),
            "failed batch must not advance any stream"
        );
        assert_eq!(engine.stream_len(StreamId(2)), None);
    }

    #[test]
    fn step_rejects_bad_arity_without_creating_a_phantom_stream() {
        let mut engine = fitted().into_engine();
        assert!(matches!(
            engine.step(StreamId(77), &[0.1, 0.2], 7),
            Err(CoreError::FeatureArityMismatch { .. })
        ));
        assert_eq!(
            engine.n_streams(),
            0,
            "failed step must not register a stream"
        );
        assert_eq!(engine.stream_len(StreamId(77)), None);
    }

    #[test]
    fn step_many_borrowed_matches_owned_batches_exactly() {
        let tauw = fitted();
        let qfs = [[0.1], [0.5], [0.1], [0.9]];
        let entries = [
            (StreamId(1), 7u32),
            (StreamId(2), 3),
            (StreamId(1), 3),
            (StreamId(2), 3),
        ];
        let mut owned_engine = tauw.clone().into_engine();
        let owned_batch: Vec<StreamStep> = entries
            .iter()
            .zip(&qfs)
            .map(|(&(stream, outcome), qf)| StreamStep::new(stream, qf.to_vec(), outcome))
            .collect();
        let owned = owned_engine.step_many(&owned_batch).unwrap();

        let mut borrowed_engine = tauw.into_engine();
        let borrowed_batch: Vec<(StreamId, &[f64], u32)> = entries
            .iter()
            .zip(&qfs)
            .map(|(&(stream, outcome), qf)| (stream, qf.as_slice(), outcome))
            .collect();
        let borrowed = borrowed_engine.step_many_borrowed(&borrowed_batch).unwrap();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn begin_series_and_end_stream_manage_lifecycle() {
        let mut engine = fitted().into_engine();
        engine.step(StreamId(3), &[0.1], 7).unwrap();
        engine.step(StreamId(3), &[0.1], 7).unwrap();
        engine.begin_series(StreamId(3));
        assert_eq!(engine.stream_len(StreamId(3)), Some(0));
        engine.begin_series(StreamId(4)); // creates an empty stream
        assert_eq!(engine.stream_len(StreamId(4)), Some(0));
        assert!(engine.end_stream(StreamId(3)));
        assert!(!engine.end_stream(StreamId(3)));
        engine.clear_streams();
        assert_eq!(engine.n_streams(), 0);
    }

    #[test]
    fn bounded_engine_buffers_slide() {
        let mut engine = fitted().into_engine();
        engine.buffer_capacity(2);
        for _ in 0..5 {
            engine.step(StreamId(0), &[0.2], 7).unwrap();
        }
        assert_eq!(engine.stream_len(StreamId(0)), Some(2));
        assert_eq!(
            engine.stream_buffer(StreamId(0)).unwrap().capacity(),
            Some(2)
        );
        // The sliding window bounds memory, but taQF2 stays the paper's
        // lifetime series length `i + 1` (it used to be capped at the
        // window size — the windowed-semantics bugfix).
        let out = engine.step(StreamId(0), &[0.2], 7).unwrap();
        assert_eq!(out.taqf.length, 6.0);
        assert_eq!(out.series_length, 6);
        assert_eq!(engine.stream_total_steps(StreamId(0)), Some(6));
        assert_eq!(engine.stream_len(StreamId(0)), Some(2));
        // taQF1/3/4 in contrast are windowed: 2 agreeing steps of the
        // window, one distinct class.
        assert_eq!(out.taqf.ratio, 1.0);
        assert_eq!(out.taqf.unique_outcomes, 1.0);
        assert!(out.taqf.cumulative_certainty <= 2.0);
        engine.begin_series(StreamId(0));
        assert_eq!(engine.stream_total_steps(StreamId(0)), Some(0));
    }

    #[test]
    fn step_many_is_identical_across_thread_budgets() {
        let tauw = fitted();
        let series = make_series(24, 77, 10);
        let mut baseline: Option<Vec<TauwStep>> = None;
        for threads in [1usize, 2, 8] {
            let mut engine = tauw.clone().into_engine();
            engine.threads(threads);
            let mut all = Vec::new();
            for j in 0..10 {
                let batch: Vec<StreamStep> = series
                    .iter()
                    .enumerate()
                    .map(|(s, ts)| {
                        let step = &ts.steps[j];
                        StreamStep::new(
                            StreamId(s as u64),
                            step.quality_factors.clone(),
                            step.outcome,
                        )
                    })
                    .collect();
                all.extend(engine.step_many(&batch).unwrap());
            }
            match &baseline {
                None => baseline = Some(all),
                Some(expected) => assert_eq!(expected, &all, "threads={threads}"),
            }
        }
    }

    #[test]
    fn step_series_waves_matches_dedicated_sessions() {
        let tauw = fitted();
        let series = make_series(12, 5, 7);
        let mut engine = tauw.clone().into_engine();
        let waves = engine.step_series_waves(&series).unwrap();
        assert_eq!(waves.len(), series.len());
        for (s, ts) in series.iter().enumerate() {
            let mut session = tauw.new_session();
            session.begin_series();
            assert_eq!(waves[s].len(), ts.steps.len());
            for (step, expected) in ts.steps.iter().zip(&waves[s]) {
                let got = session.step(&step.quality_factors, step.outcome).unwrap();
                assert_eq!(&got, expected);
            }
        }
        // A second call resets the streams (fresh series, same ids).
        let again = engine.step_series_waves(&series).unwrap();
        assert_eq!(waves, again);
    }

    #[test]
    fn stream_id_formats_readably() {
        assert_eq!(StreamId(42).to_string(), "stream#42");
        assert!(StreamId(1) < StreamId(2));
    }

    /// Satellite regression test: `begin_series` resets the lifetime step
    /// counter (and with it taQF2's `i + 1` semantics) identically on the
    /// session and engine paths.
    #[test]
    fn begin_series_resets_the_lifetime_counter_on_both_paths() {
        let tauw = fitted();

        let mut session = tauw.new_session();
        for _ in 0..4 {
            session.step(&[0.2], 7).unwrap();
        }
        assert_eq!(session.series_length(), 4);
        session.begin_series();
        assert_eq!(session.series_length(), 0);
        let from_session = session.step(&[0.2], 7).unwrap();
        assert_eq!(from_session.series_length, 1);
        assert_eq!(from_session.taqf.length, 1.0);

        let mut engine = tauw.into_engine();
        for _ in 0..4 {
            engine.step(StreamId(0), &[0.2], 7).unwrap();
        }
        assert_eq!(engine.stream_total_steps(StreamId(0)), Some(4));
        engine.begin_series(StreamId(0));
        assert_eq!(engine.stream_total_steps(StreamId(0)), Some(0));
        let from_engine = engine.step(StreamId(0), &[0.2], 7).unwrap();
        assert_eq!(from_engine, from_session, "both paths restart at step 1");
    }

    #[test]
    fn step_adaptive_requires_enable_adaptation() {
        let mut engine = fitted().into_engine();
        let err = engine
            .step_adaptive(StreamId(0), &[0.2], 7, false)
            .unwrap_err()
            .to_string();
        assert!(err.contains("enable_adaptation"), "{err}");
        assert_eq!(engine.n_streams(), 0, "failed step must not create state");
        assert!(engine
            .step_many_adaptive(&[AdaptiveStreamStep::new(StreamId(0), vec![0.2], 7, false)])
            .is_err());
    }

    #[test]
    fn engine_adaptive_step_matches_adaptive_session_exactly() {
        let tauw = fitted();
        let config = AdaptiveConfig {
            window: 6,
            min_observations: 3,
            ..Default::default()
        };
        let mut engine = tauw.clone().into_engine();
        engine.enable_adaptation(config).unwrap();
        let mut session = tauw.new_adaptive_session(config).unwrap();
        // Quiet first half, then a burst of failures the frozen bounds
        // never promised: the adaptive path must inflate identically.
        for (i, &(q, o)) in [
            (0.1, 7),
            (0.1, 7),
            (0.2, 7),
            (0.9, 3),
            (0.9, 3),
            (0.9, 3),
            (0.9, 3),
            (0.8, 3),
        ]
        .iter()
        .enumerate()
        {
            let failed = o != 7;
            let from_engine = engine.step_adaptive(StreamId(0), &[q], o, failed).unwrap();
            let from_session = session.step(&[q], o, failed).unwrap();
            assert_eq!(from_engine, from_session, "step {i}");
        }
        assert_eq!(
            engine.adaptive_state(StreamId(0)).unwrap(),
            session.adaptive_state()
        );
        assert_eq!(engine.stream_drift(StreamId(0)), Some(session.drift()));
        assert!(
            engine
                .adaptive_state(StreamId(0))
                .unwrap()
                .inflation_steps()
                > 0,
            "the failure burst must have engaged adaptation"
        );
    }

    #[test]
    fn end_stream_and_clear_streams_drop_adaptive_state() {
        let mut engine = fitted().into_engine();
        engine.enable_adaptation(AdaptiveConfig::default()).unwrap();
        engine.step_adaptive(StreamId(1), &[0.2], 7, false).unwrap();
        engine.step_adaptive(StreamId(2), &[0.2], 7, false).unwrap();
        assert!(engine.adaptive_state(StreamId(1)).is_some());
        engine.end_stream(StreamId(1));
        assert!(engine.adaptive_state(StreamId(1)).is_none());
        engine.clear_streams();
        assert!(engine.adaptive_state(StreamId(2)).is_none());
        assert_eq!(engine.stream_drift(StreamId(2)), None);
    }

    #[test]
    fn import_adaptive_state_resumes_a_persisted_stream() {
        let tauw = fitted();
        let config = AdaptiveConfig {
            window: 4,
            min_observations: 2,
            ..Default::default()
        };
        // Build some adaptation in a session, move it into an engine.
        let mut session = tauw.new_adaptive_session(config).unwrap();
        for _ in 0..5 {
            session.step(&[0.9], 3, true).unwrap();
        }
        let exported = session.adaptive_state().clone();
        assert!(exported.inflation_steps() > 0);

        let mut engine = tauw.into_engine();
        engine.enable_adaptation(config).unwrap();
        engine.import_adaptive_state(StreamId(7), exported.clone());
        assert_eq!(engine.adaptive_state(StreamId(7)), Some(&exported));
        // The resumed stream keeps adapting from the imported notch.
        let step = engine.step_adaptive(StreamId(7), &[0.9], 3, true).unwrap();
        assert!(step.adapted_uncertainty > step.uncertainty);
    }

    #[test]
    fn wave_scratch_is_reused_across_steady_state_waves() {
        let tauw = fitted();
        let config = AdaptiveConfig {
            window: 6,
            min_observations: 3,
            ..Default::default()
        };
        let mut engine = tauw.clone().into_engine();
        engine.threads(1);
        engine.enable_adaptation(config).unwrap();

        let wave = |round: usize| -> Vec<AdaptiveStreamStep> {
            (0..3u64)
                .map(|s| {
                    let q = 0.1 + 0.2 * s as f64 + 0.01 * (round % 5) as f64;
                    let failed = (round + s as usize) % 4 == 0;
                    AdaptiveStreamStep::new(
                        StreamId(s),
                        vec![q],
                        if failed { 3 } else { 7 },
                        failed,
                    )
                })
                .collect()
        };

        // Twin dedicated sessions serve as the reference trajectory.
        let mut sessions: Vec<_> = (0..3)
            .map(|_| tauw.new_adaptive_session(config).unwrap())
            .collect();
        let reference = |sessions: &mut Vec<crate::adaptive::AdaptiveTauwSession>,
                         batch: &[AdaptiveStreamStep]| {
            batch
                .iter()
                .map(|e| {
                    sessions[e.stream.0 as usize]
                        .step(&e.quality_factors, e.outcome, e.failed)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        };

        // Warm-up waves size every reusable buffer, then capture the
        // scratch fingerprints: same pointers afterwards means the
        // steady-state waves stopped touching the allocator.
        for round in 0..4 {
            let batch = wave(round);
            assert_eq!(
                engine.step_many_adaptive(&batch).unwrap(),
                reference(&mut sessions, &batch),
                "warm-up round {round}"
            );
        }
        let n_slots_warm = engine.wave.slots.len();
        let fingerprints: Vec<(*const usize, *const f64, usize, usize)> = engine
            .wave
            .slots
            .iter()
            .map(|slot| {
                (
                    slot.positions.as_ptr(),
                    slot.scratch.features.as_ptr(),
                    slot.scratch.features.capacity(),
                    slot.output.capacity(),
                )
            })
            .collect();
        let results_ptr = engine.wave.results.as_ptr();
        let order_ptr = engine.wave.order.as_ptr();

        for round in 4..40 {
            let batch = wave(round);
            assert_eq!(
                engine.step_many_adaptive(&batch).unwrap(),
                reference(&mut sessions, &batch),
                "steady-state round {round}"
            );
        }

        assert_eq!(engine.wave.slots.len(), n_slots_warm, "slot pool regrew");
        assert_eq!(engine.wave.results.as_ptr(), results_ptr);
        assert_eq!(engine.wave.order.as_ptr(), order_ptr);
        for (slot, &(positions, features, features_cap, output_cap)) in
            engine.wave.slots.iter().zip(&fingerprints)
        {
            assert_eq!(slot.positions.as_ptr(), positions, "positions reallocated");
            assert_eq!(
                slot.scratch.features.as_ptr(),
                features,
                "scratch reallocated"
            );
            assert_eq!(slot.scratch.features.capacity(), features_cap);
            assert_eq!(slot.output.capacity(), output_cap, "output staging regrew");
        }

        // The plain (non-adaptive) wave path shares the same scaffolding.
        let plain: Vec<StreamStep> = (0..3u64)
            .map(|s| StreamStep::new(StreamId(s), vec![0.4], 7))
            .collect();
        engine.step_many(&plain).unwrap();
        let plain_fingerprints: Vec<*const f64> = engine
            .wave
            .slots
            .iter()
            .map(|slot| slot.scratch.features.as_ptr())
            .collect();
        for _ in 0..20 {
            engine.step_many(&plain).unwrap();
        }
        let after: Vec<*const f64> = engine
            .wave
            .slots
            .iter()
            .map(|slot| slot.scratch.features.as_ptr())
            .collect();
        assert_eq!(after, plain_fingerprints, "plain waves must reuse scratch");
    }

    /// Satellite regression test: the wave slot pool is sized by the peak
    /// number of distinct streams per wave; ending streams must hand that
    /// capacity back so steady-state memory tracks *live* streams.
    #[test]
    fn end_stream_releases_wave_slot_capacity() {
        let tauw = fitted();
        let mut engine = tauw.clone().into_engine();
        engine.threads(1);

        let batch: Vec<StreamStep> = (0..64u64)
            .map(|s| StreamStep::new(StreamId(s), vec![0.3], 7))
            .collect();
        engine.step_many(&batch).unwrap();
        assert_eq!(engine.wave.slots.len(), 64, "one slot per distinct stream");

        // Retire all but four streams: the pool must shrink with them
        // (both the live length and the backing allocation).
        for s in 4..64u64 {
            assert!(engine.end_stream(StreamId(s)));
        }
        assert!(
            engine.wave.slots.len() <= 4,
            "slot pool still holds {} slots for 4 live streams",
            engine.wave.slots.len()
        );
        assert!(
            engine.wave.slots.capacity() < 64,
            "slot pool capacity still pins the historical peak"
        );

        // Ending an unknown stream is a no-op and must not over-shrink.
        assert!(!engine.end_stream(StreamId(999)));

        // The shrunken engine keeps serving bit-identically: the surviving
        // streams match dedicated sessions that replayed the same steps.
        let survivors: Vec<StreamStep> = (0..4u64)
            .map(|s| StreamStep::new(StreamId(s), vec![0.6], 3))
            .collect();
        let out = engine.step_many(&survivors).unwrap();
        for (s, got) in out.iter().enumerate() {
            let mut session = tauw.new_session();
            session.step(&[0.3], 7).unwrap();
            let expected = session.step(&[0.6], 3).unwrap();
            assert_eq!(got, &expected, "stream {s} diverged after shrink");
        }
        assert_eq!(engine.wave.slots.len(), 4, "pool regrew past live count");

        // clear_streams releases the scaffolding entirely.
        engine.clear_streams();
        assert!(engine.wave.slots.is_empty());
        assert_eq!(engine.wave.slots.capacity(), 0);
        assert!(engine.wave.order.capacity() == 0 && engine.wave.results.capacity() == 0);
    }

    #[test]
    fn export_import_stream_round_trips_runtime_state() {
        let tauw = fitted();
        let config = AdaptiveConfig {
            window: 4,
            min_observations: 2,
            ..Default::default()
        };
        let mut engine = tauw.clone().into_engine();
        engine.enable_adaptation(config).unwrap();
        for _ in 0..5 {
            engine.step_adaptive(StreamId(3), &[0.9], 3, true).unwrap();
        }
        let (buffer, adaptive) = engine.export_stream(StreamId(3)).unwrap();
        assert!(adaptive.is_some());
        assert!(engine.export_stream(StreamId(99)).is_none());

        // A fresh engine with the imported state continues bit-identically
        // to the original engine.
        let mut resumed = tauw.into_engine();
        resumed.enable_adaptation(config).unwrap();
        resumed.import_stream(StreamId(3), buffer, adaptive);
        let a = engine.step_adaptive(StreamId(3), &[0.9], 3, true).unwrap();
        let b = resumed.step_adaptive(StreamId(3), &[0.9], 3, true).unwrap();
        assert_eq!(a, b);

        // Importing with `adaptive: None` is a faithful overwrite.
        let (buffer, _) = resumed.export_stream(StreamId(3)).unwrap();
        resumed.import_stream(StreamId(3), buffer, None);
        assert!(resumed.adaptive_state(StreamId(3)).is_none());
    }
}
