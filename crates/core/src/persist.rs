//! Model persistence: train and calibrate wrappers offline, deploy the
//! frozen artifact to the vehicle.
//!
//! The on-disk format is a versioned JSON envelope around the serde
//! representation of the model. JSON (rather than a binary format) keeps
//! the deployed artifact *reviewable* — the same transparency argument the
//! paper makes for decision trees extends to the calibrated bounds a
//! safety assessor has to sign off on.

use crate::buffer::TimeseriesBuffer;
use crate::calibration::{CalibratedForestQim, CalibratedQim};
use crate::conformal::ConformalQim;
use crate::error::CoreError;
use crate::tauw::TimeseriesAwareWrapper;
use crate::wrapper::UncertaintyWrapper;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current artifact format version. Bumped on breaking model-layout
/// changes; loading rejects mismatches instead of misinterpreting fields.
///
/// History: v1 carried pointer-tree models only; v2 added the compiled
/// [`tauw_dtree::FlatTree`] serving form and the leaf-ID-indexed bound
/// table inside every calibrated QIM, so a deployed artifact round-trips
/// the exact flat representation it serves with; v3 makes the wrapper's
/// taQIM slot a tagged shape (single tree or calibrated forest) and adds
/// the standalone `ForestQim` artifact kind; v4 adds the served-minimum
/// bound to forest QIMs and the `AdaptiveState` artifact kind (per-stream
/// online-calibration state, so a serving process restarts without losing
/// adaptation); v5 adds the `Conformal` taQIM shape behind the
/// [`crate::calibration::QimBackend`] seam plus the standalone `TreeQim`
/// and `ConformalQim` artifact kinds, so every backend has its own
/// deployable envelope; v6 adds the `EngineShard` artifact kind (one
/// serving shard's complete per-stream runtime state — buffers plus
/// adaptive state — so a sharded serving process restarts, or reshards,
/// without losing windows).
pub const FORMAT_VERSION: u32 = 6;

/// Kind tag inside the envelope, so a stateless wrapper cannot be loaded
/// where a timeseries-aware one is expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ArtifactKind {
    /// A stateless [`UncertaintyWrapper`].
    StatelessWrapper,
    /// A [`TimeseriesAwareWrapper`].
    TimeseriesAwareWrapper,
    /// A [`TimeseriesBuffer`] snapshot (per-stream runtime state, e.g. for
    /// migrating a long-running stream between hosts).
    TimeseriesBuffer,
    /// A standalone [`CalibratedForestQim`] (a boundary-smoothing forest
    /// quality impact model, deployable without a surrounding wrapper).
    ForestQim,
    /// A standalone [`CalibratedQim`] (single calibrated tree quality
    /// impact model, deployable without a surrounding wrapper).
    TreeQim,
    /// A standalone [`ConformalQim`] (leafless split-conformal quality
    /// impact model, deployable without a surrounding wrapper).
    ConformalQim,
    /// An [`crate::adaptive::AdaptiveState`] snapshot (one stream's online
    /// calibration state: coverage window, correction notch, last drift
    /// signal).
    AdaptiveState,
    /// An [`crate::sharded::EngineShardState`] snapshot (one serving
    /// shard's complete per-stream runtime state: every stream's fusion
    /// buffer plus adaptive state, restorable under any shard count).
    EngineShard,
}

#[derive(Debug, Serialize, Deserialize)]
struct Envelope<T> {
    format_version: u32,
    kind: ArtifactKind,
    model: T,
}

/// Header-only view of an envelope: deserializing it never touches the
/// model payload, so version/kind mismatches are reported as such instead
/// of surfacing as missing-field errors from a model layout the running
/// version no longer understands.
#[derive(Debug, Deserialize)]
struct EnvelopeHeader {
    format_version: u32,
    kind: ArtifactKind,
}

fn to_json<T: Serialize>(kind: ArtifactKind, model: &T) -> Result<String, CoreError> {
    serde_json::to_string_pretty(&Envelope {
        format_version: FORMAT_VERSION,
        kind,
        model,
    })
    .map_err(|e| CoreError::InvalidInput {
        reason: format!("serialization failed: {e}"),
    })
}

fn from_json<T: DeserializeOwned>(kind: ArtifactKind, json: &str) -> Result<T, CoreError> {
    let header: EnvelopeHeader =
        serde_json::from_str(json).map_err(|e| CoreError::InvalidInput {
            reason: format!("deserialization failed: {e}"),
        })?;
    if header.format_version != FORMAT_VERSION {
        // Name the kind being loaded, not just the version numbers: in a
        // mixed-version deployment "version 2 is not supported" alone does
        // not tell the operator *which* of their artifacts is stale.
        return Err(CoreError::InvalidInput {
            reason: format!(
                "artifact format version {} is not supported (expected {FORMAT_VERSION}) \
                 while loading a {:?} artifact",
                header.format_version, header.kind
            ),
        });
    }
    if header.kind != kind {
        return Err(CoreError::InvalidInput {
            reason: format!(
                "artifact kind {:?} does not match expected {kind:?}",
                header.kind
            ),
        });
    }
    let envelope: Envelope<T> =
        serde_json::from_str(json).map_err(|e| CoreError::InvalidInput {
            reason: format!("deserialization failed: {e}"),
        })?;
    Ok(envelope.model)
}

impl UncertaintyWrapper {
    /// Serializes the wrapper (QIM tree, calibrated bounds, scope model)
    /// to a versioned JSON artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if serialization fails.
    pub fn to_artifact_json(&self) -> Result<String, CoreError> {
        to_json(ArtifactKind::StatelessWrapper, self)
    }

    /// Loads a wrapper from a JSON artifact produced by
    /// [`UncertaintyWrapper::to_artifact_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON, a format
    /// version mismatch, a wrong artifact kind, or an internally
    /// inconsistent model (e.g. a hand-edited bound table).
    pub fn from_artifact_json(json: &str) -> Result<Self, CoreError> {
        let model: Self = from_json(ArtifactKind::StatelessWrapper, json)?;
        model.validate()?;
        Ok(model)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let json = self.to_artifact_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| CoreError::InvalidInput {
            reason: format!("writing artifact failed: {e}"),
        })
    }

    /// Reads an artifact file written by [`UncertaintyWrapper::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::InvalidInput {
            reason: format!("reading artifact failed: {e}"),
        })?;
        Self::from_artifact_json(&json)
    }
}

impl TimeseriesAwareWrapper {
    /// Serializes the full taUW (stateless wrapper + taQIM + taQF
    /// configuration) to a versioned JSON artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if serialization fails.
    pub fn to_artifact_json(&self) -> Result<String, CoreError> {
        to_json(ArtifactKind::TimeseriesAwareWrapper, self)
    }

    /// Loads a taUW from a JSON artifact produced by
    /// [`TimeseriesAwareWrapper::to_artifact_json`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON, a format
    /// version mismatch, a wrong artifact kind, or an internally
    /// inconsistent model (e.g. a hand-edited bound table).
    pub fn from_artifact_json(json: &str) -> Result<Self, CoreError> {
        let model: Self = from_json(ArtifactKind::TimeseriesAwareWrapper, json)?;
        model.validate()?;
        Ok(model)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let json = self.to_artifact_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| CoreError::InvalidInput {
            reason: format!("writing artifact failed: {e}"),
        })
    }

    /// Reads an artifact file written by [`TimeseriesAwareWrapper::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::InvalidInput {
            reason: format!("reading artifact failed: {e}"),
        })?;
        Self::from_artifact_json(&json)
    }
}

impl CalibratedForestQim {
    /// Serializes the calibrated forest (pruned pointer members in
    /// canonical order, compiled flat members, per-member bound tables) to
    /// a versioned JSON artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if serialization fails.
    pub fn to_artifact_json(&self) -> Result<String, CoreError> {
        to_json(ArtifactKind::ForestQim, self)
    }

    /// Loads a calibrated forest from a JSON artifact produced by
    /// [`CalibratedForestQim::to_artifact_json`], re-validating every
    /// ensemble invariant (member consistency, canonical member order).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON, a format
    /// version mismatch, a wrong artifact kind, or an internally
    /// inconsistent model (e.g. a hand-edited bound table or a permuted
    /// member list).
    pub fn from_artifact_json(json: &str) -> Result<Self, CoreError> {
        let model: Self = from_json(ArtifactKind::ForestQim, json)?;
        model.validate()?;
        Ok(model)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let json = self.to_artifact_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| CoreError::InvalidInput {
            reason: format!("writing artifact failed: {e}"),
        })
    }

    /// Reads an artifact file written by [`CalibratedForestQim::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::InvalidInput {
            reason: format!("reading artifact failed: {e}"),
        })?;
        Self::from_artifact_json(&json)
    }
}

impl CalibratedQim {
    /// Serializes the calibrated tree QIM (pruned pointer tree, compiled
    /// flat serving form, leaf-ID-indexed bound table) to a versioned JSON
    /// artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if serialization fails.
    pub fn to_artifact_json(&self) -> Result<String, CoreError> {
        to_json(ArtifactKind::TreeQim, self)
    }

    /// Loads a calibrated tree QIM from a JSON artifact produced by
    /// [`CalibratedQim::to_artifact_json`], re-validating every invariant
    /// (flat form consistent with the pointer tree, bound table aligned
    /// with the leaves).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON, a format
    /// version mismatch, a wrong artifact kind, or an internally
    /// inconsistent model (e.g. a hand-edited bound table).
    pub fn from_artifact_json(json: &str) -> Result<Self, CoreError> {
        let model: Self = from_json(ArtifactKind::TreeQim, json)?;
        model.validate()?;
        Ok(model)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let json = self.to_artifact_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| CoreError::InvalidInput {
            reason: format!("writing artifact failed: {e}"),
        })
    }

    /// Reads an artifact file written by [`CalibratedQim::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::InvalidInput {
            reason: format!("reading artifact failed: {e}"),
        })?;
        Self::from_artifact_json(&json)
    }
}

impl ConformalQim {
    /// Serializes the split-conformal QIM (histogram ranges, nested and
    /// flat rate tables, conformal quantile shift) to a versioned JSON
    /// artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if serialization fails.
    pub fn to_artifact_json(&self) -> Result<String, CoreError> {
        to_json(ArtifactKind::ConformalQim, self)
    }

    /// Loads a split-conformal QIM from a JSON artifact produced by
    /// [`ConformalQim::to_artifact_json`], re-validating every invariant
    /// (flat table bitwise consistent with the nested one, rates and
    /// shift in range, served minimum attainable).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON, a format
    /// version mismatch, a wrong artifact kind, or an internally
    /// inconsistent model (e.g. a hand-edited rate table).
    pub fn from_artifact_json(json: &str) -> Result<Self, CoreError> {
        let model: Self = from_json(ArtifactKind::ConformalQim, json)?;
        model.validate()?;
        Ok(model)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let json = self.to_artifact_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| CoreError::InvalidInput {
            reason: format!("writing artifact failed: {e}"),
        })
    }

    /// Reads an artifact file written by [`ConformalQim::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::InvalidInput {
            reason: format!("reading artifact failed: {e}"),
        })?;
        Self::from_artifact_json(&json)
    }
}

impl TimeseriesBuffer {
    /// Serializes the buffer (window contents in temporal order, bound,
    /// lifetime step counter) to a versioned JSON artifact — a snapshot of
    /// one stream's runtime state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if serialization fails.
    pub fn to_artifact_json(&self) -> Result<String, CoreError> {
        to_json(ArtifactKind::TimeseriesBuffer, self)
    }

    /// Loads a buffer snapshot produced by
    /// [`TimeseriesBuffer::to_artifact_json`].
    ///
    /// Deserialization funnels through [`TimeseriesBuffer::from_parts`], so
    /// every `push` invariant is re-established: a crafted artifact cannot
    /// carry uncertainties outside `[0, 1]`, non-finite values, more
    /// entries than its capacity bound, or a lifetime counter smaller than
    /// the window — such artifacts are rejected, like tampered model
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON, a format
    /// version mismatch, a wrong artifact kind, or state that violates the
    /// buffer invariants.
    pub fn from_artifact_json(json: &str) -> Result<Self, CoreError> {
        from_json(ArtifactKind::TimeseriesBuffer, json)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let json = self.to_artifact_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| CoreError::InvalidInput {
            reason: format!("writing artifact failed: {e}"),
        })
    }

    /// Reads an artifact file written by [`TimeseriesBuffer::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::InvalidInput {
            reason: format!("reading artifact failed: {e}"),
        })?;
        Self::from_artifact_json(&json)
    }
}

impl crate::adaptive::AdaptiveState {
    /// Serializes one stream's adaptive calibration state (config,
    /// coverage window in temporal order, correction notch, last drift
    /// signal) to a versioned JSON artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if serialization fails.
    pub fn to_artifact_json(&self) -> Result<String, CoreError> {
        to_json(ArtifactKind::AdaptiveState, self)
    }

    /// Loads adaptive state produced by
    /// [`crate::adaptive::AdaptiveState::to_artifact_json`].
    ///
    /// Deserialization funnels through
    /// [`crate::adaptive::AdaptiveState::from_parts`], so every invariant
    /// is re-established: a crafted artifact cannot carry an invalid
    /// config, a coverage window whose capacity disagrees with the config,
    /// non-binary coverage outcomes, or a correction notch above the
    /// configured cap — such artifacts are rejected, like tampered model
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON, a format
    /// version mismatch, a wrong artifact kind, or state that violates the
    /// adaptive invariants.
    pub fn from_artifact_json(json: &str) -> Result<Self, CoreError> {
        from_json(ArtifactKind::AdaptiveState, json)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let json = self.to_artifact_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| CoreError::InvalidInput {
            reason: format!("writing artifact failed: {e}"),
        })
    }

    /// Reads an artifact file written by
    /// [`crate::adaptive::AdaptiveState::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::InvalidInput {
            reason: format!("reading artifact failed: {e}"),
        })?;
        Self::from_artifact_json(&json)
    }
}

impl crate::sharded::EngineShardState {
    /// Serializes one serving shard's complete per-stream runtime state
    /// (every stream's fusion buffer plus adaptive state, in ascending
    /// stream-id order) to a versioned JSON artifact. Together with the
    /// wrapper artifact this is everything a sharded serving process needs
    /// to restart without losing windows.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if serialization fails.
    pub fn to_artifact_json(&self) -> Result<String, CoreError> {
        to_json(ArtifactKind::EngineShard, self)
    }

    /// Loads a shard snapshot produced by
    /// [`crate::sharded::EngineShardState::to_artifact_json`].
    ///
    /// Every stream's buffer and adaptive state deserialize through their
    /// own validating `from_parts` paths, and the shard-level shape
    /// (strictly ascending stream ids, in-range shard index) is
    /// re-established via [`crate::sharded::EngineShardState::validate`] —
    /// a crafted artifact is rejected, like tampered model artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON, a format
    /// version mismatch, a wrong artifact kind, or state that violates the
    /// snapshot invariants.
    pub fn from_artifact_json(json: &str) -> Result<Self, CoreError> {
        let state: Self = from_json(ArtifactKind::EngineShard, json)?;
        state.validate()?;
        Ok(state)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let json = self.to_artifact_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| CoreError::InvalidInput {
            reason: format!("writing artifact failed: {e}"),
        })
    }

    /// Reads an artifact file written by
    /// [`crate::sharded::EngineShardState::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| CoreError::InvalidInput {
            reason: format!("reading artifact failed: {e}"),
        })?;
        Self::from_artifact_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationOptions;
    use crate::conformal::ConformalOptions;
    use crate::tauw::{BackendSpec, TauwBuilder};
    use crate::training::{TrainingSeries, TrainingStep};
    use crate::wrapper::WrapperBuilder;

    fn toy_series(n: usize, seed: u64) -> Vec<TrainingSeries> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let q = next();
                let steps = (0..10)
                    .map(|_| TrainingStep {
                        quality_factors: vec![q],
                        outcome: u32::from(next() < q * 0.8),
                    })
                    .collect();
                TrainingSeries {
                    true_outcome: 0,
                    steps,
                }
            })
            .collect()
    }

    fn fitted() -> TimeseriesAwareWrapper {
        let mut wb = WrapperBuilder::new();
        wb.max_depth(3).calibration(CalibrationOptions {
            min_samples_per_leaf: 50,
            confidence: 0.99,
            ..Default::default()
        });
        let mut b = TauwBuilder::new();
        b.wrapper(wb);
        b.fit(vec!["q".into()], &toy_series(200, 1), &toy_series(200, 2))
            .unwrap()
    }

    #[test]
    fn tauw_roundtrips_through_json() {
        let tauw = fitted();
        let json = tauw.to_artifact_json().unwrap();
        let back = TimeseriesAwareWrapper::from_artifact_json(&json).unwrap();
        assert_eq!(tauw, back);
        // Behavioural equality, not just structural: same estimates.
        let mut s1 = tauw.new_session();
        let mut s2 = back.new_session();
        for (qf, outcome) in [(0.1, 0u32), (0.9, 1), (0.9, 1), (0.5, 0)] {
            let a = s1.step(&[qf], outcome).unwrap();
            let b = s2.step(&[qf], outcome).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stateless_wrapper_roundtrips_through_json() {
        let tauw = fitted();
        let wrapper = tauw.stateless().clone();
        let json = wrapper.to_artifact_json().unwrap();
        let back = UncertaintyWrapper::from_artifact_json(&json).unwrap();
        assert_eq!(wrapper, back);
        assert_eq!(
            wrapper.uncertainty(&[0.42]).unwrap(),
            back.uncertainty(&[0.42]).unwrap()
        );
    }

    #[test]
    fn artifact_roundtrips_the_flat_form_bit_for_bit() {
        use tauw_dtree::FlatTree;
        let tauw = fitted();
        let json = tauw.to_artifact_json().unwrap();
        let back = TimeseriesAwareWrapper::from_artifact_json(&json).unwrap();
        // The flat serving form is stored in the artifact, not re-derived;
        // it must come back identical and consistent with its pointer tree.
        let taqim = tauw.taqim().as_tree().expect("default taQIM is a tree");
        let taqim_back = back.taqim().as_tree().expect("default taQIM is a tree");
        for (qim, qim_back) in [
            (tauw.stateless().qim(), back.stateless().qim()),
            (taqim, taqim_back),
        ] {
            assert_eq!(qim.flat(), qim_back.flat());
            assert_eq!(qim.leaf_bounds(), qim_back.leaf_bounds());
            assert_eq!(qim_back.flat(), &FlatTree::from_tree(qim_back.tree()));
        }
    }

    fn fitted_forest() -> TimeseriesAwareWrapper {
        let mut wb = WrapperBuilder::new();
        wb.max_depth(3).calibration(CalibrationOptions {
            min_samples_per_leaf: 50,
            confidence: 0.99,
            ..Default::default()
        });
        let mut b = TauwBuilder::new();
        b.wrapper(wb).backend(BackendSpec::Forest {
            n_trees: 3,
            seed: 0xF0E,
        });
        b.fit(vec!["q".into()], &toy_series(200, 1), &toy_series(200, 2))
            .unwrap()
    }

    fn fitted_conformal() -> TimeseriesAwareWrapper {
        let mut wb = WrapperBuilder::new();
        wb.max_depth(3).calibration(CalibrationOptions {
            min_samples_per_leaf: 50,
            confidence: 0.99,
            ..Default::default()
        });
        let mut b = TauwBuilder::new();
        b.wrapper(wb)
            .backend(BackendSpec::Conformal(ConformalOptions::default()));
        b.fit(vec!["q".into()], &toy_series(200, 1), &toy_series(200, 2))
            .unwrap()
    }

    #[test]
    fn forest_wrapper_roundtrips_with_bit_identical_estimates() {
        let tauw = fitted_forest();
        assert_eq!(tauw.taqim().n_trees(), 3);
        let json = tauw.to_artifact_json().unwrap();
        let back = TimeseriesAwareWrapper::from_artifact_json(&json).unwrap();
        assert_eq!(tauw, back);
        let mut s1 = tauw.new_session();
        let mut s2 = back.new_session();
        for (qf, outcome) in [(0.1, 0u32), (0.9, 1), (0.9, 1), (0.5, 0)] {
            let a = s1.step(&[qf], outcome).unwrap();
            let b = s2.step(&[qf], outcome).unwrap();
            assert_eq!(a.uncertainty.to_bits(), b.uncertainty.to_bits());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn forest_qim_artifact_roundtrips_the_flat_form_bit_for_bit() {
        use tauw_dtree::FlatTree;
        let tauw = fitted_forest();
        let qim = tauw.taqim().as_forest().unwrap();
        let json = qim.to_artifact_json().unwrap();
        let back = CalibratedForestQim::from_artifact_json(&json).unwrap();
        assert_eq!(qim, &back);
        // The flat members are stored, not re-derived, and each is exactly
        // the lowering of its pointer member.
        assert_eq!(qim.flat(), back.flat());
        assert_eq!(qim.leaf_bounds(), back.leaf_bounds());
        for (t, tree) in back.trees().iter().enumerate() {
            assert_eq!(back.flat().tree(t), &FlatTree::from_tree(tree));
        }
        // taQIM features: [stateless QF ‖ ratio, length, size, certainty].
        for q in [
            [0.1, 1.0, 1.0, 1.0, 0.9],
            [0.5, 0.6, 5.0, 2.0, 2.5],
            [0.9, 0.3, 9.0, 3.0, 1.1],
        ] {
            assert_eq!(
                qim.uncertainty(&q).unwrap().to_bits(),
                back.uncertainty(&q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn forest_qim_artifact_rejects_tampering() {
        let tauw = fitted_forest();
        let qim = tauw.taqim().as_forest().unwrap();
        let json = qim.to_artifact_json().unwrap();

        // Desynchronize the first member's bound table: one extra entry.
        let field = json.find("\"leaf_bounds\"").expect("field present");
        let bracket = field + json[field..].find('[').expect("outer array opens");
        let inner = bracket + 1 + json[bracket + 1..].find('[').expect("member array opens");
        let mut tampered = json.clone();
        tampered.insert_str(inner + 1, " 0.123456789,");
        assert_ne!(tampered, json, "tamper edit must hit the artifact");
        match CalibratedForestQim::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(reason.contains("calibrated forest QIM"), "reason: {reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // A wrapper artifact is not a standalone forest QIM.
        let wrapper_json = tauw.to_artifact_json().unwrap();
        assert!(CalibratedForestQim::from_artifact_json(&wrapper_json).is_err());

        // The untampered artifact still loads.
        assert!(CalibratedForestQim::from_artifact_json(&json).is_ok());
    }

    #[test]
    fn forest_qim_save_and_load_file() {
        let tauw = fitted_forest();
        let qim = tauw.taqim().as_forest().unwrap();
        let path = std::env::temp_dir().join(format!(
            "tauw_forest_qim_persist_test_{}.json",
            std::process::id()
        ));
        qim.save(&path).unwrap();
        let back = CalibratedForestQim::load(&path).unwrap();
        assert_eq!(qim, &back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tree_qim_artifact_roundtrips_byte_for_byte() {
        // Satellite of the backend seam: the single tree gets its own
        // standalone envelope like every other backend.
        let tauw = fitted();
        let qim = tauw.taqim().as_tree().unwrap();
        let json = qim.to_artifact_json().unwrap();
        let back = crate::calibration::CalibratedQim::from_artifact_json(&json).unwrap();
        assert_eq!(qim, &back);
        assert_eq!(json, back.to_artifact_json().unwrap());
        for q in [
            [0.1, 1.0, 1.0, 1.0, 0.9],
            [0.5, 0.6, 5.0, 2.0, 2.5],
            [0.9, 0.3, 9.0, 3.0, 1.1],
        ] {
            assert_eq!(
                qim.uncertainty(&q).unwrap().to_bits(),
                back.uncertainty(&q).unwrap().to_bits()
            );
        }
        // A tree envelope is not a forest or conformal one.
        assert!(CalibratedForestQim::from_artifact_json(&json).is_err());
        assert!(ConformalQim::from_artifact_json(&json).is_err());
    }

    #[test]
    fn conformal_wrapper_roundtrips_with_bit_identical_estimates() {
        let tauw = fitted_conformal();
        assert!(tauw.taqim().as_conformal().is_some());
        let json = tauw.to_artifact_json().unwrap();
        let back = TimeseriesAwareWrapper::from_artifact_json(&json).unwrap();
        assert_eq!(tauw, back);
        // Byte-for-byte: re-serializing the loaded wrapper reproduces the
        // artifact exactly (canonical layout, no representation drift).
        assert_eq!(json, back.to_artifact_json().unwrap());
        let mut s1 = tauw.new_session();
        let mut s2 = back.new_session();
        for (qf, outcome) in [(0.1, 0u32), (0.9, 1), (0.9, 1), (0.5, 0)] {
            let a = s1.step(&[qf], outcome).unwrap();
            let b = s2.step(&[qf], outcome).unwrap();
            assert_eq!(a.uncertainty.to_bits(), b.uncertainty.to_bits());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn conformal_qim_artifact_roundtrips_byte_for_byte() {
        let tauw = fitted_conformal();
        let qim = tauw.taqim().as_conformal().unwrap();
        let json = qim.to_artifact_json().unwrap();
        let back = ConformalQim::from_artifact_json(&json).unwrap();
        assert_eq!(qim, &back);
        assert_eq!(json, back.to_artifact_json().unwrap());
        for q in [
            [0.1, 1.0, 1.0, 1.0, 0.9],
            [0.5, 0.6, 5.0, 2.0, 2.5],
            [0.9, 0.3, 9.0, 3.0, 1.1],
        ] {
            assert_eq!(
                qim.uncertainty(&q).unwrap().to_bits(),
                back.uncertainty(&q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn conformal_qim_artifact_rejects_tampering_and_stale_versions() {
        let tauw = fitted_conformal();
        let qim = tauw.taqim().as_conformal().unwrap();
        let json = qim.to_artifact_json().unwrap();

        // Desynchronize the flat rate table from the nested one: splice an
        // extra entry into the flat array.
        let field = json.find("\"flat_rates\"").expect("field present");
        let bracket = field + json[field..].find('[').expect("array opens");
        let mut tampered = json.clone();
        tampered.insert_str(bracket + 1, " 0.123456789,");
        assert_ne!(tampered, json, "tamper edit must hit the artifact");
        match ConformalQim::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                // The splice desynchronizes the table length, which the
                // shape check reports before the bitwise comparison runs.
                assert!(reason.contains("flat rate"), "reason: {reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // A wrapper artifact is not a standalone conformal QIM.
        let wrapper_json = tauw.to_artifact_json().unwrap();
        assert!(ConformalQim::from_artifact_json(&wrapper_json).is_err());

        // Stale format version: refused with the version message naming
        // the kind, before any model payload is read.
        let stale = r#"{"format_version": 4, "kind": "ConformalQim", "model": {}}"#;
        match ConformalQim::from_artifact_json(stale) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(
                    reason.contains("format version 4 is not supported")
                        && reason.contains("ConformalQim artifact"),
                    "reason: {reason}"
                );
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // The untampered artifact still loads.
        assert!(ConformalQim::from_artifact_json(&json).is_ok());
    }

    #[test]
    fn conformal_qim_save_and_load_file() {
        let tauw = fitted_conformal();
        let qim = tauw.taqim().as_conformal().unwrap();
        let path = std::env::temp_dir().join(format!(
            "tauw_conformal_qim_persist_test_{}.json",
            std::process::id()
        ));
        qim.save(&path).unwrap();
        let back = ConformalQim::load(&path).unwrap();
        assert_eq!(qim, &back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let tauw = fitted();
        let json = tauw.to_artifact_json().unwrap();
        let err = UncertaintyWrapper::from_artifact_json(&json);
        assert!(matches!(err, Err(CoreError::InvalidInput { .. })));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let tauw = fitted();
        let json = tauw.to_artifact_json().unwrap().replace(
            &format!("\"format_version\": {FORMAT_VERSION}"),
            "\"format_version\": 999",
        );
        assert!(json.contains("\"format_version\": 999"), "replace must hit");
        let err = TimeseriesAwareWrapper::from_artifact_json(&json);
        assert!(matches!(err, Err(CoreError::InvalidInput { .. })));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(TimeseriesAwareWrapper::from_artifact_json("not json").is_err());
        assert!(TimeseriesAwareWrapper::from_artifact_json("{}").is_err());
    }

    #[test]
    fn old_format_version_is_rejected_as_such() {
        // A v1 artifact (pre-flat-form model layout) must be refused with
        // the version message, not with a missing-field error from the
        // model payload — the header is checked before the model is read.
        // The message also names the artifact kind being loaded, so a
        // mixed-version deployment can tell *which* artifact is stale.
        let v1 = r#"{"format_version": 1, "kind": "TimeseriesAwareWrapper", "model": {}}"#;
        match TimeseriesAwareWrapper::from_artifact_json(v1) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(
                    reason.contains("format version 1 is not supported"),
                    "unexpected reason: {reason}"
                );
                assert!(
                    reason.contains("TimeseriesAwareWrapper artifact"),
                    "version error must name the artifact kind: {reason}"
                );
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        // Same for a stale buffer snapshot: the kind in the message follows
        // the artifact, not the loader.
        let v2 = r#"{"format_version": 2, "kind": "TimeseriesBuffer", "model": {}}"#;
        match TimeseriesBuffer::from_artifact_json(v2) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(
                    reason.contains("format version 2 is not supported")
                        && reason.contains("TimeseriesBuffer artifact"),
                    "unexpected reason: {reason}"
                );
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn tampered_bound_table_is_rejected_at_load() {
        // The artifact format is deliberately reviewable/editable JSON;
        // an edit that desynchronizes the leaf-ID bound table from the
        // calibrated leaves must fail at load, not panic mid-serving.
        let tauw = fitted();
        let json = tauw.to_artifact_json().unwrap();
        // Splice one extra entry into the (last) leaf_bounds array so it no
        // longer matches the flat tree's leaf count.
        let field = json.rfind("\"leaf_bounds\"").expect("field present");
        let bracket = field + json[field..].find('[').expect("array opens");
        let mut tampered = json.clone();
        tampered.insert_str(bracket + 1, " 0.123456789,");
        assert_ne!(tampered, json, "tamper edit must hit the artifact");
        match TimeseriesAwareWrapper::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(reason.contains("calibrated QIM"), "reason: {reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn buffer_snapshot_roundtrips_mid_wrap_and_resumes_bit_identically() {
        // A bounded buffer that has wrapped (ring head != 0) must reload
        // into the same semantic state: same window, same lifetime counter,
        // and bit-identical estimates for every future step.
        let tauw = fitted();
        let mut buffer = TimeseriesBuffer::bounded(3);
        for (o, q) in [(0u32, 0.2), (1, 0.9), (0, 0.4), (1, 0.8), (0, 0.1)] {
            tauw.step_with_buffer(&mut buffer, &[q], o).unwrap();
        }
        assert_eq!(buffer.total_steps(), 5);
        let json = buffer.to_artifact_json().unwrap();
        let mut back = TimeseriesBuffer::from_artifact_json(&json).unwrap();
        assert_eq!(buffer, back);
        assert_eq!(back.total_steps(), 5);
        for (o, q) in [(1u32, 0.7), (0, 0.3), (1, 0.5)] {
            let a = tauw.step_with_buffer(&mut buffer, &[q], o).unwrap();
            let b = tauw.step_with_buffer(&mut back, &[q], o).unwrap();
            assert_eq!(a.uncertainty.to_bits(), b.uncertainty.to_bits());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn buffer_artifact_rejects_invariant_violations() {
        let mut buffer = TimeseriesBuffer::bounded(2);
        buffer.push(1, 0.25);
        buffer.push(2, 0.75);
        let json = buffer.to_artifact_json().unwrap();

        // Out-of-range uncertainty: the deserializer must re-establish the
        // push invariants, not trust the artifact.
        let tampered = json.replace("0.25", "7.5");
        assert_ne!(tampered, json, "tamper edit must hit");
        match TimeseriesBuffer::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(reason.contains("outside [0, 1]"), "reason: {reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // More entries than the capacity bound.
        let tampered = json.replace("\"capacity\": 2", "\"capacity\": 1");
        assert_ne!(tampered, json);
        match TimeseriesBuffer::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(reason.contains("capacity"), "reason: {reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // Lifetime counter smaller than the window.
        let tampered = json.replace("\"total_steps\": 2", "\"total_steps\": 1");
        assert_ne!(tampered, json);
        assert!(TimeseriesBuffer::from_artifact_json(&tampered).is_err());

        // Non-finite uncertainty (JSON null decodes to NaN).
        let tampered = json.replace("0.75", "null");
        assert_ne!(tampered, json);
        assert!(TimeseriesBuffer::from_artifact_json(&tampered).is_err());

        // Wrong artifact kind.
        let wrapper_json = fitted().to_artifact_json().unwrap();
        assert!(TimeseriesBuffer::from_artifact_json(&wrapper_json).is_err());

        // The untampered artifact still loads.
        assert!(TimeseriesBuffer::from_artifact_json(&json).is_ok());
    }

    #[test]
    fn buffer_snapshot_save_and_load_file() {
        let mut buffer = TimeseriesBuffer::new();
        buffer.push(3, 0.5);
        let path = std::env::temp_dir().join(format!(
            "tauw_buffer_persist_test_{}.json",
            std::process::id()
        ));
        buffer.save(&path).unwrap();
        let back = TimeseriesBuffer::load(&path).unwrap();
        assert_eq!(buffer, back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn save_and_load_file() {
        let tauw = fitted();
        let path =
            std::env::temp_dir().join(format!("tauw_persist_test_{}.json", std::process::id()));
        tauw.save(&path).unwrap();
        let back = TimeseriesAwareWrapper::load(&path).unwrap();
        assert_eq!(tauw, back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let err = TimeseriesAwareWrapper::load("/nonexistent/path/tauw.json");
        assert!(matches!(err, Err(CoreError::InvalidInput { .. })));
    }

    use crate::adaptive::{AdaptiveConfig, AdaptiveState, DriftSignal};

    fn adapted_state() -> AdaptiveState {
        let mut state = AdaptiveState::new(AdaptiveConfig {
            window: 6,
            min_observations: 3,
            ..Default::default()
        })
        .unwrap();
        // A mix of successes and failures, enough to ratchet the notch.
        for i in 0..9 {
            let served = state.adapted_bound(0.1 + 0.05 * (i % 4) as f64);
            state.observe(served, i % 2 == 0);
        }
        state
    }

    #[test]
    fn adaptive_state_roundtrips_byte_for_byte() {
        let state = adapted_state();
        let json = state.to_artifact_json().unwrap();
        let back = AdaptiveState::from_artifact_json(&json).unwrap();
        assert_eq!(state, back);
        // Byte-for-byte: re-serializing the loaded state reproduces the
        // artifact exactly (canonical layout, no representation drift).
        assert_eq!(json, back.to_artifact_json().unwrap());
        // Behavioural equality: both copies adapt identically from here.
        let mut a = state;
        let mut b = back;
        for i in 0..12 {
            let ua = a.adapted_bound(0.2);
            let ub = b.adapted_bound(0.2);
            assert_eq!(ua.to_bits(), ub.to_bits());
            a.observe(ua, i % 3 == 0);
            b.observe(ub, i % 3 == 0);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_state_artifact_rejects_tampering() {
        let state = adapted_state();
        let json = state.to_artifact_json().unwrap();

        // Correction notch above the configured cap.
        let needle = format!("\"inflation_steps\": {}", state.inflation_steps());
        let tampered = json.replace(
            &needle,
            &format!(
                "\"inflation_steps\": {}",
                state.config().max_inflation_steps + 1
            ),
        );
        assert_ne!(tampered, json, "tamper edit must hit the artifact");
        match AdaptiveState::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(reason.contains("inflation step count"), "reason: {reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // A non-binary coverage outcome (the ring stores 0/1 only).
        let tampered = json.replace("\"outcome\": 1", "\"outcome\": 3");
        assert_ne!(tampered, json);
        match AdaptiveState::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(reason.contains("outcome 3"), "reason: {reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // Coverage capacity desynchronized from the configured window.
        let tampered = json.replace("\"capacity\": 6", "\"capacity\": 7");
        assert_ne!(tampered, json);
        match AdaptiveState::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(
                    reason.contains("coverage window capacity"),
                    "reason: {reason}"
                );
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // Wrong artifact kind and stale format version.
        let buffer_json = TimeseriesBuffer::new().to_artifact_json().unwrap();
        assert!(AdaptiveState::from_artifact_json(&buffer_json).is_err());
        let stale = r#"{"format_version": 3, "kind": "AdaptiveState", "model": {}}"#;
        match AdaptiveState::from_artifact_json(stale) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(
                    reason.contains("format version 3 is not supported")
                        && reason.contains("AdaptiveState artifact"),
                    "reason: {reason}"
                );
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // The untampered artifact still loads.
        assert!(AdaptiveState::from_artifact_json(&json).is_ok());
    }

    use crate::engine::StreamId;
    use crate::sharded::{EngineShardState, ShardedEngine};

    fn sharded_engine_with_traffic() -> ShardedEngine {
        let tauw = fitted();
        let mut engine = ShardedEngine::new(tauw, 2);
        engine
            .enable_adaptation(AdaptiveConfig {
                window: 6,
                min_observations: 3,
                ..Default::default()
            })
            .unwrap();
        for round in 0..8 {
            for id in 0..6u64 {
                let q = 0.1 + 0.1 * id as f64;
                let failed = (round + id) % 3 == 0;
                engine
                    .step_adaptive(StreamId(id), &[q], if failed { 1 } else { 0 }, failed)
                    .unwrap();
            }
        }
        engine
    }

    #[test]
    fn engine_shard_artifact_roundtrips_byte_for_byte() {
        let engine = sharded_engine_with_traffic();
        for shard in 0..engine.n_shards() {
            let state = engine.snapshot_shard(shard).unwrap();
            let json = state.to_artifact_json().unwrap();
            let back = EngineShardState::from_artifact_json(&json).unwrap();
            assert_eq!(state, back);
            // Byte-for-byte: re-serializing the loaded snapshot reproduces
            // the artifact exactly (canonical stream order, no
            // representation drift).
            assert_eq!(json, back.to_artifact_json().unwrap());
        }
    }

    #[test]
    fn engine_shard_restore_from_artifact_continues_bit_identically() {
        let mut original = sharded_engine_with_traffic();
        let config = original.adaptive_config().unwrap();
        // Persist every shard, restore into a differently-sharded engine.
        let mut restored = ShardedEngine::new(original.wrapper().clone(), 5);
        restored.enable_adaptation(config).unwrap();
        for shard in 0..original.n_shards() {
            let json = original
                .snapshot_shard(shard)
                .unwrap()
                .to_artifact_json()
                .unwrap();
            let state = EngineShardState::from_artifact_json(&json).unwrap();
            restored.restore(&state).unwrap();
        }
        assert_eq!(restored.n_streams(), original.n_streams());
        for round in 0..4 {
            for id in 0..6u64 {
                let q = 0.2 + 0.1 * id as f64;
                let failed = round % 2 == 0;
                let a = original
                    .step_adaptive(StreamId(id), &[q], u32::from(failed), failed)
                    .unwrap();
                let b = restored
                    .step_adaptive(StreamId(id), &[q], u32::from(failed), failed)
                    .unwrap();
                assert_eq!(a, b, "round {round} stream {id}");
            }
        }
    }

    #[test]
    fn engine_shard_artifact_rejects_tampering_and_stale_versions() {
        let engine = sharded_engine_with_traffic();
        let state = engine.snapshot_shard(0).unwrap();
        assert!(
            !state.streams.is_empty(),
            "shard 0 must carry streams for this test"
        );
        let json = state.to_artifact_json().unwrap();

        // A tampered stream id that breaks the ascending-order invariant.
        let first = state.streams[0].stream.0;
        let needle = format!("\"stream\": {first}");
        let tampered = json.replacen(&needle, "\"stream\": 18446744073709551615", 1);
        assert_ne!(tampered, json, "tamper edit must hit the artifact");
        match EngineShardState::from_artifact_json(&tampered) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(reason.contains("strictly ascending"), "reason: {reason}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // A buffer invariant violation inside one stream's state is caught
        // by the buffer's own validating deserializer.
        let tampered = json.replacen("\"total_steps\": 8", "\"total_steps\": 1", 1);
        if tampered != json {
            assert!(EngineShardState::from_artifact_json(&tampered).is_err());
        }

        // Wrong artifact kind and stale format version.
        let buffer_json = TimeseriesBuffer::new().to_artifact_json().unwrap();
        assert!(EngineShardState::from_artifact_json(&buffer_json).is_err());
        let stale = r#"{"format_version": 5, "kind": "EngineShard", "model": {}}"#;
        match EngineShardState::from_artifact_json(stale) {
            Err(CoreError::InvalidInput { reason }) => {
                assert!(
                    reason.contains("format version 5 is not supported")
                        && reason.contains("EngineShard artifact"),
                    "reason: {reason}"
                );
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        // The untampered artifact still loads.
        assert!(EngineShardState::from_artifact_json(&json).is_ok());
    }

    #[test]
    fn engine_shard_save_and_load_file() {
        let engine = sharded_engine_with_traffic();
        let state = engine.snapshot_shard(1).unwrap();
        let path = std::env::temp_dir().join(format!(
            "tauw_engine_shard_persist_test_{}.json",
            std::process::id()
        ));
        state.save(&path).unwrap();
        let back = EngineShardState::load(&path).unwrap();
        assert_eq!(state, back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn adaptive_state_save_and_load_file() {
        let mut state = adapted_state();
        state.record_drift(DriftSignal::Drifting { epistemic: true });
        let path = std::env::temp_dir().join(format!(
            "tauw_adaptive_persist_test_{}.json",
            std::process::id()
        ));
        state.save(&path).unwrap();
        let back = AdaptiveState::load(&path).unwrap();
        assert_eq!(state, back);
        assert_eq!(back.last_drift(), DriftSignal::Drifting { epistemic: true });
        let _ = std::fs::remove_file(path);
    }
}
