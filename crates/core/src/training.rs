//! Training-data representation for the timeseries-aware wrapper: the
//! per-series, per-step quality factors and DDM outcomes, with the series'
//! ground truth. This keeps `tauw-core` independent of any particular
//! world/simulator — `tauw-sim` series convert into this form.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// One timestep of a training/calibration series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingStep {
    /// Stateless quality factors observed at this step.
    pub quality_factors: Vec<f64>,
    /// The DDM's outcome (class id) at this step.
    pub outcome: u32,
}

/// A labelled timeseries used to build or calibrate wrappers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSeries {
    /// Ground-truth outcome shared by all steps of the series.
    pub true_outcome: u32,
    /// Steps in temporal order.
    pub steps: Vec<TrainingStep>,
}

impl TrainingSeries {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the series has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether the DDM outcome at `step` is a failure.
    pub fn is_failure(&self, step: usize) -> bool {
        self.steps[step].outcome != self.true_outcome
    }
}

/// Validates a batch of series: consistent arity, non-empty.
///
/// Returns the common quality-factor arity.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] when the batch or any series is
/// empty, or arities differ across steps/series.
pub fn validate_series(batch: &[TrainingSeries]) -> Result<usize, CoreError> {
    let first =
        batch
            .first()
            .and_then(|s| s.steps.first())
            .ok_or_else(|| CoreError::InvalidInput {
                reason: "series batch is empty".into(),
            })?;
    let arity = first.quality_factors.len();
    for (i, series) in batch.iter().enumerate() {
        if series.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: format!("series {i} has no steps"),
            });
        }
        for (j, step) in series.steps.iter().enumerate() {
            if step.quality_factors.len() != arity {
                return Err(CoreError::InvalidInput {
                    reason: format!(
                        "series {i} step {j} has arity {} but expected {arity}",
                        step.quality_factors.len()
                    ),
                });
            }
        }
    }
    Ok(arity)
}

/// Flattens series into stateless `(quality factors, failed)` rows — the
/// training/calibration format of the classical wrapper.
pub fn flatten_stateless(batch: &[TrainingSeries]) -> Vec<(Vec<f64>, bool)> {
    let mut rows = Vec::with_capacity(batch.iter().map(TrainingSeries::len).sum());
    for series in batch {
        for (j, step) in series.steps.iter().enumerate() {
            rows.push((step.quality_factors.clone(), series.is_failure(j)));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(true_outcome: u32, outcomes: &[u32]) -> TrainingSeries {
        TrainingSeries {
            true_outcome,
            steps: outcomes
                .iter()
                .map(|&o| TrainingStep {
                    quality_factors: vec![0.1, 0.2],
                    outcome: o,
                })
                .collect(),
        }
    }

    #[test]
    fn failure_detection_per_step() {
        let s = series(5, &[5, 3, 5]);
        assert!(!s.is_failure(0));
        assert!(s.is_failure(1));
        assert!(!s.is_failure(2));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn validation_returns_arity() {
        let batch = vec![series(1, &[1, 1]), series(2, &[2])];
        assert_eq!(validate_series(&batch).unwrap(), 2);
    }

    #[test]
    fn validation_rejects_empty_batch_and_series() {
        assert!(validate_series(&[]).is_err());
        let batch = vec![TrainingSeries {
            true_outcome: 0,
            steps: vec![],
        }];
        assert!(validate_series(&batch).is_err());
    }

    #[test]
    fn validation_rejects_ragged_arity() {
        let mut batch = vec![series(1, &[1, 1])];
        batch.push(TrainingSeries {
            true_outcome: 1,
            steps: vec![TrainingStep {
                quality_factors: vec![0.5],
                outcome: 1,
            }],
        });
        assert!(validate_series(&batch).is_err());
    }

    #[test]
    fn flatten_produces_one_row_per_step() {
        let batch = vec![series(1, &[1, 2]), series(3, &[3])];
        let rows = flatten_stateless(&batch);
        assert_eq!(rows.len(), 3);
        assert!(!rows[0].1);
        assert!(rows[1].1);
        assert!(!rows[2].1);
    }
}
