//! Split-conformal quality impact model: the first **non-tree** backend
//! behind the [`QimBackend`](crate::calibration::QimBackend) seam.
//!
//! Split (inductive) conformal prediction, MAPIE-style: a simple base
//! scorer `μ̂(x)` is fit on the *training* split, a one-sided
//! nonconformity quantile `q̂` is calibrated on the held-out *calibration*
//! split, and the served bound is `clamp(μ̂(x) + q̂, 0, 1)`. By
//! exchangeability of the calibration and test draws, the bound covers the
//! realized failure indicator — `y ≤ μ̂(x) + q̂` — with probability at
//! least the configured confidence `1 − α`, **without any distributional
//! assumption** on the quality factors. This is the distribution-free
//! counterpart to the per-leaf Clopper–Pearson guarantee of the tree
//! backends, and the head-to-head the `conformal_head_to_head` experiment
//! runs.
//!
//! Everything is deterministic and integer-grid shaped like the rest of
//! the codebase:
//!
//! * the base scorer is a fixed per-feature **histogram regressor** (no
//!   randomness, no iterative fitting): each feature axis is cut into
//!   `bins` equal-width cells over the training range, each cell stores
//!   its integer failure/total counts, and `μ̂(x)` is the mean of the
//!   per-feature cell rates (`NaN` features and empty cells fall back to
//!   the global training failure rate);
//! * the conformal rank `k = ⌈(n+1)·confidence⌉` is computed in **exact
//!   integer arithmetic on the 2⁻⁵³ certainty grid**
//!   ([`CERTAINTY_UNIT_ONE`]) — no float comparison decides which order
//!   statistic is served;
//! * nonconformity ties are resolved by `f64::total_cmp` (a total order),
//!   so the sorted score vector — and therefore `q̂` — is bit-identical
//!   across runs and thread budgets.
//!
//! The model is **leafless**: it routes nothing and keeps no per-leaf
//! sample counts, so its calibration-support introspection reports
//! [`RouteSupport::Unsupported`](crate::calibration::RouteSupport) and the
//! adaptive layer's drift split degrades to an explicit
//! [`DriftSignal::SupportUnavailable`](crate::adaptive::DriftSignal)
//! instead of fabricating a support figure.

use crate::buffer::CERTAINTY_UNIT_ONE;
use crate::calibration::{CalibrationOptions, ServingScratch};
use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the split-conformal backend (the base scorer's
/// shape; the confidence level comes from the shared
/// [`CalibrationOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConformalOptions {
    /// Equal-width histogram cells per feature axis of the base scorer.
    pub bins: usize,
}

impl Default for ConformalOptions {
    fn default() -> Self {
        ConformalOptions { bins: 16 }
    }
}

impl ConformalOptions {
    /// Checks the options are usable before calibration starts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when `bins` is zero or
    /// implausibly large (> 65 536 cells per axis).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.bins == 0 || self.bins > 65_536 {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "conformal options: `bins` must be between 1 and 65536, got {}",
                    self.bins
                ),
            });
        }
        Ok(())
    }
}

/// A split-conformal quality impact model after calibration: histogram
/// base scorer + one-sided nonconformity quantile shift.
///
/// Two representations of the scorer's rate table are kept, mirroring the
/// pointer-vs-flat split of the tree backends:
///
/// * `bin_rates` — the nested per-feature table, the transparent form the
///   reference path reads;
/// * `flat_rates` — the same rates lowered row-major
///   (`feature · bins + cell`), the dense form the serving path reads.
///
/// [`ConformalQim::validate`] checks the lowering bitwise, so a persisted
/// artifact cannot desynchronize the two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformalQim {
    options: CalibrationOptions,
    conformal: ConformalOptions,
    n_features: usize,
    /// Per-feature lower edge of the training range (`0.0` on a feature
    /// with no finite training value).
    feature_lo: Vec<f64>,
    /// Per-feature upper edge of the training range.
    feature_hi: Vec<f64>,
    /// Per-feature per-cell failure rates — the reference form.
    bin_rates: Vec<Vec<f64>>,
    /// `bin_rates` lowered row-major (`feature · bins + cell`) — the
    /// serving form.
    flat_rates: Vec<f64>,
    /// Training failure rate: the fallback for `NaN` features and empty
    /// cells.
    global_rate: f64,
    /// The calibrated one-sided nonconformity quantile `q̂` (the
    /// `⌈(n+1)·confidence⌉`-th smallest score, `1.0` when the calibration
    /// split is too small for the requested confidence).
    quantile_shift: f64,
    /// Number of calibration samples the quantile was taken over.
    calibration_size: u64,
    /// The smallest bound actually served over the calibration split.
    min_served_bound: f64,
}

/// The deterministic cell index of value `x` on an axis with range
/// `[lo, hi]` cut into `bins` equal-width cells; `None` routes to the
/// global-rate fallback (`NaN`). Out-of-range values clamp to the edge
/// cells, and a degenerate range puts everything in cell 0.
fn cell_index(lo: f64, hi: f64, bins: usize, x: f64) -> Option<usize> {
    if x.is_nan() {
        return None;
    }
    if hi <= lo {
        return Some(0);
    }
    let t = (x - lo) / (hi - lo) * bins as f64;
    if t <= 0.0 {
        Some(0)
    } else if t >= bins as f64 {
        Some(bins - 1)
    } else {
        Some(t as usize)
    }
}

/// The conformal rank `k = ⌈(n+1)·confidence⌉`, computed in exact integer
/// arithmetic on the 2⁻⁵³ certainty grid: `confidence` is snapped to
/// `round(confidence · 2⁵³)` grid units once, and the ceiling division is
/// integer — no float comparison decides which order statistic is served.
fn conformal_rank(n: usize, confidence: f64) -> u128 {
    let confidence_units = (confidence * CERTAINTY_UNIT_ONE as f64).round() as u128;
    ((n as u128 + 1) * confidence_units).div_ceil(CERTAINTY_UNIT_ONE)
}

impl ConformalQim {
    /// Fits the histogram base scorer on `train`, then calibrates the
    /// one-sided nonconformity quantile on `calib` (both yield
    /// `(features, failed)` pairs), at the confidence level carried by
    /// `options`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if either option set is invalid, either split
    /// is empty, or rows disagree on feature arity.
    pub fn calibrate(
        train: &[(Vec<f64>, bool)],
        calib: &[(Vec<f64>, bool)],
        options: CalibrationOptions,
        conformal: ConformalOptions,
    ) -> Result<Self, CoreError> {
        options.validate()?;
        conformal.validate()?;
        let Some((first, _)) = train.first() else {
            return Err(CoreError::InvalidInput {
                reason: "conformal training set is empty".into(),
            });
        };
        if calib.is_empty() {
            return Err(CoreError::InvalidInput {
                reason: "calibration set is empty".into(),
            });
        }
        let n_features = first.len();
        if n_features == 0 {
            return Err(CoreError::InvalidInput {
                reason: "conformal training rows carry no features".into(),
            });
        }
        for (row, _) in train.iter().chain(calib) {
            if row.len() != n_features {
                return Err(CoreError::FeatureArityMismatch {
                    expected: n_features,
                    actual: row.len(),
                });
            }
        }

        // 1. Base scorer: per-feature training range + integer cell counts.
        let bins = conformal.bins;
        let mut feature_lo = vec![f64::INFINITY; n_features];
        let mut feature_hi = vec![f64::NEG_INFINITY; n_features];
        for (row, _) in train {
            for (j, &x) in row.iter().enumerate() {
                if x.is_finite() {
                    feature_lo[j] = feature_lo[j].min(x);
                    feature_hi[j] = feature_hi[j].max(x);
                }
            }
        }
        for j in 0..n_features {
            if !feature_lo[j].is_finite() || !feature_hi[j].is_finite() {
                feature_lo[j] = 0.0;
                feature_hi[j] = 0.0;
            }
        }
        let mut cell_failures = vec![vec![0u64; bins]; n_features];
        let mut cell_totals = vec![vec![0u64; bins]; n_features];
        let mut train_failures = 0u64;
        for (row, failed) in train {
            if *failed {
                train_failures += 1;
            }
            for (j, &x) in row.iter().enumerate() {
                if let Some(cell) = cell_index(feature_lo[j], feature_hi[j], bins, x) {
                    cell_totals[j][cell] += 1;
                    if *failed {
                        cell_failures[j][cell] += 1;
                    }
                }
            }
        }
        let global_rate = train_failures as f64 / train.len() as f64;
        let bin_rates: Vec<Vec<f64>> = cell_failures
            .iter()
            .zip(&cell_totals)
            .map(|(failures, totals)| {
                failures
                    .iter()
                    .zip(totals)
                    .map(|(&f, &t)| {
                        if t == 0 {
                            global_rate
                        } else {
                            f as f64 / t as f64
                        }
                    })
                    .collect()
            })
            .collect();
        let flat_rates: Vec<f64> = bin_rates.iter().flatten().copied().collect();

        let mut qim = ConformalQim {
            options,
            conformal,
            n_features,
            feature_lo,
            feature_hi,
            bin_rates,
            flat_rates,
            global_rate,
            quantile_shift: 0.0,
            calibration_size: calib.len() as u64,
            min_served_bound: 1.0,
        };

        // 2. One-sided nonconformity scores on the calibration split:
        // s_i = y_i − μ̂(x_i), sorted under the f64 total order.
        let mut scores: Vec<f64> = calib
            .iter()
            .map(|(row, failed)| f64::from(u8::from(*failed)) - qim.base_score_flat(row))
            .collect();
        scores.sort_by(f64::total_cmp);
        let rank = conformal_rank(scores.len(), options.confidence);
        qim.quantile_shift = if rank > scores.len() as u128 {
            // Too few calibration samples for the requested confidence: the
            // only distribution-free bound is the vacuous one.
            1.0
        } else {
            scores[rank as usize - 1]
        };

        // 3. The attainable serving floor, as for the forest backend: the
        // smallest bound any calibration sample actually receives.
        let mut min_served = 1.0f64;
        for (row, _) in calib {
            min_served = min_served.min(qim.uncertainty(row)?);
        }
        qim.min_served_bound = min_served;
        Ok(qim)
    }

    fn check_arity(&self, features: &[f64]) -> Result<(), CoreError> {
        if features.len() != self.n_features {
            return Err(CoreError::FeatureArityMismatch {
                expected: self.n_features,
                actual: features.len(),
            });
        }
        Ok(())
    }

    /// The base scorer over the dense row-major rate table (serving form).
    fn base_score_flat(&self, features: &[f64]) -> f64 {
        let bins = self.conformal.bins;
        let mut sum = 0.0;
        for (j, &x) in features.iter().enumerate() {
            sum += match cell_index(self.feature_lo[j], self.feature_hi[j], bins, x) {
                Some(cell) => self.flat_rates[j * bins + cell],
                None => self.global_rate,
            };
        }
        sum / self.n_features as f64
    }

    /// The base scorer over the nested per-feature table (reference form);
    /// same left-to-right summation order as the serving form, so the two
    /// agree bitwise.
    fn base_score_reference(&self, features: &[f64]) -> f64 {
        let bins = self.conformal.bins;
        let mut sum = 0.0;
        for (j, &x) in features.iter().enumerate() {
            sum += match cell_index(self.feature_lo[j], self.feature_hi[j], bins, x) {
                Some(cell) => self.bin_rates[j][cell],
                None => self.global_rate,
            };
        }
        sum / self.n_features as f64
    }

    /// Distribution-free dependable uncertainty for a feature vector:
    /// `clamp(μ̂(x) + q̂, 0, 1)` over the dense rate table — a handful of
    /// array indexes, no routing, no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureArityMismatch`] on the wrong arity.
    pub fn uncertainty(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.check_arity(features)?;
        Ok((self.base_score_flat(features) + self.quantile_shift).clamp(0.0, 1.0))
    }

    /// Batched [`ConformalQim::uncertainty`]: one bound per row appended
    /// to `out` in input order, bit-identical to the per-sample form for
    /// every thread budget. The lookup is a few table indexes per row —
    /// there is no traversal to fan out — so the `threads` budget and the
    /// routing scratch are accepted for seam-contract parity and left
    /// unused.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature-arity mismatch of **any** row;
    /// `out` is untouched on error.
    pub fn uncertainty_batch_into<R>(
        &self,
        _threads: usize,
        rows: &[R],
        _scratch: &mut ServingScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CoreError>
    where
        R: AsRef<[f64]> + Sync,
    {
        for row in rows {
            self.check_arity(row.as_ref())?;
        }
        out.extend(
            rows.iter().map(|row| {
                (self.base_score_flat(row.as_ref()) + self.quantile_shift).clamp(0.0, 1.0)
            }),
        );
        Ok(())
    }

    /// Reference implementation of [`ConformalQim::uncertainty`] over the
    /// nested rate table. Kept for bit-identity verification — not a
    /// serving path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureArityMismatch`] on the wrong arity.
    pub fn uncertainty_reference(&self, features: &[f64]) -> Result<f64, CoreError> {
        self.check_arity(features)?;
        Ok((self.base_score_reference(features) + self.quantile_shift).clamp(0.0, 1.0))
    }

    /// Number of features the scorer reads.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Calibration options used (the confidence level `1 − α`).
    pub fn options(&self) -> CalibrationOptions {
        self.options
    }

    /// Conformal hyper-parameters used (the scorer shape).
    pub fn conformal_options(&self) -> ConformalOptions {
        self.conformal
    }

    /// The calibrated one-sided nonconformity quantile `q̂`.
    pub fn quantile_shift(&self) -> f64 {
        self.quantile_shift
    }

    /// Training failure rate — the scorer fallback for `NaN` features and
    /// empty histogram cells.
    pub fn global_rate(&self) -> f64 {
        self.global_rate
    }

    /// Number of calibration samples the quantile was taken over.
    pub fn calibration_size(&self) -> u64 {
        self.calibration_size
    }

    /// The smallest bound the model actually served over the calibration
    /// split — the attainability contract the tree backends give.
    pub fn min_uncertainty(&self) -> f64 {
        self.min_served_bound
    }

    /// Checks the internal consistency of the two rate-table
    /// representations and every stored statistic, so a truncated or
    /// hand-edited artifact fails with a clean error instead of serving
    /// garbage. Freshly calibrated models satisfy this by construction;
    /// the persistence layer calls it on every load.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.options.validate()?;
        self.conformal.validate()?;
        let bins = self.conformal.bins;
        if self.n_features == 0 {
            return Err(CoreError::InvalidInput {
                reason: "conformal QIM: zero features".into(),
            });
        }
        if self.feature_lo.len() != self.n_features
            || self.feature_hi.len() != self.n_features
            || self.bin_rates.len() != self.n_features
        {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "conformal QIM: {} features but {} lower edges, {} upper edges, \
                     {} rate rows",
                    self.n_features,
                    self.feature_lo.len(),
                    self.feature_hi.len(),
                    self.bin_rates.len()
                ),
            });
        }
        for j in 0..self.n_features {
            if !self.feature_lo[j].is_finite()
                || !self.feature_hi[j].is_finite()
                || self.feature_lo[j] > self.feature_hi[j]
            {
                return Err(CoreError::InvalidInput {
                    reason: format!(
                        "conformal QIM: feature {j} has an invalid range [{}, {}]",
                        self.feature_lo[j], self.feature_hi[j]
                    ),
                });
            }
            if self.bin_rates[j].len() != bins {
                return Err(CoreError::InvalidInput {
                    reason: format!(
                        "conformal QIM: feature {j} carries {} cells for {} bins",
                        self.bin_rates[j].len(),
                        bins
                    ),
                });
            }
            for (cell, &rate) in self.bin_rates[j].iter().enumerate() {
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    return Err(CoreError::InvalidInput {
                        reason: format!(
                            "conformal QIM: rate {rate} at feature {j} cell {cell} lies \
                             outside [0, 1]"
                        ),
                    });
                }
            }
        }
        if self.flat_rates.len() != self.n_features * bins {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "conformal QIM: {} flat rates for {} features x {} bins",
                    self.flat_rates.len(),
                    self.n_features,
                    bins
                ),
            });
        }
        for (j, row) in self.bin_rates.iter().enumerate() {
            for (cell, &rate) in row.iter().enumerate() {
                if self.flat_rates[j * bins + cell].to_bits() != rate.to_bits() {
                    return Err(CoreError::InvalidInput {
                        reason: format!(
                            "conformal QIM: flat rate table diverges at feature {j} cell {cell}"
                        ),
                    });
                }
            }
        }
        if !self.global_rate.is_finite() || !(0.0..=1.0).contains(&self.global_rate) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "conformal QIM: global rate {} lies outside [0, 1]",
                    self.global_rate
                ),
            });
        }
        if !self.quantile_shift.is_finite() || !(-1.0..=1.0).contains(&self.quantile_shift) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "conformal QIM: quantile shift {} lies outside [-1, 1]",
                    self.quantile_shift
                ),
            });
        }
        if self.calibration_size == 0 {
            return Err(CoreError::InvalidInput {
                reason: "conformal QIM: calibrated on zero samples".into(),
            });
        }
        if !self.min_served_bound.is_finite() || !(0.0..=1.0).contains(&self.min_served_bound) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "conformal QIM: served minimum bound {} lies outside [0, 1]",
                    self.min_served_bound
                ),
            });
        }
        // Every served value is clamp(μ̂ + q̂) with μ̂ >= 0, and clamp is
        // monotone, so clamp(q̂) is a hard floor on every servable value.
        if self.min_served_bound < self.quantile_shift.clamp(0.0, 1.0) {
            return Err(CoreError::InvalidInput {
                reason: format!(
                    "conformal QIM: served minimum bound {} undercuts the quantile floor {}",
                    self.min_served_bound,
                    self.quantile_shift.clamp(0.0, 1.0)
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world with one feature: failure iff x > 0.7, plus sparse
    /// label noise so the scorer sees both classes in most cells.
    fn samples(n: usize, offset: f64) -> Vec<(Vec<f64>, bool)> {
        (0..n)
            .map(|i| {
                let x = (i as f64 + offset) / n as f64;
                let noisy = i % 97 == 0;
                (vec![x], (x > 0.7) ^ noisy)
            })
            .collect()
    }

    fn fitted(confidence: f64) -> ConformalQim {
        ConformalQim::calibrate(
            &samples(2000, 0.0),
            &samples(1500, 0.5),
            CalibrationOptions {
                confidence,
                ..Default::default()
            },
            ConformalOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn conformal_rank_matches_the_textbook_ceiling() {
        // Exactly-representable confidences reproduce ⌈(n+1)·c⌉ verbatim.
        assert_eq!(conformal_rank(9, 0.75), 8); // ⌈10·0.75⌉
        assert_eq!(conformal_rank(10, 0.75), 9); // ⌈8.25⌉
        assert_eq!(conformal_rank(7, 0.5), 4); // ⌈8·0.5⌉
                                               // 0.9 is not exactly representable: its f64 value sits just above
                                               // the rational 9/10, so ranks where (n+1)·9/10 lands on an integer
                                               // round up one step — strictly conservative (never undercovers).
        assert_eq!(conformal_rank(9, 0.9), 10);
        assert_eq!(conformal_rank(10, 0.9), 10);
        assert_eq!(conformal_rank(99, 0.9), 91);
        // α = 0.001 needs n ≥ 999 before the rank is attainable.
        assert_eq!(conformal_rank(998, 0.999), 999);
        assert_eq!(conformal_rank(999, 0.999), 999);
    }

    #[test]
    fn cell_index_is_clamped_and_nan_falls_back() {
        assert_eq!(cell_index(0.0, 1.0, 4, -3.0), Some(0));
        assert_eq!(cell_index(0.0, 1.0, 4, 0.49), Some(1));
        assert_eq!(cell_index(0.0, 1.0, 4, 7.0), Some(3));
        assert_eq!(cell_index(0.0, 1.0, 4, f64::NAN), None);
        // Degenerate range: everything lands in cell 0.
        assert_eq!(cell_index(0.5, 0.5, 4, 0.5), Some(0));
        assert_eq!(cell_index(0.5, 0.5, 4, 9.0), Some(0));
    }

    #[test]
    fn coverage_holds_on_an_exchangeable_split() {
        let qim = fitted(0.9);
        qim.validate().unwrap();
        // Empirical coverage of the one-sided bound on a fresh split drawn
        // from the same grid: y <= served(x).
        let test = samples(1100, 0.25);
        let covered = test
            .iter()
            .filter(|(row, failed)| {
                let bound = qim.uncertainty(row).unwrap();
                !*failed || bound >= 1.0 - 1e-12
            })
            .count();
        let coverage = covered as f64 / test.len() as f64;
        assert!(
            coverage >= 0.9,
            "empirical coverage {coverage} below the nominal 0.9"
        );
    }

    #[test]
    fn bound_varies_with_the_features() {
        let qim = fitted(0.9);
        let low = qim.uncertainty(&[0.1]).unwrap();
        let high = qim.uncertainty(&[0.95]).unwrap();
        assert!(high > low, "low-risk {low} vs high-risk {high}");
        assert!(qim.min_uncertainty() <= low);
    }

    #[test]
    fn serving_matches_reference_bitwise_including_nan() {
        let qim = fitted(0.95);
        let mut scratch = ServingScratch::new();
        let queries: Vec<[f64; 1]> = (0..64)
            .map(|i| {
                if i % 7 == 0 {
                    [f64::NAN]
                } else {
                    [i as f64 / 63.0]
                }
            })
            .collect();
        let mut batched = vec![9.0];
        qim.uncertainty_batch_into(4, &queries, &mut scratch, &mut batched)
            .unwrap();
        assert_eq!(batched[0], 9.0);
        for (q, &got) in queries.iter().zip(&batched[1..]) {
            assert_eq!(got.to_bits(), qim.uncertainty(q).unwrap().to_bits());
            assert_eq!(
                got.to_bits(),
                qim.uncertainty_reference(q).unwrap().to_bits()
            );
        }
        // NaN falls back to the global rate, not to a poisoned estimate.
        assert!(qim.uncertainty(&[f64::NAN]).unwrap().is_finite());
    }

    #[test]
    fn small_calibration_serves_the_vacuous_bound() {
        // 100 calibration samples cannot support confidence 0.999: the
        // only distribution-free bound is 1 everywhere.
        let qim = ConformalQim::calibrate(
            &samples(400, 0.0),
            &samples(100, 0.5),
            CalibrationOptions::default(),
            ConformalOptions::default(),
        )
        .unwrap();
        assert_eq!(qim.quantile_shift(), 1.0);
        assert_eq!(qim.uncertainty(&[0.1]).unwrap(), 1.0);
        qim.validate().unwrap();
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = fitted(0.9);
        let b = fitted(0.9);
        assert_eq!(a, b);
        // A higher confidence can only push the quantile (weakly) up.
        let c = fitted(0.99);
        assert!(c.quantile_shift() >= a.quantile_shift());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let train = samples(400, 0.0);
        let calib = samples(400, 0.5);
        // Empty splits.
        assert!(ConformalQim::calibrate(
            &[],
            &calib,
            CalibrationOptions::default(),
            ConformalOptions::default()
        )
        .is_err());
        assert!(ConformalQim::calibrate(
            &train,
            &[],
            CalibrationOptions::default(),
            ConformalOptions::default()
        )
        .is_err());
        // Bad options, naming the offending field.
        let err = ConformalQim::calibrate(
            &train,
            &calib,
            CalibrationOptions::default(),
            ConformalOptions { bins: 0 },
        )
        .unwrap_err();
        assert!(err.to_string().contains("`bins`"), "{err}");
        let err = ConformalQim::calibrate(
            &train,
            &calib,
            CalibrationOptions {
                confidence: 1.5,
                ..Default::default()
            },
            ConformalOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("`confidence`"), "{err}");
        // Ragged arity across the splits.
        let mut ragged = train.clone();
        ragged.push((vec![0.1, 0.2], false));
        assert!(matches!(
            ConformalQim::calibrate(
                &ragged,
                &calib,
                CalibrationOptions::default(),
                ConformalOptions::default()
            ),
            Err(CoreError::FeatureArityMismatch { .. })
        ));
        // Arity mismatch at query time; batched form leaves `out` intact.
        let qim = fitted(0.9);
        assert!(qim.uncertainty(&[0.1, 0.2]).is_err());
        let mut out = vec![0.5];
        let mut scratch = ServingScratch::new();
        assert!(qim
            .uncertainty_batch_into(2, &[[0.1, 0.2]], &mut scratch, &mut out)
            .is_err());
        assert_eq!(out, vec![0.5], "failed batches must not leak output");
    }

    #[test]
    fn validate_catches_tampering() {
        let qim = fitted(0.9);
        // Desynchronized flat table.
        let mut tampered = qim.clone();
        tampered.flat_rates[3] += 0.25;
        let err = tampered.validate().unwrap_err();
        assert!(err.to_string().contains("flat rate table"), "{err}");
        // Out-of-range rate.
        let mut tampered = qim.clone();
        tampered.bin_rates[0][0] = 1.5;
        assert!(tampered.validate().is_err());
        // Undercutting served minimum. 0.9995 pushes the rank past the
        // 1500-sample calibration split, so the shift is vacuous (1.0).
        let mut tampered = fitted(0.9995);
        assert_eq!(tampered.quantile_shift, 1.0);
        tampered.min_served_bound = 0.5;
        let err = tampered.validate().unwrap_err();
        assert!(err.to_string().contains("undercuts"), "{err}");
        // Quantile shift outside [-1, 1].
        let mut tampered = qim.clone();
        tampered.quantile_shift = f64::NAN;
        assert!(tampered.validate().is_err());
    }
}
