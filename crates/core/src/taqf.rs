//! Timeseries-aware quality factors taQF1–taQF4 (paper Section III).
//!
//! All four factors are derived from the timeseries buffer and the current
//! fused outcome; they are deliberately use-case agnostic ("independent of
//! the specific use case of TSR"):
//!
//! * **taQF1 — ratio**: fraction of buffered outcomes agreeing with the
//!   current fused outcome,
//! * **taQF2 — length**: the series length `i + 1` so far,
//! * **taQF3 — size**: number of distinct outcomes so far,
//! * **taQF4 — cumulative certainty**: sum of certainties `1 − u_j` of the
//!   steps whose outcome agrees with the fused outcome (others count 0).
//!
//! # Window semantics
//!
//! Under an unbounded buffer (the paper's setting) all four factors see the
//! whole series. Under a **bounded** buffer the factors deliberately split:
//! taQF1/taQF3/taQF4 are computed over the sliding window (stale evidence
//! ages out), while **taQF2 stays the lifetime series length `i + 1`** via
//! the buffer's eviction-surviving step counter — a window must cap memory
//! and cost, not rewind how long the object has been tracked.
//!
//! # Cost model
//!
//! [`TaqfVector::compute`] reads the buffer's running aggregates — O(1) in
//! the window length (linear only in the distinct classes present). The
//! O(window) scan is kept as [`TaqfVector::compute_reference`] and the two
//! are asserted bit-identical by the proptest and determinism suites.

use crate::buffer::{certainty_units_to_f64, TimeseriesBuffer};
use serde::{Deserialize, Serialize};

/// Identifier of one timeseries-aware quality factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaqfKind {
    /// taQF1: agreement ratio with the fused outcome.
    Ratio,
    /// taQF2: series length so far.
    Length,
    /// taQF3: number of unique outcomes so far.
    UniqueOutcomes,
    /// taQF4: cumulative certainty of agreeing steps.
    CumulativeCertainty,
}

impl TaqfKind {
    /// All factors in taQF1..taQF4 order.
    pub const ALL: [TaqfKind; 4] = [
        TaqfKind::Ratio,
        TaqfKind::Length,
        TaqfKind::UniqueOutcomes,
        TaqfKind::CumulativeCertainty,
    ];

    /// Stable snake_case feature/column name.
    pub fn name(self) -> &'static str {
        match self {
            TaqfKind::Ratio => "taqf_ratio",
            TaqfKind::Length => "taqf_length",
            TaqfKind::UniqueOutcomes => "taqf_unique_outcomes",
            TaqfKind::CumulativeCertainty => "taqf_cumulative_certainty",
        }
    }

    /// The paper's short label ("ratio", "length", "size", "certainty").
    pub fn paper_label(self) -> &'static str {
        match self {
            TaqfKind::Ratio => "ratio",
            TaqfKind::Length => "length",
            TaqfKind::UniqueOutcomes => "size",
            TaqfKind::CumulativeCertainty => "certainty",
        }
    }
}

impl std::fmt::Display for TaqfKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_label())
    }
}

/// The four factor values for one timestep.
///
/// # Window semantics
///
/// Under an unbounded buffer (the paper's setting) every factor sees the
/// whole series. Under a **bounded** (sliding-window) buffer the factors
/// deliberately split — a window caps memory and per-step cost, but must
/// not rewind how long the object has been tracked:
///
/// | Factor | Field | Meaning | Bounded-buffer scope |
/// |---|---|---|---|
/// | taQF1 | [`ratio`](TaqfVector::ratio) | agreement with the fused outcome | window |
/// | taQF2 | [`length`](TaqfVector::length) | series length `i + 1` | **lifetime** ([`TimeseriesBuffer::total_steps`], survives eviction) |
/// | taQF3 | [`unique_outcomes`](TaqfVector::unique_outcomes) | distinct outcomes | window |
/// | taQF4 | [`cumulative_certainty`](TaqfVector::cumulative_certainty) | cumulative agreeing certainty | window |
///
/// The majority vote that produces the fused outcome likewise fuses over
/// the window. taQF2 once reported the window size on a full buffer; it
/// now reports the paper's lifetime series length via the buffer's
/// eviction-surviving step counter
/// ([`crate::tauw::TauwStep::series_length`] follows the same
/// convention).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaqfVector {
    /// taQF1 in `[0, 1]`.
    pub ratio: f64,
    /// taQF2 (≥ 1).
    pub length: f64,
    /// taQF3 (≥ 1).
    pub unique_outcomes: f64,
    /// taQF4 (≥ 0, ≤ length).
    pub cumulative_certainty: f64,
}

impl TaqfVector {
    /// Computes all four factors from the buffer and the current fused
    /// outcome. Returns `None` for an empty buffer (no series context yet).
    ///
    /// # Examples
    ///
    /// ```
    /// use tauw_core::{buffer::TimeseriesBuffer, taqf::TaqfVector};
    ///
    /// let mut buf = TimeseriesBuffer::new();
    /// buf.push(7, 0.1); // agrees with the fused outcome below
    /// buf.push(3, 0.2); // disagrees
    /// buf.push(7, 0.0); // agrees
    /// let taqf = TaqfVector::compute(&buf, 7).unwrap();
    /// assert!((taqf.ratio - 2.0 / 3.0).abs() < 1e-12);
    /// assert_eq!(taqf.length, 3.0);
    /// assert_eq!(taqf.unique_outcomes, 2.0);
    /// assert!((taqf.cumulative_certainty - 1.9).abs() < 1e-12);
    /// ```
    pub fn compute(buffer: &TimeseriesBuffer, fused_outcome: u32) -> Option<TaqfVector> {
        if buffer.is_empty() {
            return None;
        }
        // O(1) in the window length: every term is a running aggregate the
        // buffer maintains on push/evict/clear.
        let window = buffer.len() as f64;
        Some(TaqfVector {
            ratio: buffer.agreement_count(fused_outcome) as f64 / window,
            length: buffer.total_steps() as f64,
            unique_outcomes: buffer.unique_outcomes() as f64,
            cumulative_certainty: certainty_units_to_f64(buffer.certainty_units_sum(fused_outcome)),
        })
    }

    /// Full-recompute reference for [`TaqfVector::compute`]: an O(window)
    /// scan over the buffered entries, kept aboard (mirroring the
    /// flat-vs-pointer tree pattern) so the incremental aggregates can be
    /// verified. Certainty accumulation uses the same exact 2⁻⁵³-unit
    /// integer arithmetic, so the result is **bit-identical** to the O(1)
    /// path for every push/evict/clear history.
    pub fn compute_reference(buffer: &TimeseriesBuffer, fused_outcome: u32) -> Option<TaqfVector> {
        if buffer.is_empty() {
            return None;
        }
        let window = buffer.len() as f64;
        let mut agree = 0usize;
        let mut units: u128 = 0;
        let mut seen: Vec<u32> = Vec::new();
        for e in buffer.iter() {
            if e.outcome == fused_outcome {
                agree += 1;
                units += u128::from(e.certainty_units());
            }
            if !seen.contains(&e.outcome) {
                seen.push(e.outcome);
            }
        }
        Some(TaqfVector {
            ratio: agree as f64 / window,
            length: buffer.total_steps() as f64,
            unique_outcomes: seen.len() as f64,
            cumulative_certainty: certainty_units_to_f64(units),
        })
    }

    /// The factor value for one kind.
    pub fn get(&self, kind: TaqfKind) -> f64 {
        match kind {
            TaqfKind::Ratio => self.ratio,
            TaqfKind::Length => self.length,
            TaqfKind::UniqueOutcomes => self.unique_outcomes,
            TaqfKind::CumulativeCertainty => self.cumulative_certainty,
        }
    }
}

/// A subset of the four taQFs (bitmask), used by the RQ3 feature study and
/// to configure which factors a taQIM consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaqfSet(u8);

impl TaqfSet {
    /// The empty set (degenerates the taQIM to a stateless QIM over the
    /// current step's quality factors).
    pub const EMPTY: TaqfSet = TaqfSet(0);
    /// All four factors (the paper's full taUW).
    pub const FULL: TaqfSet = TaqfSet(0b1111);

    /// Builds a set from the given kinds.
    pub fn from_kinds(kinds: &[TaqfKind]) -> Self {
        let mut mask = 0u8;
        for k in kinds {
            mask |= 1 << Self::bit(*k);
        }
        TaqfSet(mask)
    }

    /// All 16 subsets (including empty), in mask order — the Fig. 7 sweep.
    pub fn all_subsets() -> impl Iterator<Item = TaqfSet> {
        (0u8..16).map(TaqfSet)
    }

    /// Whether the set contains a factor.
    pub fn contains(self, kind: TaqfKind) -> bool {
        self.0 & (1 << Self::bit(kind)) != 0
    }

    /// Number of factors in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The contained kinds in taQF1..taQF4 order.
    pub fn kinds(self) -> Vec<TaqfKind> {
        TaqfKind::ALL
            .iter()
            .copied()
            .filter(|k| self.contains(*k))
            .collect()
    }

    /// Extracts the selected factor values in [`TaqfSet::kinds`] order.
    pub fn select(self, v: &TaqfVector) -> Vec<f64> {
        self.kinds().into_iter().map(|k| v.get(k)).collect()
    }

    /// Human-readable label like `"{ratio, certainty}"`.
    pub fn label(self) -> String {
        if self.is_empty() {
            return "{}".to_string();
        }
        let names: Vec<&str> = self
            .kinds()
            .into_iter()
            .map(TaqfKind::paper_label)
            .collect();
        format!("{{{}}}", names.join(", "))
    }

    fn bit(kind: TaqfKind) -> u8 {
        match kind {
            TaqfKind::Ratio => 0,
            TaqfKind::Length => 1,
            TaqfKind::UniqueOutcomes => 2,
            TaqfKind::CumulativeCertainty => 3,
        }
    }
}

impl Default for TaqfSet {
    fn default() -> Self {
        TaqfSet::FULL
    }
}

impl std::fmt::Display for TaqfSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Experimental timeseries features beyond the paper's taQF1–4, for the
/// `extended_taqf` study (the paper closes RQ3 with "experiments on other
/// datasets are required to determine ... whether there is an overall best
/// set of timeseries-aware features" — these probe that direction on the
/// synthetic substrate).
pub mod extra {
    use crate::buffer::TimeseriesBuffer;

    /// Length of the current *trailing streak* of outcomes equal to the
    /// fused outcome (0 if the most recent outcome disagrees). Rationale: a
    /// long unbroken run of agreement is stronger evidence than the same
    /// agreement count scattered across the series.
    pub fn trailing_agreement_streak(buffer: &TimeseriesBuffer, fused_outcome: u32) -> f64 {
        buffer
            .iter()
            .rev()
            .take_while(|e| e.outcome == fused_outcome)
            .count() as f64
    }

    /// Exponentially recency-weighted agreement ratio with decay `lambda`
    /// (0 < lambda ≤ 1; 1 recovers taQF1). Rationale: under drifting
    /// conditions, recent agreement should count more than stale agreement.
    ///
    /// A NaN `lambda` is rejected and falls back to the unweighted ratio
    /// (`lambda = 1`) instead of propagating NaN through `clamp` (the one
    /// input that used to poison the result); other out-of-range values
    /// clamp into `[1e-6, 1]`. The weights are summed newest-first with a
    /// multiplicative decay, which makes the denominator *structurally*
    /// ≥ 1 — the newest step's weight is the first term, before any
    /// underflow can occur — rather than relying on `powf(0.0) == 1.0`
    /// somewhere mid-scan; the walk stops once the decayed weight
    /// underflows to zero, so long series with a small `lambda` no longer
    /// pay one `powf` per buffered step for entries that cannot move
    /// either sum.
    pub fn recency_weighted_ratio(
        buffer: &TimeseriesBuffer,
        fused_outcome: u32,
        lambda: f64,
    ) -> f64 {
        if buffer.is_empty() {
            return 0.0;
        }
        let lambda = if lambda.is_nan() {
            1.0
        } else {
            lambda.clamp(1e-6, 1.0)
        };
        let mut weighted_agree = 0.0;
        let mut total_weight = 0.0;
        let mut w = 1.0;
        for e in buffer.iter().rev() {
            if w == 0.0 {
                // All remaining (older) weights underflowed: they cannot
                // move either sum.
                break;
            }
            total_weight += w;
            if e.outcome == fused_outcome {
                weighted_agree += w;
            }
            w *= lambda;
        }
        debug_assert!(total_weight >= 1.0, "the newest step always weighs 1");
        weighted_agree / total_weight
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn buffer(entries: &[(u32, f64)]) -> TimeseriesBuffer {
            let mut b = TimeseriesBuffer::new();
            for &(o, u) in entries {
                b.push(o, u);
            }
            b
        }

        #[test]
        fn streak_counts_trailing_agreement_only() {
            let b = buffer(&[(1, 0.1), (1, 0.1), (2, 0.1), (1, 0.1), (1, 0.1)]);
            assert_eq!(trailing_agreement_streak(&b, 1), 2.0);
            assert_eq!(trailing_agreement_streak(&b, 2), 0.0);
        }

        #[test]
        fn streak_spans_whole_series_when_unanimous() {
            let b = buffer(&[(7, 0.2); 6]);
            assert_eq!(trailing_agreement_streak(&b, 7), 6.0);
        }

        #[test]
        fn streak_of_empty_buffer_is_zero() {
            assert_eq!(trailing_agreement_streak(&TimeseriesBuffer::new(), 1), 0.0);
        }

        #[test]
        fn recency_weighting_with_lambda_one_is_plain_ratio() {
            let b = buffer(&[(1, 0.1), (2, 0.1), (1, 0.1)]);
            let r = recency_weighted_ratio(&b, 1, 1.0);
            assert!((r - 2.0 / 3.0).abs() < 1e-12);
        }

        #[test]
        fn recent_agreement_outweighs_stale_agreement() {
            // Agreement only at the start vs only at the end.
            let stale = buffer(&[(1, 0.1), (1, 0.1), (2, 0.1), (2, 0.1)]);
            let fresh = buffer(&[(2, 0.1), (2, 0.1), (1, 0.1), (1, 0.1)]);
            let lambda = 0.5;
            assert!(
                recency_weighted_ratio(&fresh, 1, lambda)
                    > recency_weighted_ratio(&stale, 1, lambda)
            );
        }

        #[test]
        fn recency_ratio_survives_weight_underflow_on_long_series() {
            // With a small lambda and a long series, all but the newest few
            // weights underflow to zero. The newest-first scan keeps the
            // denominator structurally >= 1 and cuts off once the weight
            // hits zero, so the ratio stays finite, exact, and cheap.
            let mut b = TimeseriesBuffer::new();
            for i in 0..100_000u32 {
                b.push(if i % 3 == 0 { 1 } else { 2 }, 0.1);
            }
            for lambda in [1e-6, 1e-3, 0.5, f64::MIN_POSITIVE, 0.0, -4.0] {
                for class in [1, 2, 9] {
                    let r = recency_weighted_ratio(&b, class, lambda);
                    assert!(r.is_finite(), "lambda={lambda} class={class}: {r}");
                    assert!((0.0..=1.0).contains(&r));
                }
            }
            // At lambda = 1e-6 only the most recent steps carry weight: the
            // last outcome dominates the ratio.
            let last = b.iter().next_back().unwrap().outcome;
            assert!(recency_weighted_ratio(&b, last, 1e-6) > 0.999_998);
        }

        #[test]
        fn nan_lambda_is_rejected_and_falls_back_to_the_plain_ratio() {
            let b = buffer(&[(1, 0.1), (2, 0.1), (1, 0.1)]);
            let nan = recency_weighted_ratio(&b, 1, f64::NAN);
            assert!(!nan.is_nan(), "NaN lambda must not poison the ratio");
            assert_eq!(nan, recency_weighted_ratio(&b, 1, 1.0));
            // Infinities clamp into range instead of propagating.
            assert!((0.0..=1.0).contains(&recency_weighted_ratio(&b, 1, f64::INFINITY)));
            assert!((0.0..=1.0).contains(&recency_weighted_ratio(&b, 1, f64::NEG_INFINITY)));
        }

        #[test]
        fn recency_ratio_stays_in_unit_interval() {
            let b = buffer(&[(1, 0.1), (2, 0.3), (3, 0.5), (1, 0.0)]);
            for lambda in [0.1, 0.5, 0.9, 1.0] {
                for class in [1, 2, 3, 9] {
                    let r = recency_weighted_ratio(&b, class, lambda);
                    assert!((0.0..=1.0).contains(&r));
                }
            }
            assert_eq!(
                recency_weighted_ratio(&TimeseriesBuffer::new(), 1, 0.5),
                0.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(entries: &[(u32, f64)]) -> TimeseriesBuffer {
        let mut b = TimeseriesBuffer::new();
        for &(o, u) in entries {
            b.push(o, u);
        }
        b
    }

    #[test]
    fn empty_buffer_has_no_taqf() {
        assert!(TaqfVector::compute(&TimeseriesBuffer::new(), 0).is_none());
    }

    #[test]
    fn single_agreeing_step() {
        let b = buffer(&[(4, 0.2)]);
        let t = TaqfVector::compute(&b, 4).unwrap();
        assert_eq!(t.ratio, 1.0);
        assert_eq!(t.length, 1.0);
        assert_eq!(t.unique_outcomes, 1.0);
        assert!((t.cumulative_certainty - 0.8).abs() < 1e-12);
    }

    #[test]
    fn disagreeing_steps_contribute_zero_certainty() {
        // Paper: "previous outcomes that disagree with the current fused
        // outcome are assumed to have a certainty of zero".
        let b = buffer(&[(1, 0.0), (2, 0.0), (2, 0.5)]);
        let t = TaqfVector::compute(&b, 2).unwrap();
        assert!((t.cumulative_certainty - 1.5).abs() < 1e-12);
        assert!((t.ratio - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unique_outcomes_tracks_variety() {
        let b = buffer(&[(1, 0.1), (2, 0.1), (3, 0.1), (1, 0.1)]);
        let t = TaqfVector::compute(&b, 1).unwrap();
        assert_eq!(t.unique_outcomes, 3.0);
        assert_eq!(t.length, 4.0);
    }

    #[test]
    fn incremental_compute_matches_reference_bitwise() {
        let mut bounded = TimeseriesBuffer::bounded(3);
        let mut unbounded = TimeseriesBuffer::new();
        for (i, &(o, u)) in [
            (1u32, 0.123),
            (2, 0.456),
            (1, 0.789),
            (3, 0.0),
            (1, 1.0),
            (2, 0.333),
        ]
        .iter()
        .enumerate()
        {
            for b in [&mut bounded, &mut unbounded] {
                b.push(o, u);
                for fused in [1u32, 2, 3, 9] {
                    let fast = TaqfVector::compute(b, fused).unwrap();
                    let slow = TaqfVector::compute_reference(b, fused).unwrap();
                    assert_eq!(fast.ratio.to_bits(), slow.ratio.to_bits(), "step {i}");
                    assert_eq!(fast.length.to_bits(), slow.length.to_bits(), "step {i}");
                    assert_eq!(
                        fast.unique_outcomes.to_bits(),
                        slow.unique_outcomes.to_bits(),
                        "step {i}"
                    );
                    assert_eq!(
                        fast.cumulative_certainty.to_bits(),
                        slow.cumulative_certainty.to_bits(),
                        "step {i}"
                    );
                }
            }
        }
        assert!(TaqfVector::compute_reference(&TimeseriesBuffer::new(), 0).is_none());
    }

    #[test]
    fn taqf2_survives_window_eviction() {
        // Regression: a bounded buffer used to report the window size as
        // taQF2; the paper's series length `i + 1` must keep growing.
        let mut b = TimeseriesBuffer::bounded(2);
        for i in 0..6u32 {
            b.push(7, 0.1 * f64::from(i % 3));
        }
        let t = TaqfVector::compute(&b, 7).unwrap();
        assert_eq!(t.length, 6.0, "lifetime length, not the window size");
        assert_eq!(t.ratio, 1.0, "ratio stays windowed");
        assert_eq!(t.unique_outcomes, 1.0);
        b.clear();
        b.push(7, 0.0);
        assert_eq!(TaqfVector::compute(&b, 7).unwrap().length, 1.0);
    }

    #[test]
    fn get_matches_fields() {
        let b = buffer(&[(1, 0.25), (1, 0.25)]);
        let t = TaqfVector::compute(&b, 1).unwrap();
        assert_eq!(t.get(TaqfKind::Ratio), t.ratio);
        assert_eq!(t.get(TaqfKind::Length), t.length);
        assert_eq!(t.get(TaqfKind::UniqueOutcomes), t.unique_outcomes);
        assert_eq!(t.get(TaqfKind::CumulativeCertainty), t.cumulative_certainty);
    }

    #[test]
    fn subsets_enumerate_sixteen() {
        let all: Vec<TaqfSet> = TaqfSet::all_subsets().collect();
        assert_eq!(all.len(), 16);
        assert_eq!(all[0], TaqfSet::EMPTY);
        assert_eq!(all[15], TaqfSet::FULL);
        // Sizes follow the binomial distribution 1,4,6,4,1.
        let mut by_size = [0usize; 5];
        for s in all {
            by_size[s.len()] += 1;
        }
        assert_eq!(by_size, [1, 4, 6, 4, 1]);
    }

    #[test]
    fn select_orders_by_kind() {
        let b = buffer(&[(1, 0.5), (2, 0.5)]);
        let t = TaqfVector::compute(&b, 1).unwrap();
        let set = TaqfSet::from_kinds(&[TaqfKind::CumulativeCertainty, TaqfKind::Ratio]);
        let selected = set.select(&t);
        assert_eq!(selected, vec![t.ratio, t.cumulative_certainty]);
        assert_eq!(
            set.kinds(),
            vec![TaqfKind::Ratio, TaqfKind::CumulativeCertainty]
        );
    }

    #[test]
    fn labels_read_like_the_paper() {
        let set = TaqfSet::from_kinds(&[TaqfKind::Ratio, TaqfKind::CumulativeCertainty]);
        assert_eq!(set.label(), "{ratio, certainty}");
        assert_eq!(TaqfSet::EMPTY.label(), "{}");
        assert_eq!(TaqfSet::FULL.label(), "{ratio, length, size, certainty}");
    }

    #[test]
    fn default_is_full() {
        assert_eq!(TaqfSet::default(), TaqfSet::FULL);
    }
}
