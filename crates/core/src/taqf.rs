//! Timeseries-aware quality factors taQF1–taQF4 (paper Section III).
//!
//! All four factors are derived from the timeseries buffer and the current
//! fused outcome; they are deliberately use-case agnostic ("independent of
//! the specific use case of TSR"):
//!
//! * **taQF1 — ratio**: fraction of buffered outcomes agreeing with the
//!   current fused outcome,
//! * **taQF2 — length**: the series length `i + 1` so far,
//! * **taQF3 — size**: number of distinct outcomes so far,
//! * **taQF4 — cumulative certainty**: sum of certainties `1 − u_j` of the
//!   steps whose outcome agrees with the fused outcome (others count 0).

use crate::buffer::TimeseriesBuffer;
use serde::{Deserialize, Serialize};

/// Identifier of one timeseries-aware quality factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaqfKind {
    /// taQF1: agreement ratio with the fused outcome.
    Ratio,
    /// taQF2: series length so far.
    Length,
    /// taQF3: number of unique outcomes so far.
    UniqueOutcomes,
    /// taQF4: cumulative certainty of agreeing steps.
    CumulativeCertainty,
}

impl TaqfKind {
    /// All factors in taQF1..taQF4 order.
    pub const ALL: [TaqfKind; 4] = [
        TaqfKind::Ratio,
        TaqfKind::Length,
        TaqfKind::UniqueOutcomes,
        TaqfKind::CumulativeCertainty,
    ];

    /// Stable snake_case feature/column name.
    pub fn name(self) -> &'static str {
        match self {
            TaqfKind::Ratio => "taqf_ratio",
            TaqfKind::Length => "taqf_length",
            TaqfKind::UniqueOutcomes => "taqf_unique_outcomes",
            TaqfKind::CumulativeCertainty => "taqf_cumulative_certainty",
        }
    }

    /// The paper's short label ("ratio", "length", "size", "certainty").
    pub fn paper_label(self) -> &'static str {
        match self {
            TaqfKind::Ratio => "ratio",
            TaqfKind::Length => "length",
            TaqfKind::UniqueOutcomes => "size",
            TaqfKind::CumulativeCertainty => "certainty",
        }
    }
}

impl std::fmt::Display for TaqfKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_label())
    }
}

/// The four factor values for one timestep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaqfVector {
    /// taQF1 in `[0, 1]`.
    pub ratio: f64,
    /// taQF2 (≥ 1).
    pub length: f64,
    /// taQF3 (≥ 1).
    pub unique_outcomes: f64,
    /// taQF4 (≥ 0, ≤ length).
    pub cumulative_certainty: f64,
}

impl TaqfVector {
    /// Computes all four factors from the buffer and the current fused
    /// outcome. Returns `None` for an empty buffer (no series context yet).
    ///
    /// # Examples
    ///
    /// ```
    /// use tauw_core::{buffer::TimeseriesBuffer, taqf::TaqfVector};
    ///
    /// let mut buf = TimeseriesBuffer::new();
    /// buf.push(7, 0.1); // agrees with the fused outcome below
    /// buf.push(3, 0.2); // disagrees
    /// buf.push(7, 0.0); // agrees
    /// let taqf = TaqfVector::compute(&buf, 7).unwrap();
    /// assert!((taqf.ratio - 2.0 / 3.0).abs() < 1e-12);
    /// assert_eq!(taqf.length, 3.0);
    /// assert_eq!(taqf.unique_outcomes, 2.0);
    /// assert!((taqf.cumulative_certainty - 1.9).abs() < 1e-12);
    /// ```
    pub fn compute(buffer: &TimeseriesBuffer, fused_outcome: u32) -> Option<TaqfVector> {
        if buffer.is_empty() {
            return None;
        }
        let n = buffer.len() as f64;
        let mut agree = 0usize;
        let mut cumulative = 0.0;
        for e in buffer.entries() {
            if e.outcome == fused_outcome {
                agree += 1;
                cumulative += e.certainty();
            }
        }
        Some(TaqfVector {
            ratio: agree as f64 / n,
            length: n,
            unique_outcomes: buffer.unique_outcomes() as f64,
            cumulative_certainty: cumulative,
        })
    }

    /// The factor value for one kind.
    pub fn get(&self, kind: TaqfKind) -> f64 {
        match kind {
            TaqfKind::Ratio => self.ratio,
            TaqfKind::Length => self.length,
            TaqfKind::UniqueOutcomes => self.unique_outcomes,
            TaqfKind::CumulativeCertainty => self.cumulative_certainty,
        }
    }
}

/// A subset of the four taQFs (bitmask), used by the RQ3 feature study and
/// to configure which factors a taQIM consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaqfSet(u8);

impl TaqfSet {
    /// The empty set (degenerates the taQIM to a stateless QIM over the
    /// current step's quality factors).
    pub const EMPTY: TaqfSet = TaqfSet(0);
    /// All four factors (the paper's full taUW).
    pub const FULL: TaqfSet = TaqfSet(0b1111);

    /// Builds a set from the given kinds.
    pub fn from_kinds(kinds: &[TaqfKind]) -> Self {
        let mut mask = 0u8;
        for k in kinds {
            mask |= 1 << Self::bit(*k);
        }
        TaqfSet(mask)
    }

    /// All 16 subsets (including empty), in mask order — the Fig. 7 sweep.
    pub fn all_subsets() -> impl Iterator<Item = TaqfSet> {
        (0u8..16).map(TaqfSet)
    }

    /// Whether the set contains a factor.
    pub fn contains(self, kind: TaqfKind) -> bool {
        self.0 & (1 << Self::bit(kind)) != 0
    }

    /// Number of factors in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The contained kinds in taQF1..taQF4 order.
    pub fn kinds(self) -> Vec<TaqfKind> {
        TaqfKind::ALL
            .iter()
            .copied()
            .filter(|k| self.contains(*k))
            .collect()
    }

    /// Extracts the selected factor values in [`TaqfSet::kinds`] order.
    pub fn select(self, v: &TaqfVector) -> Vec<f64> {
        self.kinds().into_iter().map(|k| v.get(k)).collect()
    }

    /// Human-readable label like `"{ratio, certainty}"`.
    pub fn label(self) -> String {
        if self.is_empty() {
            return "{}".to_string();
        }
        let names: Vec<&str> = self
            .kinds()
            .into_iter()
            .map(TaqfKind::paper_label)
            .collect();
        format!("{{{}}}", names.join(", "))
    }

    fn bit(kind: TaqfKind) -> u8 {
        match kind {
            TaqfKind::Ratio => 0,
            TaqfKind::Length => 1,
            TaqfKind::UniqueOutcomes => 2,
            TaqfKind::CumulativeCertainty => 3,
        }
    }
}

impl Default for TaqfSet {
    fn default() -> Self {
        TaqfSet::FULL
    }
}

impl std::fmt::Display for TaqfSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Experimental timeseries features beyond the paper's taQF1–4, for the
/// `extended_taqf` study (the paper closes RQ3 with "experiments on other
/// datasets are required to determine ... whether there is an overall best
/// set of timeseries-aware features" — these probe that direction on the
/// synthetic substrate).
pub mod extra {
    use crate::buffer::TimeseriesBuffer;

    /// Length of the current *trailing streak* of outcomes equal to the
    /// fused outcome (0 if the most recent outcome disagrees). Rationale: a
    /// long unbroken run of agreement is stronger evidence than the same
    /// agreement count scattered across the series.
    pub fn trailing_agreement_streak(buffer: &TimeseriesBuffer, fused_outcome: u32) -> f64 {
        buffer
            .entries()
            .iter()
            .rev()
            .take_while(|e| e.outcome == fused_outcome)
            .count() as f64
    }

    /// Exponentially recency-weighted agreement ratio with decay `lambda`
    /// (0 < lambda ≤ 1; 1 recovers taQF1). Rationale: under drifting
    /// conditions, recent agreement should count more than stale agreement.
    pub fn recency_weighted_ratio(
        buffer: &TimeseriesBuffer,
        fused_outcome: u32,
        lambda: f64,
    ) -> f64 {
        let entries = buffer.entries();
        if entries.is_empty() {
            return 0.0;
        }
        let lambda = lambda.clamp(1e-6, 1.0);
        let n = entries.len();
        let mut weighted_agree = 0.0;
        let mut total_weight = 0.0;
        for (j, e) in entries.iter().enumerate() {
            let age = (n - 1 - j) as f64;
            let w = lambda.powf(age);
            total_weight += w;
            if e.outcome == fused_outcome {
                weighted_agree += w;
            }
        }
        weighted_agree / total_weight
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn buffer(entries: &[(u32, f64)]) -> TimeseriesBuffer {
            let mut b = TimeseriesBuffer::new();
            for &(o, u) in entries {
                b.push(o, u);
            }
            b
        }

        #[test]
        fn streak_counts_trailing_agreement_only() {
            let b = buffer(&[(1, 0.1), (1, 0.1), (2, 0.1), (1, 0.1), (1, 0.1)]);
            assert_eq!(trailing_agreement_streak(&b, 1), 2.0);
            assert_eq!(trailing_agreement_streak(&b, 2), 0.0);
        }

        #[test]
        fn streak_spans_whole_series_when_unanimous() {
            let b = buffer(&[(7, 0.2); 6]);
            assert_eq!(trailing_agreement_streak(&b, 7), 6.0);
        }

        #[test]
        fn streak_of_empty_buffer_is_zero() {
            assert_eq!(trailing_agreement_streak(&TimeseriesBuffer::new(), 1), 0.0);
        }

        #[test]
        fn recency_weighting_with_lambda_one_is_plain_ratio() {
            let b = buffer(&[(1, 0.1), (2, 0.1), (1, 0.1)]);
            let r = recency_weighted_ratio(&b, 1, 1.0);
            assert!((r - 2.0 / 3.0).abs() < 1e-12);
        }

        #[test]
        fn recent_agreement_outweighs_stale_agreement() {
            // Agreement only at the start vs only at the end.
            let stale = buffer(&[(1, 0.1), (1, 0.1), (2, 0.1), (2, 0.1)]);
            let fresh = buffer(&[(2, 0.1), (2, 0.1), (1, 0.1), (1, 0.1)]);
            let lambda = 0.5;
            assert!(
                recency_weighted_ratio(&fresh, 1, lambda)
                    > recency_weighted_ratio(&stale, 1, lambda)
            );
        }

        #[test]
        fn recency_ratio_stays_in_unit_interval() {
            let b = buffer(&[(1, 0.1), (2, 0.3), (3, 0.5), (1, 0.0)]);
            for lambda in [0.1, 0.5, 0.9, 1.0] {
                for class in [1, 2, 3, 9] {
                    let r = recency_weighted_ratio(&b, class, lambda);
                    assert!((0.0..=1.0).contains(&r));
                }
            }
            assert_eq!(
                recency_weighted_ratio(&TimeseriesBuffer::new(), 1, 0.5),
                0.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(entries: &[(u32, f64)]) -> TimeseriesBuffer {
        let mut b = TimeseriesBuffer::new();
        for &(o, u) in entries {
            b.push(o, u);
        }
        b
    }

    #[test]
    fn empty_buffer_has_no_taqf() {
        assert!(TaqfVector::compute(&TimeseriesBuffer::new(), 0).is_none());
    }

    #[test]
    fn single_agreeing_step() {
        let b = buffer(&[(4, 0.2)]);
        let t = TaqfVector::compute(&b, 4).unwrap();
        assert_eq!(t.ratio, 1.0);
        assert_eq!(t.length, 1.0);
        assert_eq!(t.unique_outcomes, 1.0);
        assert!((t.cumulative_certainty - 0.8).abs() < 1e-12);
    }

    #[test]
    fn disagreeing_steps_contribute_zero_certainty() {
        // Paper: "previous outcomes that disagree with the current fused
        // outcome are assumed to have a certainty of zero".
        let b = buffer(&[(1, 0.0), (2, 0.0), (2, 0.5)]);
        let t = TaqfVector::compute(&b, 2).unwrap();
        assert!((t.cumulative_certainty - 1.5).abs() < 1e-12);
        assert!((t.ratio - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unique_outcomes_tracks_variety() {
        let b = buffer(&[(1, 0.1), (2, 0.1), (3, 0.1), (1, 0.1)]);
        let t = TaqfVector::compute(&b, 1).unwrap();
        assert_eq!(t.unique_outcomes, 3.0);
        assert_eq!(t.length, 4.0);
    }

    #[test]
    fn get_matches_fields() {
        let b = buffer(&[(1, 0.25), (1, 0.25)]);
        let t = TaqfVector::compute(&b, 1).unwrap();
        assert_eq!(t.get(TaqfKind::Ratio), t.ratio);
        assert_eq!(t.get(TaqfKind::Length), t.length);
        assert_eq!(t.get(TaqfKind::UniqueOutcomes), t.unique_outcomes);
        assert_eq!(t.get(TaqfKind::CumulativeCertainty), t.cumulative_certainty);
    }

    #[test]
    fn subsets_enumerate_sixteen() {
        let all: Vec<TaqfSet> = TaqfSet::all_subsets().collect();
        assert_eq!(all.len(), 16);
        assert_eq!(all[0], TaqfSet::EMPTY);
        assert_eq!(all[15], TaqfSet::FULL);
        // Sizes follow the binomial distribution 1,4,6,4,1.
        let mut by_size = [0usize; 5];
        for s in all {
            by_size[s.len()] += 1;
        }
        assert_eq!(by_size, [1, 4, 6, 4, 1]);
    }

    #[test]
    fn select_orders_by_kind() {
        let b = buffer(&[(1, 0.5), (2, 0.5)]);
        let t = TaqfVector::compute(&b, 1).unwrap();
        let set = TaqfSet::from_kinds(&[TaqfKind::CumulativeCertainty, TaqfKind::Ratio]);
        let selected = set.select(&t);
        assert_eq!(selected, vec![t.ratio, t.cumulative_certainty]);
        assert_eq!(
            set.kinds(),
            vec![TaqfKind::Ratio, TaqfKind::CumulativeCertainty]
        );
    }

    #[test]
    fn labels_read_like_the_paper() {
        let set = TaqfSet::from_kinds(&[TaqfKind::Ratio, TaqfKind::CumulativeCertainty]);
        assert_eq!(set.label(), "{ratio, certainty}");
        assert_eq!(TaqfSet::EMPTY.label(), "{}");
        assert_eq!(TaqfSet::FULL.label(), "{ratio, length, size, certainty}");
    }

    #[test]
    fn default_is_full() {
        assert_eq!(TaqfSet::default(), TaqfSet::FULL);
    }
}
