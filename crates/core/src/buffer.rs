//! The timeseries buffer (paper Section III): the state added to the
//! otherwise stateless uncertainty wrapper. It stores, for the *current*
//! series only, the per-step DDM outcomes and the per-step stateless
//! uncertainty estimates; it is cleared whenever the tracking component
//! signals a new measurement object.

use serde::{Deserialize, Serialize};

/// One buffered timestep: the DDM outcome and the stateless wrapper's
/// uncertainty estimate for that step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferEntry {
    /// DDM outcome (class id) at this step.
    pub outcome: u32,
    /// Stateless uncertainty estimate `u_j` for this step.
    pub uncertainty: f64,
}

impl BufferEntry {
    /// Certainty `c_j = 1 − u_j`.
    pub fn certainty(&self) -> f64 {
        1.0 - self.uncertainty
    }
}

/// Interim-result store for the current timeseries.
///
/// # Examples
///
/// ```
/// use tauw_core::buffer::TimeseriesBuffer;
///
/// let mut buf = TimeseriesBuffer::new();
/// buf.push(2, 0.1);
/// buf.push(2, 0.05);
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.outcomes(), vec![2, 2]);
/// buf.clear(); // new physical object detected
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeseriesBuffer {
    entries: Vec<BufferEntry>,
}

impl TimeseriesBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TimeseriesBuffer {
            entries: Vec::new(),
        }
    }

    /// Creates an empty buffer with reserved capacity (series length is
    /// usually known to be ~10–30 steps).
    pub fn with_capacity(capacity: usize) -> Self {
        TimeseriesBuffer {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Records one timestep.
    pub fn push(&mut self, outcome: u32, uncertainty: f64) {
        self.entries.push(BufferEntry {
            outcome,
            uncertainty: uncertainty.clamp(0.0, 1.0),
        });
    }

    /// Clears the buffer at the onset of a new timeseries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of buffered steps `i + 1`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no steps.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The buffered entries in temporal order.
    pub fn entries(&self) -> &[BufferEntry] {
        &self.entries
    }

    /// The buffered outcomes `o_0..=o_i` in temporal order.
    pub fn outcomes(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.outcome).collect()
    }

    /// The buffered uncertainties `u_0..=u_i` in temporal order.
    pub fn uncertainties(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.uncertainty).collect()
    }

    /// The buffered certainties `c_j = 1 − u_j` in temporal order.
    pub fn certainties(&self) -> Vec<f64> {
        self.entries.iter().map(BufferEntry::certainty).collect()
    }

    /// Number of distinct outcomes buffered so far (the basis of taQF3).
    pub fn unique_outcomes(&self) -> usize {
        let mut seen: Vec<u32> = Vec::new();
        for e in &self.entries {
            if !seen.contains(&e.outcome) {
                seen.push(e.outcome);
            }
        }
        seen.len()
    }
}

impl Extend<BufferEntry> for TimeseriesBuffer {
    fn extend<T: IntoIterator<Item = BufferEntry>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_accumulates_in_order() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 0.3);
        b.push(2, 0.2);
        b.push(1, 0.1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.outcomes(), vec![1, 2, 1]);
        assert_eq!(b.uncertainties(), vec![0.3, 0.2, 0.1]);
    }

    #[test]
    fn certainties_complement_uncertainties() {
        let mut b = TimeseriesBuffer::new();
        b.push(5, 0.25);
        assert_eq!(b.certainties(), vec![0.75]);
        assert_eq!(b.entries()[0].certainty(), 0.75);
    }

    #[test]
    fn clear_resets_for_new_series() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 0.5);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.unique_outcomes(), 0);
    }

    #[test]
    fn unique_outcomes_counts_distinct() {
        let mut b = TimeseriesBuffer::new();
        for (o, u) in [(1, 0.1), (1, 0.1), (2, 0.1), (3, 0.1), (2, 0.1)] {
            b.push(o, u);
        }
        assert_eq!(b.unique_outcomes(), 3);
    }

    #[test]
    fn uncertainties_are_clamped() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 1.7);
        b.push(2, -0.5);
        assert_eq!(b.uncertainties(), vec![1.0, 0.0]);
    }

    #[test]
    fn extend_appends_entries() {
        let mut b = TimeseriesBuffer::with_capacity(4);
        b.extend([BufferEntry {
            outcome: 9,
            uncertainty: 0.4,
        }]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.outcomes(), vec![9]);
    }
}
