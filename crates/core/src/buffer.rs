//! The timeseries buffer (paper Section III): the state added to the
//! otherwise stateless uncertainty wrapper. It stores, for the *current*
//! series only, the per-step DDM outcomes and the per-step stateless
//! uncertainty estimates; it is cleared whenever the tracking component
//! signals a new measurement object.

use serde::{Deserialize, Serialize};

/// One buffered timestep: the DDM outcome and the stateless wrapper's
/// uncertainty estimate for that step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferEntry {
    /// DDM outcome (class id) at this step.
    pub outcome: u32,
    /// Stateless uncertainty estimate `u_j` for this step.
    pub uncertainty: f64,
}

impl BufferEntry {
    /// Certainty `c_j = 1 − u_j`.
    pub fn certainty(&self) -> f64 {
        1.0 - self.uncertainty
    }
}

/// Interim-result store for the current timeseries.
///
/// An **unbounded** buffer ([`TimeseriesBuffer::new`]) keeps every step of
/// the current series — the paper's setting, where tracking clears the
/// buffer on every new object. A **bounded** buffer
/// ([`TimeseriesBuffer::bounded`]) keeps only the most recent `capacity`
/// steps, wrapping around by evicting the oldest entry; long-running
/// streams (the engine's "millions of users" shape) use it to cap per-
/// stream memory.
///
/// # Examples
///
/// ```
/// use tauw_core::buffer::TimeseriesBuffer;
///
/// let mut buf = TimeseriesBuffer::new();
/// buf.push(2, 0.1);
/// buf.push(2, 0.05);
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.outcomes(), vec![2, 2]);
/// buf.clear(); // new physical object detected
/// assert!(buf.is_empty());
///
/// let mut window = TimeseriesBuffer::bounded(2);
/// window.push(1, 0.1);
/// window.push(2, 0.2);
/// window.push(3, 0.3); // evicts outcome 1
/// assert_eq!(window.outcomes(), vec![2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeseriesBuffer {
    entries: Vec<BufferEntry>,
    /// Sliding-window bound; `None` keeps the full series.
    capacity: Option<usize>,
}

impl TimeseriesBuffer {
    /// Creates an empty unbounded buffer.
    pub fn new() -> Self {
        TimeseriesBuffer {
            entries: Vec::new(),
            capacity: None,
        }
    }

    /// Creates an empty unbounded buffer with reserved capacity (series
    /// length is usually known to be ~10–30 steps). The hint only
    /// pre-allocates; it does not bound the buffer.
    pub fn with_capacity(capacity: usize) -> Self {
        TimeseriesBuffer {
            entries: Vec::with_capacity(capacity),
            capacity: None,
        }
    }

    /// Creates an empty **bounded** buffer holding at most `capacity`
    /// entries (clamped to ≥ 1). Once full, each push evicts the oldest
    /// entry, so the buffer always holds the most recent `capacity` steps
    /// in temporal order.
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TimeseriesBuffer {
            entries: Vec::with_capacity(capacity),
            capacity: Some(capacity),
        }
    }

    /// The sliding-window bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Whether a bounded buffer has reached its capacity (always `false`
    /// for unbounded buffers).
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|cap| self.entries.len() >= cap)
    }

    /// Records one timestep; a full bounded buffer wraps around by
    /// evicting its oldest entry first.
    pub fn push(&mut self, outcome: u32, uncertainty: f64) {
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                // Entries stay contiguous and in temporal order; the shift
                // is O(capacity) with capacities of ~10–30 steps.
                self.entries.remove(0);
            }
        }
        self.entries.push(BufferEntry {
            outcome,
            uncertainty: uncertainty.clamp(0.0, 1.0),
        });
    }

    /// Clears the buffer at the onset of a new timeseries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of buffered steps `i + 1`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no steps.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The buffered entries in temporal order.
    pub fn entries(&self) -> &[BufferEntry] {
        &self.entries
    }

    /// The buffered outcomes `o_0..=o_i` in temporal order.
    pub fn outcomes(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.outcome).collect()
    }

    /// The buffered uncertainties `u_0..=u_i` in temporal order.
    pub fn uncertainties(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.uncertainty).collect()
    }

    /// The buffered certainties `c_j = 1 − u_j` in temporal order.
    pub fn certainties(&self) -> Vec<f64> {
        self.entries.iter().map(BufferEntry::certainty).collect()
    }

    /// Number of distinct outcomes buffered so far (the basis of taQF3).
    pub fn unique_outcomes(&self) -> usize {
        let mut seen: Vec<u32> = Vec::new();
        for e in &self.entries {
            if !seen.contains(&e.outcome) {
                seen.push(e.outcome);
            }
        }
        seen.len()
    }
}

impl Extend<BufferEntry> for TimeseriesBuffer {
    fn extend<T: IntoIterator<Item = BufferEntry>>(&mut self, iter: T) {
        for e in iter {
            self.push(e.outcome, e.uncertainty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_accumulates_in_order() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 0.3);
        b.push(2, 0.2);
        b.push(1, 0.1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.outcomes(), vec![1, 2, 1]);
        assert_eq!(b.uncertainties(), vec![0.3, 0.2, 0.1]);
    }

    #[test]
    fn certainties_complement_uncertainties() {
        let mut b = TimeseriesBuffer::new();
        b.push(5, 0.25);
        assert_eq!(b.certainties(), vec![0.75]);
        assert_eq!(b.entries()[0].certainty(), 0.75);
    }

    #[test]
    fn clear_resets_for_new_series() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 0.5);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.unique_outcomes(), 0);
    }

    #[test]
    fn unique_outcomes_counts_distinct() {
        let mut b = TimeseriesBuffer::new();
        for (o, u) in [(1, 0.1), (1, 0.1), (2, 0.1), (3, 0.1), (2, 0.1)] {
            b.push(o, u);
        }
        assert_eq!(b.unique_outcomes(), 3);
    }

    #[test]
    fn uncertainties_are_clamped() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 1.7);
        b.push(2, -0.5);
        assert_eq!(b.uncertainties(), vec![1.0, 0.0]);
    }

    #[test]
    fn extend_appends_entries() {
        let mut b = TimeseriesBuffer::with_capacity(4);
        b.extend([BufferEntry {
            outcome: 9,
            uncertainty: 0.4,
        }]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.outcomes(), vec![9]);
    }

    #[test]
    fn unbounded_buffers_report_no_capacity() {
        let b = TimeseriesBuffer::with_capacity(4);
        assert_eq!(b.capacity(), None);
        assert!(!b.is_full());
        let mut b = TimeseriesBuffer::new();
        for i in 0..100 {
            b.push(i, 0.1);
        }
        assert_eq!(b.len(), 100, "unbounded buffers never evict");
        assert!(!b.is_full());
    }

    #[test]
    fn capacity_one_buffer_keeps_only_the_latest_step() {
        let mut b = TimeseriesBuffer::bounded(1);
        assert_eq!(b.capacity(), Some(1));
        assert!(!b.is_full());
        b.push(1, 0.3);
        assert!(b.is_full());
        assert_eq!(b.outcomes(), vec![1]);
        b.push(2, 0.7);
        assert_eq!(b.len(), 1);
        assert_eq!(b.outcomes(), vec![2]);
        assert_eq!(b.uncertainties(), vec![0.7]);
        assert_eq!(b.unique_outcomes(), 1);
    }

    #[test]
    fn bounded_buffer_wraps_after_exactly_capacity_pushes() {
        let cap = 5;
        let mut b = TimeseriesBuffer::bounded(cap);
        for i in 0..cap as u32 {
            assert!(!b.is_full(), "not full before push {i}");
            b.push(i, i as f64 / 10.0);
        }
        // After exactly `capacity` pushes: full, nothing evicted yet.
        assert!(b.is_full());
        assert_eq!(b.len(), cap);
        assert_eq!(b.outcomes(), vec![0, 1, 2, 3, 4]);
        // Push `capacity + 1` wraps around: oldest entry leaves, temporal
        // order of the survivors is preserved.
        b.push(99, 0.9);
        assert_eq!(b.len(), cap);
        assert_eq!(b.outcomes(), vec![1, 2, 3, 4, 99]);
        assert_eq!(b.entries()[0].outcome, 1);
        assert!((b.uncertainties()[4] - 0.9).abs() < 1e-15);
    }

    #[test]
    fn taqf_on_a_not_yet_full_bounded_buffer_uses_the_true_length() {
        use crate::taqf::TaqfVector;
        let mut b = TimeseriesBuffer::bounded(10);
        b.push(7, 0.2);
        b.push(3, 0.4);
        b.push(7, 0.0);
        assert!(!b.is_full());
        let taqf = TaqfVector::compute(&b, 7).expect("non-empty buffer");
        // length is the number of buffered steps, not the capacity.
        assert_eq!(taqf.length, 3.0);
        assert!((taqf.ratio - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(taqf.unique_outcomes, 2.0);
        assert!((taqf.cumulative_certainty - 1.8).abs() < 1e-12);
    }

    #[test]
    fn bounded_buffer_clear_resets_but_keeps_the_bound() {
        let mut b = TimeseriesBuffer::bounded(2);
        b.push(1, 0.1);
        b.push(2, 0.2);
        b.push(3, 0.3);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), Some(2));
        b.push(4, 0.4);
        b.push(5, 0.5);
        b.push(6, 0.6);
        assert_eq!(b.outcomes(), vec![5, 6]);
    }

    #[test]
    fn extend_respects_the_bound() {
        let mut b = TimeseriesBuffer::bounded(2);
        b.extend((0..5).map(|i| BufferEntry {
            outcome: i,
            uncertainty: 0.1,
        }));
        assert_eq!(b.outcomes(), vec![3, 4]);
    }
}
