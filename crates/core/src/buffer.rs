//! The timeseries buffer (paper Section III): the state added to the
//! otherwise stateless uncertainty wrapper. It stores, for the *current*
//! series only, the per-step DDM outcomes and the per-step stateless
//! uncertainty estimates; it is cleared whenever the tracking component
//! signals a new measurement object.
//!
//! # Per-step cost model
//!
//! The buffer is the per-step hot state of every monitored stream, so its
//! operations must not scale with the series length:
//!
//! * storage is a **head-indexed ring**: a bounded buffer evicts its oldest
//!   entry by overwriting one slot and advancing `head` — no `remove(0)`
//!   shift, so `push` is O(1) in the window length;
//! * every `push`/evict/`clear` maintains **running aggregates** — one
//!   `OutcomeStats` record per distinct outcome in the window (count,
//!   exact certainty sum, last-seen step) plus a lifetime step counter —
//!   so the taQF1–4 vector and the majority-vote fused outcome are O(1)
//!   lookups in the window length (linear only in the number of *distinct
//!   classes* in the window, which is bounded by the DDM's class alphabet,
//!   not by the series).
//!
//! Certainty sums are held **exactly**: a clamped uncertainty always yields
//! a certainty `1 − u` that is an integer multiple of 2⁻⁵³ (see
//! [`BufferEntry::certainty_units`]), so sums are integer arithmetic and
//! eviction is exact subtraction. The incremental aggregates are therefore
//! *bit-identical* to a full recompute over the window — asserted against
//! the reference scans ([`crate::taqf::TaqfVector::compute_reference`],
//! [`TimeseriesBuffer::fused_outcome_reference`]) by the proptest and
//! determinism suites.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use tauw_fusion::info::{InformationFusion, MajorityVote};

/// The fixed-point scale of exact certainty accumulation: one unit is 2⁻⁵³.
const CERTAINTY_UNIT_SCALE: f64 = (1u64 << 53) as f64;

/// One buffered timestep: the DDM outcome and the stateless wrapper's
/// uncertainty estimate for that step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferEntry {
    /// DDM outcome (class id) at this step.
    pub outcome: u32,
    /// Stateless uncertainty estimate `u_j` for this step.
    pub uncertainty: f64,
}

impl BufferEntry {
    /// Certainty `c_j = 1 − u_j`.
    pub fn certainty(&self) -> f64 {
        1.0 - self.uncertainty
    }

    /// The certainty as an exact count of 2⁻⁵³ units.
    ///
    /// For any uncertainty in `[0, 1]` (the invariant [`TimeseriesBuffer::push`]
    /// enforces), `1 − u` is an exact integer multiple of 2⁻⁵³: for
    /// `u ≥ 0.5` the subtraction is exact (Sterbenz) and `u` itself sits on
    /// the 2⁻⁵³ grid, for `u < 0.5` the rounded result lies in `[0.5, 1]`
    /// whose representable values are that grid. Integer sums of these
    /// units are therefore exact and order-independent, which is what makes
    /// the buffer's incremental certainty aggregates bit-identical to a
    /// full recompute.
    pub fn certainty_units(&self) -> u64 {
        (self.certainty() * CERTAINTY_UNIT_SCALE) as u64
    }
}

/// Converts a sum of 2⁻⁵³ certainty units back to an `f64` certainty sum.
///
/// This is the single rounding point of the exact accumulation scheme: the
/// integer total (exact by construction) is converted once, so any two ways
/// of arriving at the same window contents produce the same bits.
pub fn certainty_units_to_f64(units: u128) -> f64 {
    (units as f64) / CERTAINTY_UNIT_SCALE
}

/// One full unit of probability mass (`1.0`) on the 2⁻⁵³ integer grid —
/// the exact number of units a single entry with certainty `1.0`
/// contributes. Consumers comparing *counts* against *certainty sums*
/// (e.g. the adaptive coverage tracker testing `failures · 1.0 >
/// Σ promised failure mass`) multiply by this constant so the comparison
/// stays in exact integer arithmetic.
pub const CERTAINTY_UNIT_ONE: u128 = 1u128 << 53;

/// Running aggregates for one distinct outcome currently in the window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OutcomeStats {
    /// The outcome (class id).
    outcome: u32,
    /// Occurrences of the outcome in the window.
    count: usize,
    /// Exact certainty sum of those occurrences, in 2⁻⁵³ units.
    certainty_units: u128,
    /// Lifetime step number (1-based) of the outcome's most recent
    /// occurrence — the majority-vote recency tie-breaker. The most recent
    /// occurrence is never evicted before older ones, so this stays valid
    /// under window eviction.
    last_seen: u64,
}

/// Interim-result store for the current timeseries.
///
/// An **unbounded** buffer ([`TimeseriesBuffer::new`]) keeps every step of
/// the current series — the paper's setting, where tracking clears the
/// buffer on every new object. A **bounded** buffer
/// ([`TimeseriesBuffer::bounded`]) keeps only the most recent `capacity`
/// steps as a true ring (head index, overwrite-on-evict); long-running
/// streams (the engine's "millions of users" shape) use it to cap
/// per-stream memory *and* per-step cost.
///
/// # Examples
///
/// ```
/// use tauw_core::buffer::TimeseriesBuffer;
///
/// let mut buf = TimeseriesBuffer::new();
/// buf.push(2, 0.1);
/// buf.push(2, 0.05);
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.outcomes(), vec![2, 2]);
/// assert_eq!(buf.fused_outcome(), Some(2)); // O(1) majority vote
/// buf.clear(); // new physical object detected
/// assert!(buf.is_empty());
///
/// let mut window = TimeseriesBuffer::bounded(2);
/// window.push(1, 0.1);
/// window.push(2, 0.2);
/// window.push(3, 0.3); // evicts outcome 1 in O(1)
/// assert_eq!(window.outcomes(), vec![2, 3]);
/// assert_eq!(window.total_steps(), 3, "the lifetime counter survives eviction");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeseriesBuffer {
    /// Ring storage. Temporal order is `entries[head..]` then
    /// `entries[..head]`; `head` is non-zero only for a bounded buffer that
    /// has wrapped.
    entries: Vec<BufferEntry>,
    /// Index of the oldest entry.
    head: usize,
    /// Sliding-window bound; `None` keeps the full series.
    capacity: Option<usize>,
    /// Lifetime pushes since the last [`TimeseriesBuffer::clear`] — the
    /// paper's series length `i + 1`, which eviction must not shrink
    /// (taQF2).
    total_steps: u64,
    /// Per-outcome running aggregates over the current window.
    stats: Vec<OutcomeStats>,
}

impl TimeseriesBuffer {
    /// Creates an empty unbounded buffer.
    pub fn new() -> Self {
        TimeseriesBuffer::default()
    }

    /// Creates an empty unbounded buffer with reserved capacity (series
    /// length is usually known to be ~10–30 steps). The hint only
    /// pre-allocates; it does not bound the buffer.
    pub fn with_capacity(capacity: usize) -> Self {
        TimeseriesBuffer {
            entries: Vec::with_capacity(capacity),
            ..TimeseriesBuffer::default()
        }
    }

    /// Creates an empty **bounded** buffer holding at most `capacity`
    /// entries (clamped to ≥ 1). Once full, each push evicts the oldest
    /// entry by overwriting its ring slot, so the buffer always holds the
    /// most recent `capacity` steps in temporal order.
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TimeseriesBuffer {
            entries: Vec::with_capacity(capacity),
            capacity: Some(capacity),
            ..TimeseriesBuffer::default()
        }
    }

    /// Rebuilds a buffer from its serialized parts, enforcing every `push`
    /// invariant (this is the only way deserialized state enters the
    /// process, so a crafted artifact cannot smuggle in out-of-range
    /// uncertainties or an over-full window).
    ///
    /// `entries` must be in temporal order; `total_steps` is the lifetime
    /// counter at snapshot time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when `capacity` is zero, the
    /// entries exceed the capacity, any uncertainty is non-finite or
    /// outside `[0, 1]`, or `total_steps` is smaller than the entry count.
    pub fn from_parts(
        entries: Vec<BufferEntry>,
        capacity: Option<usize>,
        total_steps: u64,
    ) -> Result<Self, CoreError> {
        let invalid = |reason: String| CoreError::InvalidInput { reason };
        if capacity == Some(0) {
            return Err(invalid(
                "timeseries buffer: bounded capacity must be at least 1".into(),
            ));
        }
        if let Some(cap) = capacity {
            if entries.len() > cap {
                return Err(invalid(format!(
                    "timeseries buffer: {} entries exceed the capacity bound {cap}",
                    entries.len()
                )));
            }
        }
        if total_steps < entries.len() as u64 {
            return Err(invalid(format!(
                "timeseries buffer: lifetime step counter {total_steps} is smaller than the {} buffered entries",
                entries.len()
            )));
        }
        for (i, e) in entries.iter().enumerate() {
            if !e.uncertainty.is_finite() || !(0.0..=1.0).contains(&e.uncertainty) {
                return Err(invalid(format!(
                    "timeseries buffer: entry {i} carries uncertainty {} outside [0, 1]",
                    e.uncertainty
                )));
            }
        }
        let mut buffer = TimeseriesBuffer {
            // Reserve only what the snapshot holds — a crafted artifact
            // declaring a huge capacity must not drive the allocation.
            entries: Vec::with_capacity(entries.len()),
            head: 0,
            capacity,
            // Seed with the steps that were evicted before the snapshot
            // (the entries are the window *suffix* of the series); the
            // replay below advances the counter back to `total_steps`.
            total_steps: total_steps - entries.len() as u64,
            stats: Vec::new(),
        };
        // Replay through `push` itself so deserialized buffers are built by
        // exactly the code that maintains live ones (the validation above
        // guarantees no clamping fires, and eviction cannot trigger since
        // the entry count fits the bound).
        for e in entries {
            buffer.push(e.outcome, e.uncertainty);
        }
        debug_assert_eq!(buffer.total_steps, total_steps);
        Ok(buffer)
    }

    /// The sliding-window bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Whether a bounded buffer has reached its capacity (always `false`
    /// for unbounded buffers).
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|cap| self.entries.len() >= cap)
    }

    /// Records one timestep; a full bounded buffer wraps around by
    /// overwriting its oldest entry (O(1) — no shifting).
    ///
    /// The uncertainty is clamped to `[0, 1]`; a NaN uncertainty is mapped
    /// to `1.0` (an unknown estimate is treated as fully uncertain), so the
    /// buffer never stores a non-finite value and every downstream
    /// aggregate stays finite.
    pub fn push(&mut self, outcome: u32, uncertainty: f64) {
        let uncertainty = if uncertainty.is_nan() {
            1.0
        } else {
            uncertainty.clamp(0.0, 1.0)
        };
        let entry = BufferEntry {
            outcome,
            uncertainty,
        };
        match self.capacity {
            Some(cap) if self.entries.len() >= cap => {
                let evicted = self.entries[self.head];
                self.record_evict(evicted);
                self.entries[self.head] = entry;
                self.head = (self.head + 1) % cap;
            }
            _ => self.entries.push(entry),
        }
        self.total_steps += 1;
        self.record_push(entry);
    }

    /// Clears the buffer at the onset of a new timeseries (resets the
    /// lifetime step counter too — a new series restarts `i + 1`).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.head = 0;
        self.total_steps = 0;
        self.stats.clear();
    }

    /// Number of buffered steps (the window occupancy — at most the
    /// capacity for bounded buffers; see [`TimeseriesBuffer::total_steps`]
    /// for the paper's series length `i + 1`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no steps.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime number of pushes since the last clear — the paper's series
    /// length `i + 1`, which a sliding window must not shrink (taQF2).
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// The buffered entries in temporal order as (older, newer) slices;
    /// the first slice starts at the oldest entry, the second is empty
    /// unless a bounded buffer has wrapped.
    pub fn as_slices(&self) -> (&[BufferEntry], &[BufferEntry]) {
        let (newer, older) = self.entries.split_at(self.head);
        (older, newer)
    }

    /// Iterates the buffered entries in temporal order (oldest first).
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &BufferEntry> + '_ {
        let (older, newer) = self.as_slices();
        older.iter().chain(newer.iter())
    }

    /// The buffered outcomes `o_0..=o_i` in temporal order.
    pub fn outcomes(&self) -> Vec<u32> {
        self.iter().map(|e| e.outcome).collect()
    }

    /// The buffered uncertainties `u_0..=u_i` in temporal order.
    pub fn uncertainties(&self) -> Vec<f64> {
        self.iter().map(|e| e.uncertainty).collect()
    }

    /// The buffered certainties `c_j = 1 − u_j` in temporal order.
    pub fn certainties(&self) -> Vec<f64> {
        self.iter().map(BufferEntry::certainty).collect()
    }

    /// Number of distinct outcomes in the window (the basis of taQF3) —
    /// O(1) from the running aggregates.
    pub fn unique_outcomes(&self) -> usize {
        self.stats.len()
    }

    /// Occurrences of `outcome` in the window — O(distinct classes), not
    /// O(window).
    pub fn agreement_count(&self, outcome: u32) -> usize {
        self.stat(outcome).map_or(0, |s| s.count)
    }

    /// Exact certainty sum (in 2⁻⁵³ units) of the window entries whose
    /// outcome equals `outcome` — O(distinct classes), not O(window).
    pub fn certainty_units_sum(&self, outcome: u32) -> u128 {
        self.stat(outcome).map_or(0, |s| s.certainty_units)
    }

    /// The majority-vote fused outcome `o_i^(if)` over the window, with the
    /// paper's most-recent tie-breaking — O(distinct classes) from the
    /// running aggregates instead of an O(window) scan. `None` on an empty
    /// buffer.
    ///
    /// Bit-identical to [`TimeseriesBuffer::fused_outcome_reference`]: vote
    /// weights are integer counts and the tie-breaker compares strictly
    /// increasing push indices, so the argmax is unique and agrees with the
    /// reference scan's left-to-right selection.
    pub fn fused_outcome(&self) -> Option<u32> {
        let mut best: Option<&OutcomeStats> = None;
        for s in &self.stats {
            let wins = match best {
                None => true,
                Some(b) => s.count > b.count || (s.count == b.count && s.last_seen > b.last_seen),
            };
            if wins {
                best = Some(s);
            }
        }
        best.map(|s| s.outcome)
    }

    /// Full-recompute reference for [`TimeseriesBuffer::fused_outcome`]:
    /// the O(window) majority-vote scan over the materialized outcome and
    /// certainty vectors — exactly the seed serving path, kept aboard so
    /// the incremental path can be verified against it (mirroring the
    /// flat-vs-pointer tree pattern).
    pub fn fused_outcome_reference(&self) -> Option<u32> {
        MajorityVote.fuse(&self.outcomes(), &self.certainties())
    }

    fn stat(&self, outcome: u32) -> Option<&OutcomeStats> {
        // Distinct outcomes per window are tiny (bounded by the class
        // alphabet), so a linear scan beats hashing — same reasoning as
        // the fusion crate's vote loop.
        self.stats.iter().find(|s| s.outcome == outcome)
    }

    fn record_push(&mut self, entry: BufferEntry) {
        let units = u128::from(entry.certainty_units());
        match self.stats.iter_mut().find(|s| s.outcome == entry.outcome) {
            Some(s) => {
                s.count += 1;
                s.certainty_units += units;
                s.last_seen = self.total_steps;
            }
            None => self.stats.push(OutcomeStats {
                outcome: entry.outcome,
                count: 1,
                certainty_units: units,
                last_seen: self.total_steps,
            }),
        }
    }

    fn record_evict(&mut self, entry: BufferEntry) {
        let units = u128::from(entry.certainty_units());
        let idx = self
            .stats
            .iter()
            .position(|s| s.outcome == entry.outcome)
            .expect("every window entry has an aggregate");
        let s = &mut self.stats[idx];
        s.count -= 1;
        s.certainty_units -= units;
        if s.count == 0 {
            debug_assert_eq!(s.certainty_units, 0, "exact sums drain to zero");
            self.stats.swap_remove(idx);
        }
    }
}

/// Semantic equality: same bound, same lifetime counter, same window
/// contents in temporal order — independent of the ring rotation (two
/// buffers that went through different eviction histories but hold the
/// same state compare equal).
impl PartialEq for TimeseriesBuffer {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.total_steps == other.total_steps
            && self.entries.len() == other.entries.len()
            && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

// Serialization uses a canonical temporal-order layout (never the raw ring)
// and funnels deserialization through `from_parts`, so loaded state cannot
// bypass the push invariants. Written against the vendored serde stub's
// `Value` model, like the derives it replaces.

impl Serialize for TimeseriesBuffer {
    fn serialize(&self) -> serde::Value {
        let entries: Vec<BufferEntry> = self.iter().copied().collect();
        serde::Value::Map(vec![
            ("entries".to_string(), entries.serialize()),
            ("capacity".to_string(), self.capacity.serialize()),
            ("total_steps".to_string(), self.total_steps.serialize()),
        ])
    }
}

impl Deserialize for TimeseriesBuffer {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = serde::__expect_map(value, "TimeseriesBuffer")?;
        let entries =
            Vec::<BufferEntry>::deserialize(serde::__field(map, "entries", "TimeseriesBuffer")?)?;
        let capacity =
            Option::<usize>::deserialize(serde::__field(map, "capacity", "TimeseriesBuffer")?)?;
        let total_steps =
            u64::deserialize(serde::__field(map, "total_steps", "TimeseriesBuffer")?)?;
        TimeseriesBuffer::from_parts(entries, capacity, total_steps)
            .map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl Extend<BufferEntry> for TimeseriesBuffer {
    fn extend<T: IntoIterator<Item = BufferEntry>>(&mut self, iter: T) {
        for e in iter {
            self.push(e.outcome, e.uncertainty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_accumulates_in_order() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 0.3);
        b.push(2, 0.2);
        b.push(1, 0.1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.outcomes(), vec![1, 2, 1]);
        assert_eq!(b.uncertainties(), vec![0.3, 0.2, 0.1]);
        assert_eq!(b.total_steps(), 3);
    }

    #[test]
    fn certainties_complement_uncertainties() {
        let mut b = TimeseriesBuffer::new();
        b.push(5, 0.25);
        assert_eq!(b.certainties(), vec![0.75]);
        assert_eq!(b.iter().next().unwrap().certainty(), 0.75);
    }

    #[test]
    fn clear_resets_for_new_series() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 0.5);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.unique_outcomes(), 0);
        assert_eq!(b.total_steps(), 0, "a new series restarts i + 1");
        assert_eq!(b.fused_outcome(), None);
    }

    #[test]
    fn unique_outcomes_counts_distinct() {
        let mut b = TimeseriesBuffer::new();
        for (o, u) in [(1, 0.1), (1, 0.1), (2, 0.1), (3, 0.1), (2, 0.1)] {
            b.push(o, u);
        }
        assert_eq!(b.unique_outcomes(), 3);
        assert_eq!(b.agreement_count(1), 2);
        assert_eq!(b.agreement_count(2), 2);
        assert_eq!(b.agreement_count(3), 1);
        assert_eq!(b.agreement_count(9), 0);
    }

    #[test]
    fn uncertainties_are_clamped() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, 1.7);
        b.push(2, -0.5);
        assert_eq!(b.uncertainties(), vec![1.0, 0.0]);
    }

    #[test]
    fn nan_uncertainty_is_treated_as_fully_uncertain() {
        let mut b = TimeseriesBuffer::new();
        b.push(1, f64::NAN);
        assert_eq!(b.uncertainties(), vec![1.0]);
        assert_eq!(b.certainty_units_sum(1), 0);
        assert_eq!(b.certainties(), vec![0.0]);
    }

    #[test]
    fn certainty_units_are_exact_for_clamped_uncertainties() {
        // Every representable clamped uncertainty maps to an integer number
        // of 2^-53 units that reconstructs the certainty bit-for-bit.
        let mut u = 0.0f64;
        while u < 1.0 {
            let e = BufferEntry {
                outcome: 0,
                uncertainty: u,
            };
            let back = certainty_units_to_f64(u128::from(e.certainty_units()));
            assert_eq!(back.to_bits(), e.certainty().to_bits(), "u = {u}");
            // Stride through the unit interval including awkward values.
            u += 0.000_037;
        }
        for u in [0.0, 1.0, 0.5, f64::EPSILON, 1.0 - f64::EPSILON, 1e-300] {
            let e = BufferEntry {
                outcome: 0,
                uncertainty: u,
            };
            let back = certainty_units_to_f64(u128::from(e.certainty_units()));
            assert_eq!(back.to_bits(), e.certainty().to_bits(), "u = {u}");
        }
    }

    #[test]
    fn extend_appends_entries() {
        let mut b = TimeseriesBuffer::with_capacity(4);
        b.extend([BufferEntry {
            outcome: 9,
            uncertainty: 0.4,
        }]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.outcomes(), vec![9]);
    }

    #[test]
    fn unbounded_buffers_report_no_capacity() {
        let b = TimeseriesBuffer::with_capacity(4);
        assert_eq!(b.capacity(), None);
        assert!(!b.is_full());
        let mut b = TimeseriesBuffer::new();
        for i in 0..100 {
            b.push(i, 0.1);
        }
        assert_eq!(b.len(), 100, "unbounded buffers never evict");
        assert!(!b.is_full());
        assert_eq!(b.total_steps(), 100);
    }

    #[test]
    fn capacity_one_buffer_keeps_only_the_latest_step() {
        let mut b = TimeseriesBuffer::bounded(1);
        assert_eq!(b.capacity(), Some(1));
        assert!(!b.is_full());
        b.push(1, 0.3);
        assert!(b.is_full());
        assert_eq!(b.outcomes(), vec![1]);
        b.push(2, 0.7);
        assert_eq!(b.len(), 1);
        assert_eq!(b.outcomes(), vec![2]);
        assert_eq!(b.uncertainties(), vec![0.7]);
        assert_eq!(b.unique_outcomes(), 1);
        assert_eq!(b.total_steps(), 2, "eviction must not shrink i + 1");
        assert_eq!(b.fused_outcome(), Some(2));
    }

    #[test]
    fn bounded_buffer_wraps_after_exactly_capacity_pushes() {
        let cap = 5;
        let mut b = TimeseriesBuffer::bounded(cap);
        for i in 0..cap as u32 {
            assert!(!b.is_full(), "not full before push {i}");
            b.push(i, i as f64 / 10.0);
        }
        // After exactly `capacity` pushes: full, nothing evicted yet.
        assert!(b.is_full());
        assert_eq!(b.len(), cap);
        assert_eq!(b.outcomes(), vec![0, 1, 2, 3, 4]);
        // Push `capacity + 1` wraps around: oldest entry leaves, temporal
        // order of the survivors is preserved.
        b.push(99, 0.9);
        assert_eq!(b.len(), cap);
        assert_eq!(b.outcomes(), vec![1, 2, 3, 4, 99]);
        assert_eq!(b.iter().next().unwrap().outcome, 1);
        assert!((b.uncertainties()[4] - 0.9).abs() < 1e-15);
        assert_eq!(b.total_steps(), 6);
    }

    #[test]
    fn ring_slices_cover_the_window_in_temporal_order() {
        let mut b = TimeseriesBuffer::bounded(3);
        for i in 0..5u32 {
            b.push(i, 0.1);
        }
        let (front, tail) = b.as_slices();
        let stitched: Vec<u32> = front.iter().chain(tail).map(|e| e.outcome).collect();
        assert_eq!(stitched, vec![2, 3, 4]);
        assert_eq!(b.iter().count(), 3);
        let reversed: Vec<u32> = b.iter().rev().map(|e| e.outcome).collect();
        assert_eq!(reversed, vec![4, 3, 2]);
    }

    #[test]
    fn taqf_on_a_not_yet_full_bounded_buffer_uses_the_true_length() {
        use crate::taqf::TaqfVector;
        let mut b = TimeseriesBuffer::bounded(10);
        b.push(7, 0.2);
        b.push(3, 0.4);
        b.push(7, 0.0);
        assert!(!b.is_full());
        let taqf = TaqfVector::compute(&b, 7).expect("non-empty buffer");
        // length is the number of buffered steps, not the capacity.
        assert_eq!(taqf.length, 3.0);
        assert!((taqf.ratio - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(taqf.unique_outcomes, 2.0);
        assert!((taqf.cumulative_certainty - 1.8).abs() < 1e-12);
    }

    #[test]
    fn bounded_buffer_clear_resets_but_keeps_the_bound() {
        let mut b = TimeseriesBuffer::bounded(2);
        b.push(1, 0.1);
        b.push(2, 0.2);
        b.push(3, 0.3);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), Some(2));
        assert_eq!(b.total_steps(), 0);
        b.push(4, 0.4);
        b.push(5, 0.5);
        b.push(6, 0.6);
        assert_eq!(b.outcomes(), vec![5, 6]);
        assert_eq!(b.total_steps(), 3);
    }

    #[test]
    fn extend_respects_the_bound() {
        let mut b = TimeseriesBuffer::bounded(2);
        b.extend((0..5).map(|i| BufferEntry {
            outcome: i,
            uncertainty: 0.1,
        }));
        assert_eq!(b.outcomes(), vec![3, 4]);
    }

    #[test]
    fn fused_outcome_matches_the_reference_vote() {
        let mut b = TimeseriesBuffer::new();
        for (o, u) in [(1, 0.1), (2, 0.2), (2, 0.3), (1, 0.4), (3, 0.0)] {
            b.push(o, u);
            assert_eq!(b.fused_outcome(), b.fused_outcome_reference());
        }
        // Tie between 1 and 2 (two each): most recent occurrence wins.
        assert_eq!(b.agreement_count(1), 2);
        assert_eq!(b.agreement_count(2), 2);
        assert_eq!(b.fused_outcome(), Some(1));
    }

    #[test]
    fn fused_outcome_tracks_eviction() {
        let mut b = TimeseriesBuffer::bounded(3);
        b.push(7, 0.1);
        b.push(7, 0.1);
        b.push(3, 0.1);
        assert_eq!(b.fused_outcome(), Some(7));
        b.push(3, 0.1); // evicts a 7: now {7, 3, 3}
        assert_eq!(b.fused_outcome(), Some(3));
        assert_eq!(b.fused_outcome(), b.fused_outcome_reference());
        b.push(5, 0.1); // evicts a 7: now {3, 3, 5}
        assert_eq!(b.fused_outcome(), Some(3));
        assert_eq!(b.unique_outcomes(), 2);
    }

    #[test]
    fn aggregates_drain_exactly_on_eviction() {
        let mut b = TimeseriesBuffer::bounded(2);
        b.push(1, 0.123456);
        b.push(1, 0.654321);
        b.push(2, 0.5); // evicts the first 1
        b.push(2, 0.5); // evicts the second 1
        assert_eq!(b.agreement_count(1), 0);
        assert_eq!(b.certainty_units_sum(1), 0, "exact sums drain to zero");
        assert_eq!(b.unique_outcomes(), 1);
    }

    #[test]
    fn semantic_equality_ignores_ring_rotation() {
        // Same window contents via different histories.
        let mut a = TimeseriesBuffer::bounded(2);
        a.push(9, 0.9); // will be evicted
        a.push(1, 0.1);
        a.push(2, 0.2);
        let mut b = TimeseriesBuffer::bounded(2);
        b.push(8, 0.8); // will be evicted
        b.push(1, 0.1);
        b.push(2, 0.2);
        assert_eq!(a, b);
        let mut c = TimeseriesBuffer::bounded(2);
        c.push(1, 0.1);
        c.push(2, 0.2);
        assert_ne!(a, c, "lifetime counters differ (3 vs 2 steps)");
    }

    #[test]
    fn from_parts_rebuilds_and_validates() {
        let entries = vec![
            BufferEntry {
                outcome: 1,
                uncertainty: 0.25,
            },
            BufferEntry {
                outcome: 2,
                uncertainty: 0.5,
            },
        ];
        let b = TimeseriesBuffer::from_parts(entries.clone(), Some(3), 10).unwrap();
        assert_eq!(b.total_steps(), 10);
        assert_eq!(b.outcomes(), vec![1, 2]);
        assert_eq!(b.fused_outcome(), Some(2));

        let bad_cap = TimeseriesBuffer::from_parts(entries.clone(), Some(0), 10);
        assert!(matches!(bad_cap, Err(CoreError::InvalidInput { .. })));
        let overfull = TimeseriesBuffer::from_parts(entries.clone(), Some(1), 10);
        assert!(matches!(overfull, Err(CoreError::InvalidInput { .. })));
        let short_life = TimeseriesBuffer::from_parts(entries.clone(), None, 1);
        assert!(matches!(short_life, Err(CoreError::InvalidInput { .. })));
        let out_of_range = TimeseriesBuffer::from_parts(
            vec![BufferEntry {
                outcome: 1,
                uncertainty: 7.0,
            }],
            None,
            1,
        );
        assert!(matches!(out_of_range, Err(CoreError::InvalidInput { .. })));
        let non_finite = TimeseriesBuffer::from_parts(
            vec![BufferEntry {
                outcome: 1,
                uncertainty: f64::NAN,
            }],
            None,
            1,
        );
        assert!(matches!(non_finite, Err(CoreError::InvalidInput { .. })));
    }

    #[test]
    fn serde_roundtrip_preserves_semantics_even_mid_wrap() {
        let mut b = TimeseriesBuffer::bounded(3);
        for i in 0..7u32 {
            b.push(i % 2, 0.1 * f64::from(i));
        }
        let back = TimeseriesBuffer::deserialize(&b.serialize()).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.total_steps(), 7);
        assert_eq!(back.fused_outcome(), b.fused_outcome());
        // Future behavior matches too: same pushes, same aggregates.
        let mut a = b.clone();
        let mut c = back;
        for i in 0..5u32 {
            a.push(i, 0.3);
            c.push(i, 0.3);
            assert_eq!(a, c);
            assert_eq!(a.fused_outcome(), c.fused_outcome());
            assert_eq!(
                a.certainty_units_sum(a.fused_outcome().unwrap()),
                c.certainty_units_sum(c.fused_outcome().unwrap())
            );
        }
    }

    #[test]
    fn serde_rejects_invariant_violations() {
        // A crafted payload must not bypass the push invariants.
        let good = TimeseriesBuffer::deserialize(&{
            let mut b = TimeseriesBuffer::bounded(2);
            b.push(1, 0.5);
            b.serialize()
        });
        assert!(good.is_ok());

        let craft = |entries: serde::Value, capacity: serde::Value, total: serde::Value| {
            serde::Value::Map(vec![
                ("entries".to_string(), entries),
                ("capacity".to_string(), capacity),
                ("total_steps".to_string(), total),
            ])
        };
        let entry = |u: serde::Value| {
            serde::Value::Map(vec![
                ("outcome".to_string(), serde::Value::I64(1)),
                ("uncertainty".to_string(), u),
            ])
        };
        // Uncertainty outside [0, 1].
        let bad = craft(
            serde::Value::Seq(vec![entry(serde::Value::F64(7.0))]),
            serde::Value::Null,
            serde::Value::I64(1),
        );
        assert!(TimeseriesBuffer::deserialize(&bad).is_err());
        // Non-finite uncertainty (JSON null → NaN).
        let bad = craft(
            serde::Value::Seq(vec![entry(serde::Value::Null)]),
            serde::Value::Null,
            serde::Value::I64(1),
        );
        assert!(TimeseriesBuffer::deserialize(&bad).is_err());
        // More entries than the declared capacity.
        let bad = craft(
            serde::Value::Seq(vec![
                entry(serde::Value::F64(0.1)),
                entry(serde::Value::F64(0.2)),
            ]),
            serde::Value::I64(1),
            serde::Value::I64(2),
        );
        assert!(TimeseriesBuffer::deserialize(&bad).is_err());
        // Zero capacity.
        let bad = craft(
            serde::Value::Seq(vec![]),
            serde::Value::I64(0),
            serde::Value::I64(0),
        );
        assert!(TimeseriesBuffer::deserialize(&bad).is_err());
        // Lifetime counter smaller than the window.
        let bad = craft(
            serde::Value::Seq(vec![entry(serde::Value::F64(0.1))]),
            serde::Value::Null,
            serde::Value::I64(0),
        );
        assert!(TimeseriesBuffer::deserialize(&bad).is_err());
    }
}
