//! Scope compliance model.
//!
//! The uncertainty wrapper framework combines the quality impact model with
//! a *scope compliance* model that estimates the probability that the DDM
//! is being used outside its target application scope (TAS). The paper's
//! study omits it ("all datapoints were chosen to be within the target
//! application scope"), but the framework is incomplete without one, so the
//! reproduction ships the standard construction from the framework papers:
//! per-feature boundary checks learned from training data plus a smooth
//! similarity degree.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// Verdict of a scope check for one input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeVerdict {
    /// Whether every feature lies inside the learned boundaries.
    pub in_scope: bool,
    /// Indices of out-of-bounds features.
    pub violations: Vec<usize>,
    /// Similarity degree in `[0, 1]`: 1 inside the scope, decaying
    /// exponentially with the normalized distance outside it. Interpreted
    /// as the scope-compliance probability.
    pub similarity: f64,
}

impl ScopeVerdict {
    /// Scope-related uncertainty `1 − similarity`.
    pub fn scope_uncertainty(&self) -> f64 {
        1.0 - self.similarity
    }
}

/// Boundary-check scope model learned from the training inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeComplianceModel {
    /// Per-feature `(min, max)` boundaries after padding.
    boundaries: Vec<(f64, f64)>,
    feature_names: Vec<String>,
}

impl ScopeComplianceModel {
    /// Learns boundaries from training feature vectors, padding each range
    /// by `padding` × range-width on both sides (padding ≥ 0).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if `rows` is empty or arities
    /// are inconsistent with `feature_names`.
    pub fn fit<'a, I>(rows: I, feature_names: Vec<String>, padding: f64) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let n_features = feature_names.len();
        let mut boundaries = vec![(f64::INFINITY, f64::NEG_INFINITY); n_features];
        let mut count = 0usize;
        for row in rows {
            if row.len() != n_features {
                return Err(CoreError::FeatureArityMismatch {
                    expected: n_features,
                    actual: row.len(),
                });
            }
            for (b, &v) in boundaries.iter_mut().zip(row) {
                b.0 = b.0.min(v);
                b.1 = b.1.max(v);
            }
            count += 1;
        }
        if count == 0 {
            return Err(CoreError::InvalidInput {
                reason: "scope model needs training rows".into(),
            });
        }
        let pad = padding.max(0.0);
        for b in &mut boundaries {
            let width = (b.1 - b.0).max(1e-12);
            b.0 -= pad * width;
            b.1 += pad * width;
        }
        Ok(ScopeComplianceModel {
            boundaries,
            feature_names,
        })
    }

    /// Learned boundaries per feature.
    pub fn boundaries(&self) -> &[(f64, f64)] {
        &self.boundaries
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Checks an input against the scope.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FeatureArityMismatch`] on wrong arity.
    pub fn check(&self, features: &[f64]) -> Result<ScopeVerdict, CoreError> {
        if features.len() != self.boundaries.len() {
            return Err(CoreError::FeatureArityMismatch {
                expected: self.boundaries.len(),
                actual: features.len(),
            });
        }
        let mut violations = Vec::new();
        let mut log_similarity = 0.0;
        for (i, (&v, &(lo, hi))) in features.iter().zip(&self.boundaries).enumerate() {
            if v < lo || v > hi {
                violations.push(i);
                let width = (hi - lo).max(1e-12);
                let dist = if v < lo { lo - v } else { v - hi };
                // Each violated feature multiplies the similarity by
                // exp(−3·normalized distance): one full range-width outside
                // drives compliance to ~5%.
                log_similarity -= 3.0 * dist / width;
            }
        }
        Ok(ScopeVerdict {
            in_scope: violations.is_empty(),
            violations,
            similarity: log_similarity.exp().clamp(0.0, 1.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ScopeComplianceModel {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 100.0, 10.0 + i as f64])
            .collect();
        ScopeComplianceModel::fit(
            rows.iter().map(|r| r.as_slice()),
            vec!["q".into(), "gps".into()],
            0.0,
        )
        .unwrap()
    }

    #[test]
    fn in_scope_inputs_have_full_similarity() {
        let m = model();
        let v = m.check(&[0.5, 50.0]).unwrap();
        assert!(v.in_scope);
        assert!(v.violations.is_empty());
        assert_eq!(v.similarity, 1.0);
        assert_eq!(v.scope_uncertainty(), 0.0);
    }

    #[test]
    fn out_of_scope_inputs_are_flagged() {
        let m = model();
        let v = m.check(&[2.0, 50.0]).unwrap();
        assert!(!v.in_scope);
        assert_eq!(v.violations, vec![0]);
        assert!(v.similarity < 1.0);
    }

    #[test]
    fn similarity_decays_with_distance() {
        let m = model();
        let near = m.check(&[1.05, 50.0]).unwrap().similarity;
        let far = m.check(&[3.0, 50.0]).unwrap().similarity;
        assert!(far < near);
        assert!(near < 1.0);
    }

    #[test]
    fn multiple_violations_compound() {
        let m = model();
        let one = m.check(&[2.0, 50.0]).unwrap().similarity;
        let two = m.check(&[2.0, 500.0]).unwrap().similarity;
        assert!(two < one);
        assert_eq!(m.check(&[2.0, 500.0]).unwrap().violations, vec![0, 1]);
    }

    #[test]
    fn padding_expands_boundaries() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0]];
        let strict =
            ScopeComplianceModel::fit(rows.iter().map(|r| r.as_slice()), vec!["x".into()], 0.0)
                .unwrap();
        let padded =
            ScopeComplianceModel::fit(rows.iter().map(|r| r.as_slice()), vec!["x".into()], 0.2)
                .unwrap();
        assert!(!strict.check(&[1.1]).unwrap().in_scope);
        assert!(padded.check(&[1.1]).unwrap().in_scope);
    }

    #[test]
    fn empty_training_is_rejected() {
        let rows: Vec<Vec<f64>> = vec![];
        assert!(matches!(
            ScopeComplianceModel::fit(rows.iter().map(|r| r.as_slice()), vec!["x".into()], 0.0),
            Err(CoreError::InvalidInput { .. })
        ));
    }

    #[test]
    fn arity_mismatches_are_rejected() {
        let m = model();
        assert!(m.check(&[0.5]).is_err());
        let rows = [vec![1.0, 2.0, 3.0]];
        assert!(ScopeComplianceModel::fit(
            rows.iter().map(|r| r.as_slice()),
            vec!["a".into()],
            0.0
        )
        .is_err());
    }
}
