//! Flattened struct-of-arrays inference representation.
//!
//! A trained [`DecisionTree`] is a pointer-style arena: every routing step
//! loads a whole [`crate::tree::Node`] (statistics included) just to read a
//! feature index and a threshold. This module lowers a tree into a
//! [`FlatTree`]: contiguous per-node arrays (feature index, threshold,
//! child offsets) plus a dense table of leaf payloads, so the per-sample
//! hot path touches only the three small arrays it actually needs.
//!
//! Two properties make the flat form the serving representation:
//!
//! * **Stable leaf IDs.** Reachable leaves are numbered `0..n_leaves` in
//!   depth-first (left-before-right) order — the same order
//!   [`DecisionTree::leaf_ids`] reports. A [`LeafId`] is therefore a dense
//!   array index, which lets callers attach per-leaf metadata (calibrated
//!   uncertainty bounds, routing counters) as plain `Vec`s instead of
//!   node-indexed option tables. Leaf identity — not just the leaf's
//!   probability — is the semantic unit of a tree-backed uncertainty
//!   estimate, so it gets a first-class, cheap representation.
//! * **Bit-identical routing.** [`FlatTree::predict_leaf_id`] reproduces
//!   [`DecisionTree::leaf_id`] exactly, including the `<=`-goes-left
//!   boundary rule and NaN queries routing right. [`FlatTree::predict`]
//!   and [`FlatTree::predict_proba`] recompute the leaf payload with the
//!   same arithmetic as the pointer tree, so every flat prediction is
//!   bit-for-bit equal to its pointer counterpart (asserted by the
//!   determinism suite and by proptests over random trees).

use crate::error::DtreeError;
use crate::tree::{DecisionTree, NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// Dense, stable identifier of a reachable leaf: its position in the
/// depth-first (left-before-right) leaf order, i.e. `flat.leaf(k).node_id
/// == tree.leaf_ids()[k]`.
pub type LeafId = u32;

/// Sentinel in the `feature` array marking a leaf node.
const LEAF_SENTINEL: u32 = u32::MAX;

/// Payload of one reachable leaf, retained for transparency and for
/// recomputing class predictions exactly as the pointer tree does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatLeaf {
    /// Arena id of this leaf in the source [`DecisionTree`].
    pub node_id: NodeId,
    /// Number of training samples that reached this leaf.
    pub n: u64,
    /// Per-class training sample counts at this leaf.
    pub counts: Vec<u64>,
    /// Majority class (ties broken by the lowest class id, matching
    /// [`DecisionTree::predict`]).
    pub class: u32,
}

impl FlatLeaf {
    /// Class probabilities at this leaf — training-count proportions,
    /// computed exactly like [`DecisionTree::predict_proba`].
    pub fn proba(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.counts.len());
        self.proba_into(&mut out);
        out
    }

    /// Appends the class probabilities to `out` (one entry per class), the
    /// allocation-free form of [`FlatLeaf::proba`] for callers that reuse a
    /// buffer across lookups. Same arithmetic, bit-identical values.
    pub fn proba_into(&self, out: &mut Vec<f64>) {
        let total = self.n.max(1) as f64;
        out.extend(self.counts.iter().map(|&c| c as f64 / total));
    }
}

/// A compiled, struct-of-arrays lowering of a trained [`DecisionTree`].
///
/// Nodes are renumbered in depth-first pre-order (left before right),
/// dropping any arena entries unreachable from the root, and split into
/// parallel arrays: `feature[i]` (or a leaf sentinel), `threshold[i]`, and
/// a 2-wide `children` table indexed by the branch direction. Routing is a
/// tight loop of one comparison and one indexed load per level.
///
/// # Examples
///
/// ```
/// use tauw_dtree::flat::FlatTree;
/// use tauw_dtree::{Dataset, TreeBuilder};
///
/// let mut ds = Dataset::new(vec!["x".into()], 2)?;
/// for i in 0..100 {
///     ds.push_row(&[i as f64], u32::from(i >= 50))?;
/// }
/// let tree = TreeBuilder::new().max_depth(3).fit(&ds)?;
/// let flat = FlatTree::from_tree(&tree);
///
/// // Same routing, same prediction, leaf identity exposed as a dense id.
/// let leaf = flat.predict_leaf_id(&[10.0])?;
/// assert_eq!(flat.leaf(leaf).node_id, tree.leaf_id(&[10.0])?);
/// assert_eq!(flat.predict(&[10.0])?, tree.predict(&[10.0])?);
/// assert_eq!(flat.n_leaves(), tree.n_leaves());
/// # Ok::<(), tauw_dtree::DtreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatTree {
    /// Per-node split feature; `LEAF_SENTINEL` marks a leaf.
    feature: Vec<u32>,
    /// Per-node split threshold (`<=` goes left); unused for leaves.
    threshold: Vec<f64>,
    /// Per-node `[left, right]` child offsets, indexed by the branch
    /// direction bit. For a leaf, both entries hold the [`LeafId`] instead.
    children: Vec<[u32; 2]>,
    /// Leaf payloads indexed by [`LeafId`].
    leaves: Vec<FlatLeaf>,
    n_features: usize,
    n_classes: u32,
}

impl FlatTree {
    /// Lowers a trained tree into the flat form. Only nodes reachable from
    /// the root are emitted; leaf ids follow the depth-first order of
    /// [`DecisionTree::leaf_ids`].
    pub fn from_tree(tree: &DecisionTree) -> Self {
        let mut flat = FlatTree {
            feature: Vec::with_capacity(tree.n_nodes()),
            threshold: Vec::with_capacity(tree.n_nodes()),
            children: Vec::with_capacity(tree.n_nodes()),
            leaves: Vec::new(),
            n_features: tree.n_features(),
            n_classes: tree.n_classes(),
        };
        flat.lower(tree, 0);
        flat
    }

    /// Emits the subtree rooted at arena node `id`, returning its flat
    /// offset. Pre-order, left before right — the same order
    /// [`DecisionTree::compact`] uses, so flat offsets are stable and
    /// readable.
    fn lower(&mut self, tree: &DecisionTree, id: NodeId) -> u32 {
        let slot = self.feature.len();
        self.feature.push(LEAF_SENTINEL);
        self.threshold.push(0.0);
        self.children.push([0, 0]);
        match tree.node(id).kind {
            NodeKind::Leaf => {
                let info = &tree.node(id).info;
                let leaf_id = self.leaves.len() as u32;
                // Majority class with ties to the lowest id — the exact
                // argmax loop of `DecisionTree::predict`.
                let mut class = 0u32;
                let mut best_count = 0u64;
                for (c, &count) in info.counts.iter().enumerate() {
                    if count > best_count {
                        class = c as u32;
                        best_count = count;
                    }
                }
                self.leaves.push(FlatLeaf {
                    node_id: id,
                    n: info.n,
                    counts: info.counts.clone(),
                    class,
                });
                self.children[slot] = [leaf_id, leaf_id];
            }
            NodeKind::Internal {
                feature,
                threshold,
                left,
                right,
            } => {
                self.feature[slot] = feature as u32;
                self.threshold[slot] = threshold;
                let flat_left = self.lower(tree, left);
                let flat_right = self.lower(tree, right);
                self.children[slot] = [flat_left, flat_right];
            }
        }
        slot as u32
    }

    /// Number of features the source tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// Number of nodes in the flat form (reachable nodes only).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of leaves, i.e. the exclusive upper bound of the dense
    /// [`LeafId`] range.
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Payload of a leaf.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn leaf(&self, id: LeafId) -> &FlatLeaf {
        &self.leaves[id as usize]
    }

    /// All leaf payloads, indexed by [`LeafId`].
    pub fn leaves(&self) -> &[FlatLeaf] {
        &self.leaves
    }

    /// Routes a feature vector to its leaf: one comparison and one indexed
    /// load per level. This is the single traversal routine behind every
    /// flat prediction (and, via `tauw-core`, behind every wrapper/session/
    /// engine step).
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if `x` has the wrong
    /// number of features.
    pub fn predict_leaf_id(&self, x: &[f64]) -> Result<LeafId, DtreeError> {
        self.check_arity(x.len())?;
        Ok(self.route(x))
    }

    /// Majority-class prediction at the leaf reached by `x` — bit-identical
    /// to [`DecisionTree::predict`].
    ///
    /// # Errors
    ///
    /// Same as [`FlatTree::predict_leaf_id`].
    pub fn predict(&self, x: &[f64]) -> Result<u32, DtreeError> {
        Ok(self.leaf(self.predict_leaf_id(x)?).class)
    }

    /// Class probabilities at the leaf reached by `x` — bit-identical to
    /// [`DecisionTree::predict_proba`].
    ///
    /// # Errors
    ///
    /// Same as [`FlatTree::predict_leaf_id`].
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, DtreeError> {
        let mut out = Vec::with_capacity(self.n_classes as usize);
        self.predict_proba_into(x, &mut out)?;
        Ok(out)
    }

    /// Appends the class probabilities at the leaf reached by `x` to `out`
    /// — the allocation-free form of [`FlatTree::predict_proba`], same
    /// values bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same as [`FlatTree::predict_leaf_id`]; `out` is untouched on error.
    pub fn predict_proba_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), DtreeError> {
        self.leaf(self.predict_leaf_id(x)?).proba_into(out);
        Ok(())
    }

    /// Batch-major leaf routing: advances the whole wave of `rows` one
    /// level at a time through the SoA node tables, writing each row's
    /// [`LeafId`] to the matching `out` slot. Arity is validated while the
    /// wave is seeded, so the batch is walked exactly once.
    ///
    /// Level-synchronous traversal touches each node level's `feature`/
    /// `threshold`/`children` entries for every pending row before moving
    /// deeper, so node data stays hot across the batch instead of being
    /// re-fetched per sample. Each row still takes exactly the comparisons
    /// of [`FlatTree::predict_leaf_id`] in the same order, so the routed
    /// leaf ids are bit-identical to per-sample routing by construction.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] on the first row (in
    /// input order) with the wrong number of features; `out` contents are
    /// unspecified after an error.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows.len()`.
    pub fn route_batch_into<R>(&self, rows: &[R], out: &mut [LeafId]) -> Result<(), DtreeError>
    where
        R: AsRef<[f64]>,
    {
        assert_eq!(
            rows.len(),
            out.len(),
            "route_batch_into: out must hold exactly one LeafId per row"
        );
        // Seed the wave: `out[i]` holds row i's node cursor while routing.
        // Validation happens during seeding — one pass over the batch.
        for (row, cursor) in rows.iter().zip(out.iter_mut()) {
            self.check_arity(row.as_ref().len())?;
            *cursor = 0;
        }
        // Advance the whole wave one level per pass until every cursor
        // rests on a leaf. A single-leaf tree skips the loop entirely.
        let mut pending = if self.feature[0] == LEAF_SENTINEL {
            0
        } else {
            rows.len()
        };
        while pending > 0 {
            pending = 0;
            for (row, cursor) in rows.iter().zip(out.iter_mut()) {
                let node = *cursor as usize;
                let feature = self.feature[node];
                if feature == LEAF_SENTINEL {
                    continue;
                }
                let go_left = row.as_ref()[feature as usize] <= self.threshold[node];
                let next = self.children[node][usize::from(!go_left)];
                *cursor = next;
                pending += usize::from(self.feature[next as usize] != LEAF_SENTINEL);
            }
        }
        // Resolve node cursors to dense leaf ids.
        for cursor in out.iter_mut() {
            *cursor = self.children[*cursor as usize][0];
        }
        Ok(())
    }

    /// Batched leaf routing: appends one [`LeafId`] per row to `out`, in
    /// input order, fanning contiguous row chunks out over up to `threads`
    /// workers (the deterministic chunking of
    /// [`parallel::par_zip_chunks_mut`], so the result is identical for
    /// every thread budget). Each chunk validates and routes in one pass
    /// via the batch-major [`FlatTree::route_batch_into`] wave, writing
    /// leaf ids straight into `out` — no intermediate buffer.
    ///
    /// On error `out` is untouched (observably: the appended region is
    /// rolled back before returning), and the reported error is the first
    /// offending row in input order.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if any row has the
    /// wrong number of features.
    pub fn predict_leaf_ids_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        out: &mut Vec<LeafId>,
    ) -> Result<(), DtreeError>
    where
        R: AsRef<[f64]> + Sync,
    {
        let start = out.len();
        out.resize(start + rows.len(), 0);
        let chunk_results =
            parallel::par_zip_chunks_mut(threads, rows, &mut out[start..], 1, |chunk, slots| {
                self.route_batch_into(chunk, slots)
            });
        // Chunks are contiguous and reported in order, and the wave
        // validates rows left-to-right, so the first chunk error is the
        // globally first offending row — matching the per-sample contract.
        if let Some(err) = chunk_results.into_iter().find_map(Result::err) {
            out.truncate(start);
            return Err(err);
        }
        Ok(())
    }

    /// Allocating convenience around [`FlatTree::predict_leaf_ids_into`].
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if any row has the
    /// wrong number of features.
    pub fn predict_leaf_ids<R>(&self, threads: usize, rows: &[R]) -> Result<Vec<LeafId>, DtreeError>
    where
        R: AsRef<[f64]> + Sync,
    {
        let mut out = Vec::with_capacity(rows.len());
        self.predict_leaf_ids_into(threads, rows, &mut out)?;
        Ok(out)
    }

    /// The branch-light traversal core. `x` must have the right arity.
    ///
    /// The direction bit mirrors the pointer tree exactly: `x[f] <= t`
    /// goes left, everything else — including NaN — goes right.
    /// `pub(crate)` so the forest's interleaved batch pass can route an
    /// already-validated row through each member without re-checking arity.
    pub(crate) fn route(&self, x: &[f64]) -> LeafId {
        let mut node = 0usize;
        let mut feature = self.feature[0];
        while feature != LEAF_SENTINEL {
            let go_left = x[feature as usize] <= self.threshold[node];
            node = self.children[node][usize::from(!go_left)] as usize;
            feature = self.feature[node];
        }
        self.children[node][0]
    }

    pub(crate) fn check_arity(&self, actual: usize) -> Result<(), DtreeError> {
        if actual != self.n_features {
            return Err(DtreeError::PredictArityMismatch {
                expected: self.n_features,
                actual,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::data::Dataset;
    use crate::tree::{Node, NodeInfo};

    /// The same hand-made tree as the `tree` module tests:
    ///
    /// ```text
    ///        [0] f0 <= 1.0
    ///        /          \
    ///   [1] leaf     [2] f1 <= 5.0
    ///                 /        \
    ///            [3] leaf   [4] leaf
    /// ```
    fn toy_tree() -> DecisionTree {
        let mk_info = |n: u64, counts: Vec<u64>, depth: usize| NodeInfo {
            n,
            counts,
            impurity: 0.5,
            depth,
        };
        let nodes = vec![
            Node {
                info: mk_info(10, vec![5, 5], 0),
                kind: NodeKind::Internal {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
            },
            Node {
                info: mk_info(4, vec![4, 0], 1),
                kind: NodeKind::Leaf,
            },
            Node {
                info: mk_info(6, vec![1, 5], 1),
                kind: NodeKind::Internal {
                    feature: 1,
                    threshold: 5.0,
                    left: 3,
                    right: 4,
                },
            },
            Node {
                info: mk_info(3, vec![1, 2], 2),
                kind: NodeKind::Leaf,
            },
            Node {
                info: mk_info(3, vec![0, 3], 2),
                kind: NodeKind::Leaf,
            },
        ];
        DecisionTree::from_parts(nodes, 2, 2, vec!["f0".into(), "f1".into()]).unwrap()
    }

    #[test]
    fn leaf_ids_are_dense_and_depth_first() {
        let tree = toy_tree();
        let flat = FlatTree::from_tree(&tree);
        assert_eq!(flat.n_nodes(), 5);
        assert_eq!(flat.n_leaves(), 3);
        let node_ids: Vec<NodeId> = flat.leaves().iter().map(|l| l.node_id).collect();
        assert_eq!(node_ids, tree.leaf_ids(), "leaf order matches the DFS");
        assert_eq!(flat.leaf(0).node_id, 1);
        assert_eq!(flat.leaf(1).node_id, 3);
        assert_eq!(flat.leaf(2).node_id, 4);
    }

    #[test]
    fn routing_matches_the_pointer_tree_including_boundaries() {
        let tree = toy_tree();
        let flat = FlatTree::from_tree(&tree);
        for q in [
            [0.5, 0.0],
            [1.0, 0.0], // <= goes left at the boundary
            [2.0, 4.0],
            [2.0, 5.0],
            [2.0, 6.0],
            [f64::NAN, 6.0], // NaN routes right, like the pointer tree
            [2.0, f64::NAN],
        ] {
            let lid = flat.predict_leaf_id(&q).unwrap();
            assert_eq!(flat.leaf(lid).node_id, tree.leaf_id(&q).unwrap(), "{q:?}");
            assert_eq!(flat.predict(&q).unwrap(), tree.predict(&q).unwrap());
            let fp = flat.predict_proba(&q).unwrap();
            let tp = tree.predict_proba(&q).unwrap();
            assert_eq!(fp.len(), tp.len());
            for (a, b) in fp.iter().zip(&tp) {
                assert_eq!(a.to_bits(), b.to_bits(), "{q:?}");
            }
        }
    }

    #[test]
    fn degenerate_single_leaf_tree_flattens() {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        ds.push_row(&[1.0], 1).unwrap();
        let tree = TreeBuilder::new().fit(&ds).unwrap();
        let flat = FlatTree::from_tree(&tree);
        assert_eq!(flat.n_nodes(), 1);
        assert_eq!(flat.n_leaves(), 1);
        assert_eq!(flat.predict_leaf_id(&[123.0]).unwrap(), 0);
        assert_eq!(flat.predict(&[-5.0]).unwrap(), 1);
    }

    #[test]
    fn unreachable_arena_nodes_are_dropped() {
        let mut tree = toy_tree();
        tree.collapse_to_leaf(2); // nodes 3 and 4 become unreachable
        let flat = FlatTree::from_tree(&tree);
        assert_eq!(flat.n_nodes(), 3, "only reachable nodes are lowered");
        assert_eq!(flat.n_leaves(), 2);
        assert_eq!(flat.leaf(1).node_id, 2);
        assert_eq!(
            flat.leaf(flat.predict_leaf_id(&[2.0, 6.0]).unwrap())
                .node_id,
            tree.leaf_id(&[2.0, 6.0]).unwrap()
        );
    }

    #[test]
    fn batched_routing_is_order_preserving_for_every_thread_budget() {
        let tree = toy_tree();
        let flat = FlatTree::from_tree(&tree);
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![(i % 5) as f64, (i % 11) as f64])
            .collect();
        let serial = flat.predict_leaf_ids(1, &rows).unwrap();
        assert_eq!(serial.len(), rows.len());
        for (row, &lid) in rows.iter().zip(&serial) {
            assert_eq!(flat.leaf(lid).node_id, tree.leaf_id(row).unwrap());
        }
        for threads in [2usize, 4, 8] {
            assert_eq!(flat.predict_leaf_ids(threads, &rows).unwrap(), serial);
        }
        // `_into` appends without clobbering.
        let mut out = vec![99u32];
        flat.predict_leaf_ids_into(4, &rows, &mut out).unwrap();
        assert_eq!(out[0], 99);
        assert_eq!(&out[1..], serial.as_slice());
    }

    #[test]
    fn arity_mismatch_is_rejected_before_any_work() {
        let flat = FlatTree::from_tree(&toy_tree());
        assert!(matches!(
            flat.predict_leaf_id(&[1.0]),
            Err(DtreeError::PredictArityMismatch {
                expected: 2,
                actual: 1
            })
        ));
        let rows = vec![vec![1.0, 2.0], vec![1.0]];
        let mut out = Vec::new();
        assert!(flat.predict_leaf_ids_into(4, &rows, &mut out).is_err());
        assert!(out.is_empty(), "failed batch must not write partial output");
        // Pre-existing content survives a failed batch too.
        let mut out = vec![42u32];
        assert!(flat.predict_leaf_ids_into(4, &rows, &mut out).is_err());
        assert_eq!(out, vec![42], "error must roll back to the prior content");
    }

    #[test]
    fn batched_errors_report_the_first_offending_row() {
        let flat = FlatTree::from_tree(&toy_tree());
        // Bad rows in chunks 2 and 0 (at threads=4 the 8-row batch splits
        // into chunks of 2): the reported arity must come from the earliest
        // bad row in *input* order, not whichever chunk finishes first.
        let mut rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 0.0]).collect();
        rows[5] = vec![1.0, 2.0, 3.0];
        rows[1] = vec![1.0];
        for threads in [1usize, 2, 4, 8] {
            let mut out = Vec::new();
            match flat.predict_leaf_ids_into(threads, &rows, &mut out) {
                Err(DtreeError::PredictArityMismatch { actual, .. }) => {
                    assert_eq!(actual, 1, "threads={threads}: first bad row is row 1");
                }
                other => panic!("expected arity error, got {other:?}"),
            }
        }
    }

    #[test]
    fn wave_routing_matches_per_sample_routing_bitwise() {
        let tree = toy_tree();
        let flat = FlatTree::from_tree(&tree);
        let rows: Vec<Vec<f64>> = (0..97)
            .map(|i| {
                let a = if i % 13 == 0 {
                    f64::NAN
                } else {
                    (i % 5) as f64
                };
                let b = if i % 17 == 0 {
                    f64::NAN
                } else {
                    (i % 11) as f64
                };
                vec![a, b]
            })
            .collect();
        let mut wave = vec![0u32; rows.len()];
        flat.route_batch_into(&rows, &mut wave).unwrap();
        for (row, &lid) in rows.iter().zip(&wave) {
            assert_eq!(lid, flat.predict_leaf_id(row).unwrap());
        }
    }

    #[test]
    fn wave_routing_handles_single_leaf_and_ragged_batches() {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        ds.push_row(&[1.0], 1).unwrap();
        let flat = FlatTree::from_tree(&TreeBuilder::new().fit(&ds).unwrap());
        assert_eq!(flat.n_leaves(), 1);
        // Batch sizes 0, 1, and many against the degenerate root-leaf tree.
        let empty: Vec<Vec<f64>> = Vec::new();
        flat.route_batch_into(&empty, &mut []).unwrap();
        let mut one = [99u32];
        flat.route_batch_into(&[vec![5.0]], &mut one).unwrap();
        assert_eq!(one, [0]);
        let rows: Vec<Vec<f64>> = (0..33).map(|i| vec![i as f64]).collect();
        let mut many = vec![7u32; rows.len()];
        flat.route_batch_into(&rows, &mut many).unwrap();
        assert!(many.iter().all(|&l| l == 0));
        assert_eq!(flat.predict_leaf_ids(4, &empty).unwrap(), Vec::<u32>::new());
        assert_eq!(flat.predict_leaf_ids(4, &rows).unwrap(), many);
    }

    #[test]
    fn predict_proba_into_appends_without_allocating_results() {
        let flat = FlatTree::from_tree(&toy_tree());
        let mut out = vec![0.5f64];
        flat.predict_proba_into(&[0.0, 0.0], &mut out).unwrap();
        let direct = flat.predict_proba(&[0.0, 0.0]).unwrap();
        assert_eq!(out[0], 0.5, "append semantics keep prior content");
        assert_eq!(&out[1..], direct.as_slice());
        // Error leaves the buffer untouched.
        let before = out.clone();
        assert!(flat.predict_proba_into(&[0.0], &mut out).is_err());
        assert_eq!(out, before);
    }

    #[test]
    fn serde_roundtrip_preserves_routing() {
        let tree = toy_tree();
        let flat = FlatTree::from_tree(&tree);
        let json = serde_json::to_string(&flat).unwrap();
        let back: FlatTree = serde_json::from_str(&json).unwrap();
        assert_eq!(flat, back);
        for q in [[0.0, 0.0], [2.0, 4.0], [2.0, 9.0]] {
            assert_eq!(
                flat.predict_leaf_id(&q).unwrap(),
                back.predict_leaf_id(&q).unwrap()
            );
        }
    }

    #[test]
    fn trained_tree_agrees_everywhere_on_a_grid() {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], 3).unwrap();
        for i in 0..300 {
            let a = (i % 17) as f64 / 17.0;
            let b = (i % 13) as f64 / 13.0;
            ds.push_row(&[a, b], (i % 3) as u32).unwrap();
        }
        let tree = TreeBuilder::new().max_depth(6).fit(&ds).unwrap();
        let flat = FlatTree::from_tree(&tree);
        for i in 0..40 {
            for j in 0..40 {
                let q = [i as f64 / 39.0, j as f64 / 39.0];
                let lid = flat.predict_leaf_id(&q).unwrap();
                assert_eq!(flat.leaf(lid).node_id, tree.leaf_id(&q).unwrap());
                assert_eq!(flat.predict(&q).unwrap(), tree.predict(&q).unwrap());
            }
        }
    }
}
