//! Bootstrap tree ensembles: many CART trees, one smoother estimate.
//!
//! A single decision tree partitions the feature space with hard axis
//! splits, so any estimate attached to its leaves jumps discontinuously at
//! the split thresholds. Gerber, Jöckel & Kläs ("A Study on Mitigating
//! Hard Boundaries of Decision-Tree-based Uncertainty Estimates for AI
//! Models") show that *ensembles* of trees mitigate this: each member draws
//! its thresholds from a different bootstrap resample, so the averaged
//! estimate steps through many small boundaries instead of a few large
//! ones.
//!
//! This module provides the ensemble machinery the calibrated forest
//! quality impact model in `tauw-core` is built on:
//!
//! * [`ForestBuilder`] — trains `K` trees on **deterministic bootstrap
//!   resamples**: every tree's resample indices come from a private
//!   SplitMix64 stream seeded from `(root seed, tree index)`, and the
//!   per-tree fits fan out over [`parallel::par_map`] with input-order
//!   reduction, so the trained forest is **bit-identical for every thread
//!   budget** (the same contract [`TreeBuilder::fit`] honours).
//! * [`Forest`] — the trained pointer-tree ensemble (the transparent,
//!   reviewable form).
//! * [`FlatForest`] — the compiled serving form: one [`FlatTree`] per
//!   member, with single-sample routing to `K` leaf ids and a
//!   forest-interleaved batch pass ([`FlatForest::predict_leaf_ids`],
//!   row-major `out[row * K + member]`) in which all `K` members share one
//!   walk over the batch, fanned over the thread budget — mirroring the
//!   single-tree serving contract.

use crate::builder::TreeBuilder;
use crate::data::Dataset;
use crate::error::DtreeError;
use crate::flat::{FlatTree, LeafId};
use crate::tree::DecisionTree;
use serde::{Deserialize, Serialize};

/// Minimal SplitMix64 PRNG (Steele et al. 2014), duplicated from
/// `tauw-stats` so `tauw-dtree` stays a leaf crate. Deterministic and more
/// than adequate for bootstrap index resampling; **not** cryptographic.
#[derive(Debug, Clone, Copy)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)` via Lemire's multiply-shift.
    fn next_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// Builder/trainer for [`Forest`]s: `K` trees on deterministic bootstrap
/// resamples of the training data.
///
/// Per-tree hyper-parameters come from a [`TreeBuilder`] template; the
/// forest fans the member fits out over the thread budget (each member fit
/// runs serially — the parallelism is across trees), and the result is
/// bit-identical for every budget because member seeds are derived up
/// front and [`parallel::par_map`] reduces in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestBuilder {
    tree: TreeBuilder,
    n_trees: usize,
    seed: u64,
    n_threads: Option<usize>,
}

impl ForestBuilder {
    /// Creates a builder for `n_trees` members resampled from the root
    /// `seed`, with default [`TreeBuilder`] hyper-parameters.
    pub fn new(n_trees: usize, seed: u64) -> Self {
        ForestBuilder {
            tree: TreeBuilder::new(),
            n_trees,
            seed,
            n_threads: None,
        }
    }

    /// Sets the per-member tree hyper-parameters (criterion, splitter,
    /// depth, leaf minimum). Any thread budget pinned on the template is
    /// ignored: member fits run serially inside the forest fan-out.
    pub fn tree(&mut self, builder: TreeBuilder) -> &mut Self {
        self.tree = builder;
        self
    }

    /// Pins the thread budget for [`ForestBuilder::fit`] (clamped to ≥ 1).
    /// Unpinned builders use [`parallel::max_threads`]. The trained forest
    /// is bit-identical for every budget; only wall time changes.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.n_threads = Some(n.max(1));
        self
    }

    /// Restores the default (process-wide) thread budget.
    pub fn auto_threads(&mut self) -> &mut Self {
        self.n_threads = None;
        self
    }

    /// Trains the forest: member `t` fits on a bootstrap resample
    /// (`data.n_samples()` draws with replacement) whose indices come from
    /// a SplitMix64 stream seeded deterministically from `(seed, t)`.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::EmptyDataset`] if `data` has no samples and
    /// [`DtreeError::InvalidHyperParameter`] if `n_trees` is zero.
    pub fn fit(&self, data: &Dataset) -> Result<Forest, DtreeError> {
        if self.n_trees == 0 {
            return Err(DtreeError::InvalidHyperParameter {
                constraint: "a forest needs at least one tree",
            });
        }
        if data.n_samples() == 0 {
            return Err(DtreeError::EmptyDataset);
        }
        // Derive every member's seed up front, serially, so the fan-out
        // below cannot perturb the resamples regardless of scheduling.
        let mut seeder = SplitMix64::new(self.seed);
        let member_seeds: Vec<u64> = (0..self.n_trees).map(|_| seeder.next_u64()).collect();

        let mut template = self.tree.clone();
        template.threads(1); // parallelism lives across members, not within
        let threads = self.n_threads.unwrap_or_else(parallel::max_threads).max(1);
        let members: Vec<Result<DecisionTree, DtreeError>> =
            parallel::par_map(threads, &member_seeds, |&member_seed| {
                let resample = bootstrap_resample(data, member_seed)?;
                template.fit(&resample)
            });
        let mut trees = Vec::with_capacity(self.n_trees);
        for member in members {
            trees.push(member?);
        }
        Ok(Forest { trees })
    }
}

/// Draws `data.n_samples()` rows with replacement into a fresh dataset.
fn bootstrap_resample(data: &Dataset, seed: u64) -> Result<Dataset, DtreeError> {
    let n = data.n_samples();
    let mut rng = SplitMix64::new(seed);
    let mut resample = Dataset::new(data.feature_names().to_vec(), data.n_classes())?;
    resample.reserve(n);
    for _ in 0..n {
        let i = rng.next_index(n);
        resample.push_row(data.row(i), data.label(i))?;
    }
    Ok(resample)
}

/// A trained bootstrap ensemble of pointer trees — the transparent,
/// reviewable form (each member exports/prints like any
/// [`DecisionTree`]).
///
/// Deserialization funnels through [`Forest::from_trees`], so a crafted
/// payload cannot bypass the non-empty / matching-shape invariants the
/// constructor establishes.
#[derive(Debug, Clone, PartialEq)]
pub struct Forest {
    trees: Vec<DecisionTree>,
}

impl Serialize for Forest {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![("trees".to_string(), self.trees.serialize())])
    }
}

impl Deserialize for Forest {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = serde::__expect_map(value, "Forest")?;
        let trees = Vec::<DecisionTree>::deserialize(serde::__field(map, "trees", "Forest")?)?;
        Forest::from_trees(trees).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl Forest {
    /// Assembles a forest from already-trained trees, validating that the
    /// members agree on feature arity and class count.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::InvalidHyperParameter`] for an empty member
    /// list or members trained on incompatible shapes.
    pub fn from_trees(trees: Vec<DecisionTree>) -> Result<Self, DtreeError> {
        let Some(first) = trees.first() else {
            return Err(DtreeError::InvalidHyperParameter {
                constraint: "a forest needs at least one tree",
            });
        };
        for tree in &trees {
            if tree.n_features() != first.n_features() || tree.n_classes() != first.n_classes() {
                return Err(DtreeError::InvalidHyperParameter {
                    constraint: "all forest members must share feature arity and class count",
                });
            }
        }
        Ok(Forest { trees })
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// All member trees, in training order.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// One member tree.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn tree(&self, t: usize) -> &DecisionTree {
        &self.trees[t]
    }

    /// Consumes the forest, returning the member trees.
    pub fn into_trees(self) -> Vec<DecisionTree> {
        self.trees
    }

    /// Number of features the members were trained on.
    pub fn n_features(&self) -> usize {
        self.trees[0].n_features()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.trees[0].n_classes()
    }
}

/// The compiled serving form of a [`Forest`]: one [`FlatTree`] per member.
///
/// Routing one sample costs exactly `K` flat traversals; per-member leaf
/// ids index the members' dense leaf ranges, so callers attach per-leaf
/// metadata (calibrated bounds) as one plain `Vec` per member — the same
/// leaf-identity contract [`FlatTree`] established, `K` times over.
///
/// # Examples
///
/// ```
/// use tauw_dtree::forest::{FlatForest, ForestBuilder};
/// use tauw_dtree::{Dataset, TreeBuilder};
///
/// let mut ds = Dataset::new(vec!["x".into()], 2)?;
/// for i in 0..200 {
///     ds.push_row(&[i as f64], u32::from(i >= 100))?;
/// }
/// let mut builder = ForestBuilder::new(4, 7);
/// builder.tree(TreeBuilder::new().max_depth(3).clone());
/// let forest = builder.fit(&ds)?;
/// let flat = FlatForest::from_forest(&forest);
///
/// // One sample routes to one leaf id per member tree...
/// let leaves = flat.predict_leaf_ids_per_tree(&[10.0])?;
/// assert_eq!(leaves.len(), 4);
/// for (t, &leaf) in leaves.iter().enumerate() {
///     assert!((leaf as usize) < flat.tree(t).n_leaves());
/// }
/// // ...and the ensemble prediction agrees with the members' majority.
/// assert_eq!(flat.predict(&[10.0])?, 0);
/// assert_eq!(flat.predict(&[190.0])?, 1);
/// # Ok::<(), tauw_dtree::DtreeError>(())
/// ```
///
/// Like [`Forest`], deserialization funnels through the validating
/// [`FlatForest::from_flat_trees`] constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
}

impl Serialize for FlatForest {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![("trees".to_string(), self.trees.serialize())])
    }
}

impl Deserialize for FlatForest {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = serde::__expect_map(value, "FlatForest")?;
        let trees = Vec::<FlatTree>::deserialize(serde::__field(map, "trees", "FlatForest")?)?;
        FlatForest::from_flat_trees(trees).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl FlatForest {
    /// Lowers every member of a trained forest.
    pub fn from_forest(forest: &Forest) -> Self {
        FlatForest {
            trees: forest.trees().iter().map(FlatTree::from_tree).collect(),
        }
    }

    /// Assembles a flat forest from already-lowered members, validating
    /// that they agree on feature arity and class count.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::InvalidHyperParameter`] for an empty member
    /// list or members of incompatible shapes.
    pub fn from_flat_trees(trees: Vec<FlatTree>) -> Result<Self, DtreeError> {
        let Some(first) = trees.first() else {
            return Err(DtreeError::InvalidHyperParameter {
                constraint: "a forest needs at least one tree",
            });
        };
        for tree in &trees {
            if tree.n_features() != first.n_features() || tree.n_classes() != first.n_classes() {
                return Err(DtreeError::InvalidHyperParameter {
                    constraint: "all forest members must share feature arity and class count",
                });
            }
        }
        Ok(FlatForest { trees })
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// All compiled members, in member order.
    pub fn trees(&self) -> &[FlatTree] {
        &self.trees
    }

    /// One compiled member.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn tree(&self, t: usize) -> &FlatTree {
        &self.trees[t]
    }

    /// Number of features the members were trained on.
    pub fn n_features(&self) -> usize {
        self.trees[0].n_features()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.trees[0].n_classes()
    }

    /// Total leaves across all members (the size a per-leaf metadata table
    /// spanning the whole ensemble would have).
    pub fn n_leaves_total(&self) -> usize {
        self.trees.iter().map(FlatTree::n_leaves).sum()
    }

    /// Routes one sample through every member, appending one [`LeafId`]
    /// per member to `out` in member order — the ensemble's per-step
    /// serving primitive (`K` flat traversals, no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if `x` has the wrong
    /// number of features; `out` is untouched on error.
    pub fn predict_leaf_ids_per_tree_into(
        &self,
        x: &[f64],
        out: &mut Vec<LeafId>,
    ) -> Result<(), DtreeError> {
        // One up-front arity check covers every member (shapes agree by
        // construction).
        self.trees[0].predict_leaf_id(x).map(|first| {
            out.reserve(self.trees.len());
            out.push(first);
            for tree in &self.trees[1..] {
                out.push(
                    tree.predict_leaf_id(x)
                        .expect("members share the validated arity"),
                );
            }
        })
    }

    /// Allocating convenience around
    /// [`FlatForest::predict_leaf_ids_per_tree_into`].
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if `x` has the wrong
    /// number of features.
    pub fn predict_leaf_ids_per_tree(&self, x: &[f64]) -> Result<Vec<LeafId>, DtreeError> {
        let mut out = Vec::with_capacity(self.trees.len());
        self.predict_leaf_ids_per_tree_into(x, &mut out)?;
        Ok(out)
    }

    /// Forest-interleaved batch routing: all `K` members share **one pass
    /// over the batch**, writing row `i`'s member-`t` leaf id to
    /// `out[i * K + t]` (row-major). Within the pass rows are outer and
    /// members inner, so each row's features are loaded once and pushed
    /// through every member while still hot — instead of `K` independent
    /// re-walks of the whole batch.
    ///
    /// Arity is validated once per row (members share their shape by
    /// construction), and each member routes with exactly the per-sample
    /// comparisons of [`FlatTree::predict_leaf_id`], so the output is
    /// bit-identical to routing each row through each member individually.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] on the first row (in
    /// input order) with the wrong number of features; `out` contents are
    /// unspecified after an error.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows.len() * self.n_trees()`.
    pub fn route_batch_into<R>(&self, rows: &[R], out: &mut [LeafId]) -> Result<(), DtreeError>
    where
        R: AsRef<[f64]>,
    {
        let k = self.trees.len();
        assert_eq!(
            out.len(),
            rows.len() * k,
            "route_batch_into: out must hold n_trees LeafIds per row"
        );
        for (row, slots) in rows.iter().zip(out.chunks_mut(k)) {
            let x = row.as_ref();
            self.trees[0].check_arity(x.len())?;
            for (tree, slot) in self.trees.iter().zip(slots.iter_mut()) {
                *slot = tree.route(x);
            }
        }
        Ok(())
    }

    /// Batched leaf routing: appends `rows.len() · K` [`LeafId`]s to `out`
    /// in **row-major** order (`out[row * K + member]`), fanning contiguous
    /// row chunks out over up to `threads` workers via
    /// [`parallel::par_zip_chunks_mut`] — so the result is identical for
    /// every thread budget. Each chunk runs the forest-interleaved
    /// [`FlatForest::route_batch_into`] pass, writing straight into `out`.
    ///
    /// On error `out` is untouched (the appended region is rolled back
    /// before returning), and the reported error is the first offending
    /// row in input order.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if any row has the
    /// wrong number of features.
    pub fn predict_leaf_ids_into<R>(
        &self,
        threads: usize,
        rows: &[R],
        out: &mut Vec<LeafId>,
    ) -> Result<(), DtreeError>
    where
        R: AsRef<[f64]> + Sync,
    {
        let k = self.trees.len();
        let start = out.len();
        out.resize(start + rows.len() * k, 0);
        let chunk_results =
            parallel::par_zip_chunks_mut(threads, rows, &mut out[start..], k, |chunk, slots| {
                self.route_batch_into(chunk, slots)
            });
        if let Some(err) = chunk_results.into_iter().find_map(Result::err) {
            out.truncate(start);
            return Err(err);
        }
        Ok(())
    }

    /// Allocating convenience around [`FlatForest::predict_leaf_ids_into`]:
    /// returns the row-major `rows.len() · K` leaf-id table.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if any row has the
    /// wrong number of features.
    pub fn predict_leaf_ids<R>(&self, threads: usize, rows: &[R]) -> Result<Vec<LeafId>, DtreeError>
    where
        R: AsRef<[f64]> + Sync,
    {
        let mut out = Vec::with_capacity(rows.len() * self.trees.len());
        self.predict_leaf_ids_into(threads, rows, &mut out)?;
        Ok(out)
    }

    /// Ensemble prediction: majority vote over the members' leaf classes,
    /// ties broken by the lowest class id (the same tie rule every member
    /// applies internally).
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if `x` has the wrong
    /// number of features.
    pub fn predict(&self, x: &[f64]) -> Result<u32, DtreeError> {
        let mut votes = vec![0u64; self.n_classes() as usize];
        self.trees[0].predict(x).map(|first| {
            votes[first as usize] += 1;
            for tree in &self.trees[1..] {
                let class = tree.predict(x).expect("members share the validated arity");
                votes[class as usize] += 1;
            }
            let mut class = 0u32;
            let mut best = 0u64;
            for (c, &count) in votes.iter().enumerate() {
                if count > best {
                    class = c as u32;
                    best = count;
                }
            }
            class
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failure iff x > 0.5, with a pinch of label noise so bootstrap
    /// resamples actually produce distinct trees.
    fn dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..n {
            let x = i as f64 / n as f64;
            let noisy = i % 37 == 0;
            ds.push_row(&[x], u32::from((x > 0.5) ^ noisy)).unwrap();
        }
        ds
    }

    fn builder(k: usize, seed: u64) -> ForestBuilder {
        let mut b = ForestBuilder::new(k, seed);
        b.tree(TreeBuilder::new().max_depth(4).clone());
        b
    }

    #[test]
    fn forest_training_is_bit_identical_across_thread_budgets() {
        let ds = dataset(400);
        let serial = builder(8, 42).threads(1).fit(&ds).unwrap();
        let serial_json = serde_json::to_string(&serial).unwrap();
        for threads in [2usize, 4, 8] {
            let par = builder(8, 42).threads(threads).fit(&ds).unwrap();
            assert_eq!(serial, par, "threads={threads}");
            assert_eq!(serial_json, serde_json::to_string(&par).unwrap());
        }
    }

    #[test]
    fn bootstrap_members_differ_but_seeds_reproduce() {
        let ds = dataset(400);
        let forest = builder(6, 1).fit(&ds).unwrap();
        assert_eq!(forest.n_trees(), 6);
        assert!(
            forest.trees().windows(2).any(|w| w[0] != w[1]),
            "distinct resamples should yield at least one distinct member"
        );
        let again = builder(6, 1).fit(&ds).unwrap();
        assert_eq!(forest, again, "same root seed, same forest");
        let other = builder(6, 2).fit(&ds).unwrap();
        assert_ne!(forest, other, "different root seed, different resamples");
    }

    #[test]
    fn flat_forest_routing_matches_members_bitwise() {
        let ds = dataset(300);
        let forest = builder(5, 9).fit(&ds).unwrap();
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.n_trees(), 5);
        assert_eq!(flat.n_features(), 1);
        assert_eq!(
            flat.n_leaves_total(),
            forest.trees().iter().map(DecisionTree::n_leaves).sum()
        );
        for i in 0..50 {
            let q = [i as f64 / 49.0];
            let per_tree = flat.predict_leaf_ids_per_tree(&q).unwrap();
            assert_eq!(per_tree.len(), 5);
            for (t, &leaf) in per_tree.iter().enumerate() {
                assert_eq!(
                    flat.tree(t).leaf(leaf).node_id,
                    forest.tree(t).leaf_id(&q).unwrap(),
                    "member {t} x={}",
                    q[0]
                );
            }
        }
    }

    #[test]
    fn batched_routing_is_input_order_for_every_thread_budget() {
        let ds = dataset(300);
        let flat = FlatForest::from_forest(&builder(3, 5).fit(&ds).unwrap());
        let k = flat.n_trees();
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![(i % 13) as f64 / 13.0]).collect();
        let serial = flat.predict_leaf_ids(1, &rows).unwrap();
        assert_eq!(serial.len(), rows.len() * k, "row-major: K entries per row");
        for (i, row) in rows.iter().enumerate() {
            for t in 0..k {
                assert_eq!(
                    serial[i * k + t],
                    flat.tree(t).predict_leaf_id(row).unwrap(),
                    "row {i} member {t}"
                );
            }
        }
        for threads in [2usize, 4, 8] {
            assert_eq!(flat.predict_leaf_ids(threads, &rows).unwrap(), serial);
        }
        // `_into` appends without clobbering, and the interleaved wave
        // agrees with the per-sample per-tree form row by row.
        let mut out = vec![123u32];
        flat.predict_leaf_ids_into(4, &rows, &mut out).unwrap();
        assert_eq!(out[0], 123);
        assert_eq!(&out[1..], serial.as_slice());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                &serial[i * k..(i + 1) * k],
                flat.predict_leaf_ids_per_tree(row).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn interleaved_routing_handles_degenerate_and_ragged_batches() {
        let ds = dataset(200);
        let flat = FlatForest::from_forest(&builder(4, 2).fit(&ds).unwrap());
        let empty: Vec<Vec<f64>> = Vec::new();
        assert_eq!(
            flat.predict_leaf_ids(4, &empty).unwrap(),
            Vec::<LeafId>::new()
        );
        let one = vec![vec![0.25]];
        let routed = flat.predict_leaf_ids(4, &one).unwrap();
        assert_eq!(routed, flat.predict_leaf_ids_per_tree(&one[0]).unwrap());
        // NaN rows route right in every member, same as per-sample routing.
        let nan_rows = vec![vec![f64::NAN], vec![0.75]];
        let routed = flat.predict_leaf_ids(2, &nan_rows).unwrap();
        for (i, row) in nan_rows.iter().enumerate() {
            assert_eq!(
                &routed[i * 4..(i + 1) * 4],
                flat.predict_leaf_ids_per_tree(row).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn ensemble_prediction_follows_the_majority() {
        let ds = dataset(500);
        let flat = FlatForest::from_forest(&builder(9, 3).fit(&ds).unwrap());
        assert_eq!(flat.predict(&[0.05]).unwrap(), 0);
        assert_eq!(flat.predict(&[0.95]).unwrap(), 1);
    }

    #[test]
    fn arity_mismatch_is_rejected_without_partial_output() {
        let ds = dataset(100);
        let flat = FlatForest::from_forest(&builder(2, 1).fit(&ds).unwrap());
        let mut out = vec![7u32];
        assert!(matches!(
            flat.predict_leaf_ids_per_tree_into(&[0.1, 0.2], &mut out),
            Err(DtreeError::PredictArityMismatch {
                expected: 1,
                actual: 2
            })
        ));
        assert_eq!(out, vec![7], "failed routing must not write output");
        assert!(flat.predict(&[0.1, 0.2]).is_err());
        assert!(flat
            .predict_leaf_ids(2, &[vec![0.1], vec![0.1, 0.2]])
            .is_err());
    }

    #[test]
    fn degenerate_configurations_are_rejected() {
        let ds = dataset(50);
        assert!(matches!(
            ForestBuilder::new(0, 1).fit(&ds),
            Err(DtreeError::InvalidHyperParameter { .. })
        ));
        let empty = Dataset::new(vec!["x".into()], 2).unwrap();
        assert_eq!(
            ForestBuilder::new(2, 1).fit(&empty),
            Err(DtreeError::EmptyDataset)
        );
        assert!(matches!(
            Forest::from_trees(Vec::new()),
            Err(DtreeError::InvalidHyperParameter { .. })
        ));
        assert!(matches!(
            FlatForest::from_flat_trees(Vec::new()),
            Err(DtreeError::InvalidHyperParameter { .. })
        ));
    }

    #[test]
    fn from_trees_rejects_mismatched_members() {
        let one = TreeBuilder::new().fit(&dataset(80)).unwrap();
        let mut two_features = Dataset::new(vec!["a".into(), "b".into()], 2).unwrap();
        for i in 0..80 {
            two_features
                .push_row(&[i as f64, 0.0], u32::from(i >= 40))
                .unwrap();
        }
        let other = TreeBuilder::new().fit(&two_features).unwrap();
        assert!(matches!(
            Forest::from_trees(vec![one.clone(), other.clone()]),
            Err(DtreeError::InvalidHyperParameter { .. })
        ));
        assert!(matches!(
            FlatForest::from_flat_trees(vec![
                FlatTree::from_tree(&one),
                FlatTree::from_tree(&other)
            ]),
            Err(DtreeError::InvalidHyperParameter { .. })
        ));
        // A single-member forest is the degenerate-but-valid case.
        let single = Forest::from_trees(vec![one]).unwrap();
        assert_eq!(single.n_trees(), 1);
    }

    #[test]
    fn deserialization_cannot_bypass_constructor_invariants() {
        // An empty member list panics on trees[0] everywhere; the manual
        // Deserialize impls funnel through the validating constructors so
        // a crafted payload is rejected up front (the same pattern the
        // core TimeseriesBuffer uses for its snapshots).
        assert!(serde_json::from_str::<Forest>(r#"{"trees": []}"#).is_err());
        assert!(serde_json::from_str::<FlatForest>(r#"{"trees": []}"#).is_err());

        // Mixed member shapes are rejected the same way.
        let one = TreeBuilder::new().fit(&dataset(60)).unwrap();
        let mut two_features = Dataset::new(vec!["a".into(), "b".into()], 2).unwrap();
        for i in 0..60 {
            two_features
                .push_row(&[i as f64, 0.0], u32::from(i >= 30))
                .unwrap();
        }
        let other = TreeBuilder::new().fit(&two_features).unwrap();
        let mixed = format!(
            r#"{{"trees": [{}, {}]}}"#,
            serde_json::to_string(&one).unwrap(),
            serde_json::to_string(&other).unwrap()
        );
        assert!(serde_json::from_str::<Forest>(&mixed).is_err());
        let mixed_flat = format!(
            r#"{{"trees": [{}, {}]}}"#,
            serde_json::to_string(&FlatTree::from_tree(&one)).unwrap(),
            serde_json::to_string(&FlatTree::from_tree(&other)).unwrap()
        );
        assert!(serde_json::from_str::<FlatForest>(&mixed_flat).is_err());
    }

    #[test]
    fn serde_roundtrip_preserves_routing() {
        let ds = dataset(200);
        let forest = builder(3, 11).fit(&ds).unwrap();
        let flat = FlatForest::from_forest(&forest);
        let forest_back: Forest =
            serde_json::from_str(&serde_json::to_string(&forest).unwrap()).unwrap();
        assert_eq!(forest, forest_back);
        let flat_back: FlatForest =
            serde_json::from_str(&serde_json::to_string(&flat).unwrap()).unwrap();
        assert_eq!(flat, flat_back);
        for q in [[0.1], [0.5], [0.9]] {
            assert_eq!(
                flat.predict_leaf_ids_per_tree(&q).unwrap(),
                flat_back.predict_leaf_ids_per_tree(&q).unwrap()
            );
        }
    }
}
