//! Split search strategies: exact (sort-and-scan over every distinct
//! threshold) and histogram (binned, approximate but much faster on large
//! nodes). The ablation bench `bench_dtree` compares both.
//!
//! The search can fan out across features on a thread budget
//! ([`find_best_split_with_threads`]). Per-feature candidates are computed
//! independently and reduced sequentially in feature order with the same
//! comparison as the serial loop, so the selected split is **bit-identical**
//! for every thread count.

use crate::criterion::SplitCriterion;
use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Below this node workload (`samples × features`) the parallel fan-out is
/// pure overhead and the search stays serial regardless of budget.
const PARALLEL_SPLIT_MIN_WORK: usize = 8_192;

/// Strategy used to enumerate candidate thresholds at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Splitter {
    /// Considers every midpoint between consecutive distinct feature values
    /// (classical CART; what scikit-learn's `best` splitter does).
    #[default]
    Exact,
    /// Buckets values into equal-width bins over the node-local range and
    /// considers only bin edges. `bins` must be ≥ 2.
    Histogram {
        /// Number of bins per feature.
        bins: usize,
    },
}

impl Splitter {
    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Splitter::Exact => "exact",
            Splitter::Histogram { .. } => "histogram",
        }
    }
}

/// The best split found at a node, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct BestSplit {
    /// Feature column to split on.
    pub feature: usize,
    /// Threshold; `<=` routes left.
    pub threshold: f64,
    /// Impurity decrease achieved (parent impurity minus weighted child
    /// impurity).
    pub gain: f64,
    /// Number of samples routed left.
    pub n_left: usize,
}

/// Searches for the best split of the node containing `idx`.
///
/// `parent_counts` are the per-class counts over `idx` (precomputed by the
/// caller). Returns `None` when no split satisfies `min_samples_leaf` or
/// yields positive gain.
pub fn find_best_split(
    data: &Dataset,
    idx: &[usize],
    parent_counts: &[u64],
    criterion: SplitCriterion,
    splitter: Splitter,
    min_samples_leaf: usize,
) -> Option<BestSplit> {
    find_best_split_with_threads(
        data,
        idx,
        parent_counts,
        criterion,
        splitter,
        min_samples_leaf,
        1,
    )
}

/// [`find_best_split`] with per-feature fan-out over up to `threads`
/// worker threads. The result is bit-identical to the serial search: each
/// feature's candidate is computed independently (same floating-point
/// operations in the same order) and the winner is reduced sequentially in
/// ascending feature order, preferring the lower feature index on equal
/// gain exactly like the serial loop.
pub fn find_best_split_with_threads(
    data: &Dataset,
    idx: &[usize],
    parent_counts: &[u64],
    criterion: SplitCriterion,
    splitter: Splitter,
    min_samples_leaf: usize,
    threads: usize,
) -> Option<BestSplit> {
    let parent_impurity = criterion.impurity(parent_counts);
    if parent_impurity <= 0.0 {
        return None;
    }
    let search_feature = |feature: usize| -> Option<BestSplit> {
        let candidate = match splitter {
            Splitter::Exact => best_split_exact(
                data,
                idx,
                parent_counts,
                criterion,
                feature,
                min_samples_leaf,
            ),
            Splitter::Histogram { bins } => best_split_histogram(
                data,
                idx,
                parent_counts,
                criterion,
                feature,
                min_samples_leaf,
                bins.max(2),
            ),
        };
        candidate.and_then(|c| {
            let gain = parent_impurity - c.weighted_impurity;
            (gain > 1e-12).then_some(BestSplit {
                feature,
                threshold: c.threshold,
                gain,
                n_left: c.n_left,
            })
        })
    };

    let n_features = data.n_features();
    let per_feature: Vec<Option<BestSplit>> =
        if threads > 1 && n_features > 1 && idx.len() * n_features >= PARALLEL_SPLIT_MIN_WORK {
            let features: Vec<usize> = (0..n_features).collect();
            parallel::par_map(threads, &features, |&feature| search_feature(feature))
        } else {
            (0..n_features).map(search_feature).collect()
        };

    // Deterministic reduction: ascending feature order, strict improvement
    // required — identical tie-breaking to the serial loop.
    let mut best: Option<BestSplit> = None;
    for candidate in per_feature.into_iter().flatten() {
        let better = match &best {
            None => true,
            Some(b) => candidate.gain > b.gain,
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

struct Candidate {
    threshold: f64,
    weighted_impurity: f64,
    n_left: usize,
}

fn best_split_exact(
    data: &Dataset,
    idx: &[usize],
    parent_counts: &[u64],
    criterion: SplitCriterion,
    feature: usize,
    min_samples_leaf: usize,
) -> Option<Candidate> {
    let n = idx.len();
    let mut pairs: Vec<(f64, u32)> = idx
        .iter()
        .map(|&i| (data.value(i, feature), data.label(i)))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

    let n_classes = parent_counts.len();
    let mut left = vec![0u64; n_classes];
    let mut right = parent_counts.to_vec();
    let mut best: Option<Candidate> = None;

    for i in 0..n - 1 {
        let (v, label) = pairs[i];
        left[label as usize] += 1;
        right[label as usize] -= 1;
        let next_v = pairs[i + 1].0;
        if next_v <= v {
            continue; // not a boundary between distinct values
        }
        let n_left = i + 1;
        let n_right = n - n_left;
        if n_left < min_samples_leaf || n_right < min_samples_leaf {
            continue;
        }
        let w = criterion.split_impurity(&left, &right);
        if best.as_ref().is_none_or(|b| w < b.weighted_impurity) {
            // Midpoint threshold, like CART; falls back to the left value if
            // the midpoint rounds onto the right value.
            let mut threshold = 0.5 * (v + next_v);
            if threshold >= next_v {
                threshold = v;
            }
            best = Some(Candidate {
                threshold,
                weighted_impurity: w,
                n_left,
            });
        }
    }
    best
}

fn best_split_histogram(
    data: &Dataset,
    idx: &[usize],
    parent_counts: &[u64],
    criterion: SplitCriterion,
    feature: usize,
    min_samples_leaf: usize,
    bins: usize,
) -> Option<Candidate> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &i in idx {
        let v = data.value(i, feature);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
        return None; // constant feature at this node
    }
    let n_classes = parent_counts.len();
    let width = (hi - lo) / bins as f64;
    // counts[bin * n_classes + class]
    let mut counts = vec![0u64; bins * n_classes];
    for &i in idx {
        let v = data.value(i, feature);
        let b = (((v - lo) / width) as usize).min(bins - 1);
        counts[b * n_classes + data.label(i) as usize] += 1;
    }
    let mut left = vec![0u64; n_classes];
    let mut right = parent_counts.to_vec();
    let mut n_left = 0usize;
    let n = idx.len();
    let mut best: Option<Candidate> = None;
    for b in 0..bins - 1 {
        for c in 0..n_classes {
            let k = counts[b * n_classes + c];
            left[c] += k;
            right[c] -= k;
            n_left += k as usize;
        }
        if n_left == 0 {
            continue;
        }
        if n_left >= n {
            break;
        }
        let n_right = n - n_left;
        if n_left < min_samples_leaf || n_right < min_samples_leaf {
            continue;
        }
        let w = criterion.split_impurity(&left, &right);
        if best.as_ref().is_none_or(|x| w < x.weighted_impurity) {
            best = Some(Candidate {
                threshold: lo + (b + 1) as f64 * width,
                weighted_impurity: w,
                n_left,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn two_cluster_data() -> (Dataset, Vec<usize>) {
        // Class 0 at x ≈ 0, class 1 at x ≈ 10; second feature is noise.
        let mut ds = Dataset::new(vec!["x".into(), "noise".into()], 2).unwrap();
        for i in 0..20 {
            let x = if i < 10 {
                i as f64 * 0.1
            } else {
                10.0 + (i - 10) as f64 * 0.1
            };
            let label = u32::from(i >= 10);
            ds.push_row(&[x, (i % 3) as f64], label).unwrap();
        }
        let idx: Vec<usize> = (0..20).collect();
        (ds, idx)
    }

    #[test]
    fn exact_finds_separating_threshold() {
        let (ds, idx) = two_cluster_data();
        let counts = ds.class_counts();
        let split = find_best_split(&ds, &idx, &counts, SplitCriterion::Gini, Splitter::Exact, 1)
            .expect("split must exist");
        assert_eq!(split.feature, 0);
        assert!(split.threshold > 0.9 && split.threshold < 10.0);
        assert_eq!(split.n_left, 10);
        assert!(
            (split.gain - 0.5).abs() < 1e-12,
            "perfect split removes all gini impurity"
        );
    }

    #[test]
    fn histogram_finds_similar_threshold() {
        let (ds, idx) = two_cluster_data();
        let counts = ds.class_counts();
        let split = find_best_split(
            &ds,
            &idx,
            &counts,
            SplitCriterion::Gini,
            Splitter::Histogram { bins: 16 },
            1,
        )
        .expect("split must exist");
        assert_eq!(split.feature, 0);
        assert!(split.threshold > 0.9 && split.threshold < 10.0);
    }

    #[test]
    fn pure_node_yields_no_split() {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..5 {
            ds.push_row(&[i as f64], 0).unwrap();
        }
        let idx: Vec<usize> = (0..5).collect();
        let counts = ds.class_counts();
        assert!(
            find_best_split(&ds, &idx, &counts, SplitCriterion::Gini, Splitter::Exact, 1).is_none()
        );
    }

    #[test]
    fn constant_features_yield_no_split() {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..6 {
            ds.push_row(&[1.0], u32::from(i % 2 == 0)).unwrap();
        }
        let idx: Vec<usize> = (0..6).collect();
        let counts = ds.class_counts();
        for splitter in [Splitter::Exact, Splitter::Histogram { bins: 8 }] {
            assert!(
                find_best_split(&ds, &idx, &counts, SplitCriterion::Gini, splitter, 1).is_none()
            );
        }
    }

    #[test]
    fn min_samples_leaf_constrains_split() {
        let (ds, idx) = two_cluster_data();
        let counts = ds.class_counts();
        // Requiring 11 samples per side makes the 10/10 split infeasible.
        assert!(find_best_split(
            &ds,
            &idx,
            &counts,
            SplitCriterion::Gini,
            Splitter::Exact,
            11
        )
        .is_none());
    }

    #[test]
    fn threshold_routes_boundary_left() {
        // Values 0 and 1; the threshold must be strictly below 1 so that
        // a query at 1.0 goes right of a 0/1 boundary... i.e. `<=` semantics
        // with a midpoint threshold of 0.5.
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        ds.push_row(&[0.0], 0).unwrap();
        ds.push_row(&[1.0], 1).unwrap();
        let counts = ds.class_counts();
        let split = find_best_split(
            &ds,
            &[0, 1],
            &counts,
            SplitCriterion::Gini,
            Splitter::Exact,
            1,
        )
        .unwrap();
        assert!((split.threshold - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entropy_and_gini_agree_on_obvious_split() {
        let (ds, idx) = two_cluster_data();
        let counts = ds.class_counts();
        for crit in [SplitCriterion::Gini, SplitCriterion::Entropy] {
            let split = find_best_split(&ds, &idx, &counts, crit, Splitter::Exact, 1).unwrap();
            assert_eq!(split.feature, 0);
        }
    }

    #[test]
    fn subset_of_indices_is_respected() {
        let (ds, _) = two_cluster_data();
        // Only class-0 samples: node is pure, no split.
        let idx: Vec<usize> = (0..10).collect();
        let mut counts = vec![0u64; 2];
        for &i in &idx {
            counts[ds.label(i) as usize] += 1;
        }
        assert!(
            find_best_split(&ds, &idx, &counts, SplitCriterion::Gini, Splitter::Exact, 1).is_none()
        );
    }

    #[test]
    fn threaded_split_search_matches_serial() {
        // Large enough to clear PARALLEL_SPLIT_MIN_WORK with 4 features.
        let mut ds = Dataset::new(vec!["a".into(), "b".into(), "c".into(), "d".into()], 2).unwrap();
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..4000 {
            let row = [next(), next(), next(), next()];
            let label = u32::from(row[1] > 0.55);
            ds.push_row(&row, label).unwrap();
        }
        let idx: Vec<usize> = (0..ds.n_samples()).collect();
        let counts = ds.class_counts();
        for splitter in [Splitter::Exact, Splitter::Histogram { bins: 32 }] {
            let serial =
                find_best_split(&ds, &idx, &counts, SplitCriterion::Gini, splitter, 1).unwrap();
            for threads in [2usize, 8] {
                let par = find_best_split_with_threads(
                    &ds,
                    &idx,
                    &counts,
                    SplitCriterion::Gini,
                    splitter,
                    1,
                    threads,
                )
                .unwrap();
                assert_eq!(serial, par, "{splitter:?} threads={threads}");
                assert_eq!(serial.gain.to_bits(), par.gain.to_bits());
                assert_eq!(serial.threshold.to_bits(), par.threshold.to_bits());
            }
        }
    }

    #[test]
    fn splitter_names() {
        assert_eq!(Splitter::Exact.name(), "exact");
        assert_eq!(Splitter::Histogram { bins: 10 }.name(), "histogram");
        assert_eq!(Splitter::default(), Splitter::Exact);
    }
}
