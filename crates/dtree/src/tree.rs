//! The decision-tree structure: an arena of nodes with class-count
//! statistics, prediction, traversal, and structural editing (collapse /
//! compact) used by calibration-driven pruning.

use crate::error::DtreeError;
use serde::{Deserialize, Serialize};

/// Index of a node within the tree arena.
pub type NodeId = usize;

/// Per-node statistics retained for transparency, pruning and calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Number of training samples that reached this node.
    pub n: u64,
    /// Per-class training sample counts at this node.
    pub counts: Vec<u64>,
    /// Training impurity of this node under the builder's criterion.
    pub impurity: f64,
    /// Depth of the node (root = 0).
    pub depth: usize,
}

/// Structural role of a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Internal decision node: goes left when `x[feature] <= threshold`.
    Internal {
        /// Feature column tested by this node.
        feature: usize,
        /// Split threshold; `<=` goes left.
        threshold: f64,
        /// Left child id.
        left: NodeId,
        /// Right child id.
        right: NodeId,
    },
    /// Terminal node.
    Leaf,
}

/// A single tree node: statistics plus structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Statistics for this node.
    pub info: NodeInfo,
    /// Internal/leaf role.
    pub kind: NodeKind,
}

/// A trained CART decision tree.
///
/// Trees are built by [`crate::builder::TreeBuilder`]; this type owns the
/// node arena and provides prediction and structural editing. The root is
/// always node `0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: u32,
    feature_names: Vec<String>,
}

impl DecisionTree {
    /// Assembles a tree from raw parts. Intended for the builder and for
    /// deserialization paths; validates basic structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError`] if the arena is empty or child indices are out
    /// of bounds.
    pub fn from_parts(
        nodes: Vec<Node>,
        n_features: usize,
        n_classes: u32,
        feature_names: Vec<String>,
    ) -> Result<Self, DtreeError> {
        if nodes.is_empty() {
            return Err(DtreeError::EmptyDataset);
        }
        for node in &nodes {
            if let NodeKind::Internal {
                left,
                right,
                feature,
                ..
            } = node.kind
            {
                if left >= nodes.len() || right >= nodes.len() || feature >= n_features {
                    return Err(DtreeError::InvalidHyperParameter {
                        constraint: "node references out of bounds",
                    });
                }
            }
        }
        Ok(DecisionTree {
            nodes,
            n_features,
            n_classes,
            feature_names,
        })
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// Feature names in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Total number of nodes in the arena (including any unreachable nodes
    /// prior to [`DecisionTree::compact`]).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Ids of all reachable leaves, in depth-first order.
    pub fn leaf_ids(&self) -> Vec<NodeId> {
        let mut leaves = Vec::new();
        let mut stack = vec![0];
        while let Some(id) = stack.pop() {
            match self.nodes[id].kind {
                NodeKind::Leaf => leaves.push(id),
                NodeKind::Internal { left, right, .. } => {
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
        leaves
    }

    /// Number of reachable leaves.
    pub fn n_leaves(&self) -> usize {
        self.leaf_ids().len()
    }

    /// Maximum depth over reachable nodes (root = 0, so a stump has depth 1).
    pub fn depth(&self) -> usize {
        let mut max_depth = 0;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((id, d)) = stack.pop() {
            max_depth = max_depth.max(d);
            if let NodeKind::Internal { left, right, .. } = self.nodes[id].kind {
                stack.push((left, d + 1));
                stack.push((right, d + 1));
            }
        }
        max_depth
    }

    /// Routes a feature vector to its leaf and returns the leaf id.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if `x` has the wrong
    /// number of features.
    pub fn leaf_id(&self, x: &[f64]) -> Result<NodeId, DtreeError> {
        if x.len() != self.n_features {
            return Err(DtreeError::PredictArityMismatch {
                expected: self.n_features,
                actual: x.len(),
            });
        }
        let mut id = 0;
        loop {
            match self.nodes[id].kind {
                NodeKind::Leaf => return Ok(id),
                NodeKind::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// The decision path from root to leaf for a feature vector.
    ///
    /// # Errors
    ///
    /// Same as [`DecisionTree::leaf_id`].
    pub fn decision_path(&self, x: &[f64]) -> Result<Vec<NodeId>, DtreeError> {
        if x.len() != self.n_features {
            return Err(DtreeError::PredictArityMismatch {
                expected: self.n_features,
                actual: x.len(),
            });
        }
        let mut path = vec![0];
        let mut id = 0;
        while let NodeKind::Internal {
            feature,
            threshold,
            left,
            right,
        } = self.nodes[id].kind
        {
            id = if x[feature] <= threshold { left } else { right };
            path.push(id);
        }
        Ok(path)
    }

    /// Class probabilities at the leaf reached by `x` (training-count
    /// proportions).
    ///
    /// # Errors
    ///
    /// Same as [`DecisionTree::leaf_id`].
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, DtreeError> {
        let leaf = self.leaf_id(x)?;
        let info = &self.nodes[leaf].info;
        let total = info.n.max(1) as f64;
        Ok(info.counts.iter().map(|&c| c as f64 / total).collect())
    }

    /// Majority-class prediction at the leaf reached by `x` (ties broken by
    /// the lowest class id, matching scikit-learn).
    ///
    /// # Errors
    ///
    /// Same as [`DecisionTree::leaf_id`].
    pub fn predict(&self, x: &[f64]) -> Result<u32, DtreeError> {
        let leaf = self.leaf_id(x)?;
        let counts = &self.nodes[leaf].info.counts;
        let mut best = 0u32;
        let mut best_count = 0u64;
        for (c, &count) in counts.iter().enumerate() {
            if count > best_count {
                best = c as u32;
                best_count = count;
            }
        }
        Ok(best)
    }

    /// Counts how many of the given rows pass through each node; the result
    /// is indexed by [`NodeId`]. Used by calibration-driven pruning.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::PredictArityMismatch`] if any row has the wrong
    /// arity.
    pub fn node_sample_counts<'a, I>(&self, rows: I) -> Result<Vec<u64>, DtreeError>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut counts = vec![0u64; self.nodes.len()];
        for row in rows {
            for id in self.decision_path(row)? {
                counts[id] += 1;
            }
        }
        Ok(counts)
    }

    /// Turns the node `id` into a leaf. Its descendants become unreachable
    /// (call [`DecisionTree::compact`] to drop them from the arena).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn collapse_to_leaf(&mut self, id: NodeId) {
        self.nodes[id].kind = NodeKind::Leaf;
    }

    /// Rebuilds the arena keeping only nodes reachable from the root,
    /// renumbering ids in depth-first order. Returns the mapping from old
    /// ids to new ids (`None` for dropped nodes).
    pub fn compact(&mut self) -> Vec<Option<NodeId>> {
        let mut mapping = vec![None; self.nodes.len()];
        let mut new_nodes = Vec::new();
        // Depth-first, left before right, so ids are stable and readable.
        fn visit(
            nodes: &[Node],
            id: NodeId,
            mapping: &mut [Option<NodeId>],
            out: &mut Vec<Node>,
        ) -> NodeId {
            let new_id = out.len();
            mapping[id] = Some(new_id);
            out.push(nodes[id].clone());
            if let NodeKind::Internal {
                feature,
                threshold,
                left,
                right,
            } = nodes[id].kind
            {
                let new_left = visit(nodes, left, mapping, out);
                let new_right = visit(nodes, right, mapping, out);
                out[new_id].kind = NodeKind::Internal {
                    feature,
                    threshold,
                    left: new_left,
                    right: new_right,
                };
            }
            new_id
        }
        visit(&self.nodes, 0, &mut mapping, &mut new_nodes);
        self.nodes = new_nodes;
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a small hand-made tree:
    ///
    /// ```text
    ///        [0] f0 <= 1.0
    ///        /          \
    ///   [1] leaf     [2] f1 <= 5.0
    ///                 /        \
    ///            [3] leaf   [4] leaf
    /// ```
    fn toy_tree() -> DecisionTree {
        let mk_info = |n: u64, counts: Vec<u64>, depth: usize| NodeInfo {
            n,
            counts,
            impurity: 0.5,
            depth,
        };
        let nodes = vec![
            Node {
                info: mk_info(10, vec![5, 5], 0),
                kind: NodeKind::Internal {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
            },
            Node {
                info: mk_info(4, vec![4, 0], 1),
                kind: NodeKind::Leaf,
            },
            Node {
                info: mk_info(6, vec![1, 5], 1),
                kind: NodeKind::Internal {
                    feature: 1,
                    threshold: 5.0,
                    left: 3,
                    right: 4,
                },
            },
            Node {
                info: mk_info(3, vec![1, 2], 2),
                kind: NodeKind::Leaf,
            },
            Node {
                info: mk_info(3, vec![0, 3], 2),
                kind: NodeKind::Leaf,
            },
        ];
        DecisionTree::from_parts(nodes, 2, 2, vec!["f0".into(), "f1".into()]).unwrap()
    }

    #[test]
    fn routing_follows_thresholds() {
        let t = toy_tree();
        assert_eq!(t.leaf_id(&[0.5, 0.0]).unwrap(), 1);
        assert_eq!(
            t.leaf_id(&[1.0, 0.0]).unwrap(),
            1,
            "<= goes left at the boundary"
        );
        assert_eq!(t.leaf_id(&[2.0, 4.0]).unwrap(), 3);
        assert_eq!(t.leaf_id(&[2.0, 6.0]).unwrap(), 4);
    }

    #[test]
    fn decision_path_is_root_to_leaf() {
        let t = toy_tree();
        assert_eq!(t.decision_path(&[2.0, 6.0]).unwrap(), vec![0, 2, 4]);
        assert_eq!(t.decision_path(&[0.0, 0.0]).unwrap(), vec![0, 1]);
    }

    #[test]
    fn predict_and_proba() {
        let t = toy_tree();
        assert_eq!(t.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(t.predict(&[2.0, 6.0]).unwrap(), 1);
        let p = t.predict_proba(&[2.0, 4.0]).unwrap();
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn structure_queries() {
        let t = toy_tree();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.leaf_ids(), vec![1, 3, 4]);
        assert_eq!(t.n_nodes(), 5);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let t = toy_tree();
        assert!(matches!(
            t.leaf_id(&[1.0]),
            Err(DtreeError::PredictArityMismatch {
                expected: 2,
                actual: 1
            })
        ));
        assert!(t.predict(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn node_sample_counts_accumulate_along_paths() {
        let t = toy_tree();
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![2.0, 4.0], vec![2.0, 6.0]];
        let counts = t
            .node_sample_counts(rows.iter().map(|r| r.as_slice()))
            .unwrap();
        assert_eq!(counts, vec![3, 1, 2, 1, 1]);
    }

    #[test]
    fn collapse_and_compact() {
        let mut t = toy_tree();
        t.collapse_to_leaf(2);
        assert_eq!(t.n_leaves(), 2);
        let mapping = t.compact();
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(mapping[0], Some(0));
        assert_eq!(mapping[3], None, "dropped nodes map to None");
        // Tree still routes correctly after renumbering.
        assert_eq!(t.predict(&[2.0, 6.0]).unwrap(), 1);
        assert_eq!(t.predict(&[0.0, 0.0]).unwrap(), 0);
    }

    #[test]
    fn from_parts_validates_structure() {
        let bad = vec![Node {
            info: NodeInfo {
                n: 1,
                counts: vec![1, 0],
                impurity: 0.0,
                depth: 0,
            },
            kind: NodeKind::Internal {
                feature: 0,
                threshold: 0.0,
                left: 5,
                right: 6,
            },
        }];
        assert!(DecisionTree::from_parts(bad, 1, 2, vec!["f0".into()]).is_err());
        assert!(DecisionTree::from_parts(vec![], 1, 2, vec!["f0".into()]).is_err());
    }

    #[test]
    fn tie_breaks_to_lowest_class() {
        let nodes = vec![Node {
            info: NodeInfo {
                n: 4,
                counts: vec![2, 2],
                impurity: 0.5,
                depth: 0,
            },
            kind: NodeKind::Leaf,
        }];
        let t = DecisionTree::from_parts(nodes, 1, 2, vec!["f0".into()]).unwrap();
        assert_eq!(t.predict(&[0.0]).unwrap(), 0);
    }
}
