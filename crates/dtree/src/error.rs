//! Error type for decision-tree construction and use.

use std::error::Error;
use std::fmt;

/// Errors produced by `tauw-dtree`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtreeError {
    /// The dataset is empty or otherwise unusable for training.
    EmptyDataset,
    /// A row had the wrong number of features.
    FeatureCountMismatch {
        /// Expected number of features.
        expected: usize,
        /// Number of features actually provided.
        actual: usize,
    },
    /// A label was outside `0..n_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: u32,
        /// Number of classes declared for the dataset.
        n_classes: u32,
    },
    /// A non-finite feature value was provided.
    NonFiniteFeature {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        column: usize,
    },
    /// A hyper-parameter was invalid.
    InvalidHyperParameter {
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// Prediction input had the wrong number of features.
    PredictArityMismatch {
        /// Number of features the tree was trained with.
        expected: usize,
        /// Number of features in the query.
        actual: usize,
    },
    /// Calibration failed (e.g. too few samples to satisfy the minimum
    /// per-leaf count even after collapsing to the root).
    CalibrationInfeasible {
        /// Description of the failure.
        reason: &'static str,
    },
}

impl fmt::Display for DtreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtreeError::EmptyDataset => write!(f, "dataset must contain at least one sample"),
            DtreeError::FeatureCountMismatch { expected, actual } => {
                write!(f, "expected {expected} features per row, got {actual}")
            }
            DtreeError::LabelOutOfRange { label, n_classes } => {
                write!(
                    f,
                    "label {label} is outside the declared range 0..{n_classes}"
                )
            }
            DtreeError::NonFiniteFeature { row, column } => {
                write!(f, "non-finite feature value at row {row}, column {column}")
            }
            DtreeError::InvalidHyperParameter { constraint } => {
                write!(f, "invalid hyper-parameter: {constraint}")
            }
            DtreeError::PredictArityMismatch { expected, actual } => {
                write!(f, "tree expects {expected} features, query has {actual}")
            }
            DtreeError::CalibrationInfeasible { reason } => {
                write!(f, "calibration infeasible: {reason}")
            }
        }
    }
}

impl Error for DtreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DtreeError::FeatureCountMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DtreeError>();
    }
}
