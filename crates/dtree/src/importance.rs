//! Impurity-decrease feature importances (a.k.a. Gini importance), used by
//! the RQ3 feature study to cross-check the subset-sweep results.

use crate::tree::{DecisionTree, NodeKind};

/// Mean-decrease-in-impurity importance per feature.
///
/// For every internal node, the weighted impurity decrease
/// `(n/N)·(i_parent − (n_l/n)·i_left − (n_r/n)·i_right)` is credited to the
/// split feature; the result is normalized to sum to one (all zeros for a
/// stump).
///
/// # Examples
///
/// ```
/// use tauw_dtree::{builder::TreeBuilder, data::Dataset, importance::feature_importances};
///
/// let mut ds = Dataset::new(vec!["signal".into(), "noise".into()], 2)?;
/// for i in 0..40 {
///     // label depends only on the first feature
///     ds.push_row(&[i as f64, (i % 7) as f64], u32::from(i >= 20))?;
/// }
/// let tree = TreeBuilder::new().max_depth(4).fit(&ds)?;
/// let imp = feature_importances(&tree);
/// assert!(imp[0] > 0.99);
/// # Ok::<(), tauw_dtree::DtreeError>(())
/// ```
pub fn feature_importances(tree: &DecisionTree) -> Vec<f64> {
    let mut importances = vec![0.0; tree.n_features()];
    let total = tree.node(0).info.n as f64;
    if total == 0.0 {
        return importances;
    }
    let mut stack = vec![0usize];
    while let Some(id) = stack.pop() {
        if let NodeKind::Internal {
            feature,
            left,
            right,
            ..
        } = tree.node(id).kind
        {
            let node = tree.node(id);
            let l = tree.node(left);
            let r = tree.node(right);
            let n = node.info.n as f64;
            let decrease = node.info.impurity
                - (l.info.n as f64 / n) * l.info.impurity
                - (r.info.n as f64 / n) * r.info.impurity;
            importances[feature] += (n / total) * decrease.max(0.0);
            stack.push(left);
            stack.push(right);
        }
    }
    let sum: f64 = importances.iter().sum();
    if sum > 0.0 {
        for v in &mut importances {
            *v /= sum;
        }
    }
    importances
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::data::Dataset;

    #[test]
    fn importances_sum_to_one_for_nontrivial_tree() {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], 2).unwrap();
        for i in 0..50 {
            let a = i as f64;
            let b = (i % 5) as f64;
            ds.push_row(&[a, b], u32::from(a >= 25.0 || b >= 3.0))
                .unwrap();
        }
        let tree = TreeBuilder::new().max_depth(4).fit(&ds).unwrap();
        let imp = feature_importances(&tree);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(imp.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn stump_has_zero_importances() {
        let mut ds = Dataset::new(vec!["a".into()], 2).unwrap();
        for _ in 0..10 {
            ds.push_row(&[1.0], 0).unwrap();
        }
        let tree = TreeBuilder::new().fit(&ds).unwrap();
        let imp = feature_importances(&tree);
        assert_eq!(imp, vec![0.0]);
    }

    #[test]
    fn informative_feature_dominates() {
        let mut ds = Dataset::new(vec!["noise".into(), "signal".into()], 2).unwrap();
        for i in 0..100 {
            ds.push_row(&[(i % 13) as f64, i as f64], u32::from(i >= 50))
                .unwrap();
        }
        let tree = TreeBuilder::new().max_depth(5).fit(&ds).unwrap();
        let imp = feature_importances(&tree);
        assert!(imp[1] > imp[0], "the signal feature must dominate: {imp:?}");
    }
}
