//! Split-quality criteria for CART training.
//!
//! The paper's quality impact models are trained with the **gini index as an
//! approximation for entropy** (Section IV-C.2); both are provided.

use serde::{Deserialize, Serialize};

/// Impurity criterion used when searching for the best split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SplitCriterion {
    /// Gini impurity `1 − Σ p_c²` (the paper's choice).
    #[default]
    Gini,
    /// Shannon entropy `−Σ p_c log₂ p_c`.
    Entropy,
}

impl SplitCriterion {
    /// Impurity of a node given per-class counts.
    ///
    /// Returns 0 for an empty node.
    ///
    /// # Examples
    ///
    /// ```
    /// use tauw_dtree::criterion::SplitCriterion;
    ///
    /// // A 50/50 binary node has maximal gini impurity 0.5.
    /// let g = SplitCriterion::Gini.impurity(&[10, 10]);
    /// assert!((g - 0.5).abs() < 1e-12);
    /// ```
    pub fn impurity(self, counts: &[u64]) -> f64 {
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        match self {
            SplitCriterion::Gini => {
                let sum_sq: f64 = counts
                    .iter()
                    .map(|&c| {
                        let p = c as f64 / n;
                        p * p
                    })
                    .sum();
                1.0 - sum_sq
            }
            SplitCriterion::Entropy => counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / n;
                    -p * p.log2()
                })
                .sum(),
        }
    }

    /// Weighted impurity of a candidate split: `(n_l·i_l + n_r·i_r) / n`.
    pub fn split_impurity(self, left: &[u64], right: &[u64]) -> f64 {
        let nl: u64 = left.iter().sum();
        let nr: u64 = right.iter().sum();
        let n = nl + nr;
        if n == 0 {
            return 0.0;
        }
        (nl as f64 * self.impurity(left) + nr as f64 * self.impurity(right)) / n as f64
    }

    /// Short stable name (`"gini"` / `"entropy"`).
    pub fn name(self) -> &'static str {
        match self {
            SplitCriterion::Gini => "gini",
            SplitCriterion::Entropy => "entropy",
        }
    }
}

impl std::fmt::Display for SplitCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_nodes_have_zero_impurity() {
        for crit in [SplitCriterion::Gini, SplitCriterion::Entropy] {
            assert_eq!(crit.impurity(&[10, 0]), 0.0);
            assert_eq!(crit.impurity(&[0, 7]), 0.0);
            assert_eq!(crit.impurity(&[0, 0, 42]), 0.0);
        }
    }

    #[test]
    fn empty_node_is_zero() {
        assert_eq!(SplitCriterion::Gini.impurity(&[0, 0]), 0.0);
        assert_eq!(SplitCriterion::Entropy.impurity(&[]), 0.0);
    }

    #[test]
    fn gini_maximum_for_uniform() {
        // Binary uniform: 0.5; 4-class uniform: 0.75.
        assert!((SplitCriterion::Gini.impurity(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((SplitCriterion::Gini.impurity(&[3, 3, 3, 3]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn entropy_maximum_for_uniform() {
        assert!((SplitCriterion::Entropy.impurity(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!((SplitCriterion::Entropy.impurity(&[2, 2, 2, 2]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn impurity_is_scale_invariant() {
        for crit in [SplitCriterion::Gini, SplitCriterion::Entropy] {
            let a = crit.impurity(&[3, 7]);
            let b = crit.impurity(&[30, 70]);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_split_has_zero_weighted_impurity() {
        let crit = SplitCriterion::Gini;
        assert_eq!(crit.split_impurity(&[10, 0], &[0, 10]), 0.0);
    }

    #[test]
    fn useless_split_preserves_impurity() {
        let crit = SplitCriterion::Gini;
        let parent = crit.impurity(&[10, 10]);
        let split = crit.split_impurity(&[5, 5], &[5, 5]);
        assert!((parent - split).abs() < 1e-12);
    }

    #[test]
    fn split_impurity_weighted_correctly() {
        let crit = SplitCriterion::Gini;
        // Left: pure (4 samples), right: 50/50 (16 samples).
        let v = crit.split_impurity(&[4, 0], &[8, 8]);
        assert!((v - 16.0 / 20.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn names_stable() {
        assert_eq!(SplitCriterion::Gini.to_string(), "gini");
        assert_eq!(SplitCriterion::default(), SplitCriterion::Gini);
    }
}
