//! Dataset abstraction for tree training: a dense row-major feature matrix
//! with named columns and integer class labels.

use crate::error::DtreeError;
use serde::{Deserialize, Serialize};

/// A dense, row-major training dataset.
///
/// Rows are samples, columns are features; labels are class ids in
/// `0..n_classes`. The uncertainty wrapper uses binary labels
/// (0 = correct, 1 = failure) but the tree is fully multiclass.
///
/// # Examples
///
/// ```
/// use tauw_dtree::data::Dataset;
///
/// let mut ds = Dataset::new(vec!["rain".into(), "size".into()], 2)?;
/// ds.push_row(&[0.2, 30.0], 0)?;
/// ds.push_row(&[0.9, 12.0], 1)?;
/// assert_eq!(ds.n_samples(), 2);
/// assert_eq!(ds.n_features(), 2);
/// # Ok::<(), tauw_dtree::DtreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    n_classes: u32,
    values: Vec<f64>,
    labels: Vec<u32>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature names and number of
    /// classes.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::InvalidHyperParameter`] if there are no
    /// features or fewer than two classes.
    pub fn new(feature_names: Vec<String>, n_classes: u32) -> Result<Self, DtreeError> {
        if feature_names.is_empty() {
            return Err(DtreeError::InvalidHyperParameter {
                constraint: "at least one feature is required",
            });
        }
        if n_classes < 2 {
            return Err(DtreeError::InvalidHyperParameter {
                constraint: "at least two classes are required",
            });
        }
        Ok(Dataset {
            feature_names,
            n_classes,
            values: Vec::new(),
            labels: Vec::new(),
        })
    }

    /// Creates a dataset with auto-generated feature names `f0, f1, ...`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::new`].
    pub fn with_anonymous_features(n_features: usize, n_classes: u32) -> Result<Self, DtreeError> {
        Dataset::new(
            (0..n_features).map(|i| format!("f{i}")).collect(),
            n_classes,
        )
    }

    /// Appends one sample.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError`] if the row length does not match the feature
    /// count, any value is non-finite, or the label is out of range.
    pub fn push_row(&mut self, row: &[f64], label: u32) -> Result<(), DtreeError> {
        if row.len() != self.feature_names.len() {
            return Err(DtreeError::FeatureCountMismatch {
                expected: self.feature_names.len(),
                actual: row.len(),
            });
        }
        if label >= self.n_classes {
            return Err(DtreeError::LabelOutOfRange {
                label,
                n_classes: self.n_classes,
            });
        }
        for (j, &v) in row.iter().enumerate() {
            if !v.is_finite() {
                return Err(DtreeError::NonFiniteFeature {
                    row: self.labels.len(),
                    column: j,
                });
            }
        }
        self.values.extend_from_slice(row);
        self.labels.push(label);
        Ok(())
    }

    /// Reserves capacity for `additional` further samples.
    pub fn reserve(&mut self, additional: usize) {
        self.values.reserve(additional * self.n_features());
        self.labels.reserve(additional);
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.labels.len()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// Feature names in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The feature row for sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_samples()`.
    pub fn row(&self, i: usize) -> &[f64] {
        let nf = self.n_features();
        &self.values[i * nf..(i + 1) * nf]
    }

    /// Feature value at `(row, column)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn value(&self, row: usize, column: usize) -> f64 {
        self.values[row * self.n_features() + column]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_samples()`.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All labels in sample order.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Per-class counts over the whole dataset.
    pub fn class_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n_classes as usize];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// Per-feature `(min, max)` ranges; `None` if the dataset is empty.
    pub fn feature_ranges(&self) -> Option<Vec<(f64, f64)>> {
        if self.labels.is_empty() {
            return None;
        }
        let nf = self.n_features();
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); nf];
        for i in 0..self.n_samples() {
            for (j, range) in ranges.iter_mut().enumerate() {
                let v = self.value(i, j);
                range.0 = range.0.min(v);
                range.1 = range.1.max(v);
            }
        }
        Some(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], 3).unwrap();
        ds.push_row(&[1.0, 2.0], 0).unwrap();
        ds.push_row(&[3.0, -1.0], 2).unwrap();
        ds.push_row(&[0.5, 0.5], 1).unwrap();
        ds
    }

    #[test]
    fn push_and_access_roundtrip() {
        let ds = sample();
        assert_eq!(ds.n_samples(), 3);
        assert_eq!(ds.row(1), &[3.0, -1.0]);
        assert_eq!(ds.value(2, 1), 0.5);
        assert_eq!(ds.label(1), 2);
        assert_eq!(ds.labels(), &[0, 2, 1]);
    }

    #[test]
    fn class_counts_are_correct() {
        let ds = sample();
        assert_eq!(ds.class_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn feature_ranges_span_data() {
        let ds = sample();
        let ranges = ds.feature_ranges().unwrap();
        assert_eq!(ranges[0], (0.5, 3.0));
        assert_eq!(ranges[1], (-1.0, 2.0));
    }

    #[test]
    fn empty_dataset_has_no_ranges() {
        let ds = Dataset::new(vec!["a".into()], 2).unwrap();
        assert!(ds.feature_ranges().is_none());
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut ds = sample();
        assert_eq!(
            ds.push_row(&[1.0], 0),
            Err(DtreeError::FeatureCountMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn rejects_out_of_range_label() {
        let mut ds = sample();
        assert_eq!(
            ds.push_row(&[1.0, 1.0], 3),
            Err(DtreeError::LabelOutOfRange {
                label: 3,
                n_classes: 3
            })
        );
    }

    #[test]
    fn rejects_non_finite_values() {
        let mut ds = sample();
        assert!(matches!(
            ds.push_row(&[f64::NAN, 1.0], 0),
            Err(DtreeError::NonFiniteFeature { column: 0, .. })
        ));
        assert!(matches!(
            ds.push_row(&[1.0, f64::INFINITY], 0),
            Err(DtreeError::NonFiniteFeature { column: 1, .. })
        ));
    }

    #[test]
    fn rejects_degenerate_construction() {
        assert!(Dataset::new(vec![], 2).is_err());
        assert!(Dataset::new(vec!["a".into()], 1).is_err());
        assert!(Dataset::with_anonymous_features(0, 2).is_err());
    }

    #[test]
    fn anonymous_feature_names() {
        let ds = Dataset::with_anonymous_features(3, 2).unwrap();
        assert_eq!(ds.feature_names(), &["f0", "f1", "f2"]);
    }
}
