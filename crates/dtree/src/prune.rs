//! Calibration-driven pruning.
//!
//! After training, the paper prunes the quality impact model so that *every*
//! leaf holds at least a minimum number of **calibration** samples (200 in
//! the study): statistical guarantees computed from too few samples would be
//! vacuously wide. A subtree whose leaves cannot all reach the minimum is
//! collapsed into its parent, bottom-up, until the invariant holds.

use crate::error::DtreeError;
use crate::tree::{DecisionTree, NodeId, NodeKind};

/// Outcome of a pruning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneReport {
    /// Leaves before pruning.
    pub n_leaves_before: usize,
    /// Leaves after pruning.
    pub n_leaves_after: usize,
    /// Number of collapse operations performed.
    pub collapsed: usize,
}

/// Prunes `tree` so that every leaf contains at least `min_count` of the
/// calibration samples whose per-node pass-through counts are given in
/// `node_counts` (as produced by
/// [`DecisionTree::node_sample_counts`]).
///
/// The tree is compacted afterwards, so previously held [`NodeId`]s are
/// invalidated.
///
/// # Errors
///
/// Returns [`DtreeError::CalibrationInfeasible`] if even the root holds
/// fewer than `min_count` samples, and
/// [`DtreeError::InvalidHyperParameter`] if `node_counts` does not match
/// the arena size.
///
/// # Examples
///
/// ```
/// use tauw_dtree::{builder::TreeBuilder, data::Dataset, prune::prune_to_min_count};
///
/// let mut ds = Dataset::new(vec!["x".into()], 2)?;
/// for i in 0..100 {
///     ds.push_row(&[i as f64], u32::from(i >= 50))?;
/// }
/// let mut tree = TreeBuilder::new().max_depth(6).fit(&ds)?;
/// // Calibrate with only 10 samples: deep leaves can't hold 5 each, so the
/// // tree must shrink.
/// let calib: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 10.0]).collect();
/// let counts = tree.node_sample_counts(calib.iter().map(|r| r.as_slice()))?;
/// let report = prune_to_min_count(&mut tree, &counts, 5)?;
/// assert!(report.n_leaves_after <= report.n_leaves_before);
/// for leaf in tree.leaf_ids() {
///     // every remaining leaf now has >= 5 calibration samples
/// }
/// # Ok::<(), tauw_dtree::DtreeError>(())
/// ```
pub fn prune_to_min_count(
    tree: &mut DecisionTree,
    node_counts: &[u64],
    min_count: u64,
) -> Result<PruneReport, DtreeError> {
    if node_counts.len() != tree.n_nodes() {
        return Err(DtreeError::InvalidHyperParameter {
            constraint: "node_counts length must equal the number of tree nodes",
        });
    }
    if node_counts[0] < min_count {
        return Err(DtreeError::CalibrationInfeasible {
            reason: "root holds fewer calibration samples than the per-leaf minimum",
        });
    }
    let n_leaves_before = tree.n_leaves();
    let mut collapsed = 0usize;
    ensure_supported(tree, 0, node_counts, min_count, &mut collapsed);
    tree.compact();
    Ok(PruneReport {
        n_leaves_before,
        n_leaves_after: tree.n_leaves(),
        collapsed,
    })
}

/// Returns whether the subtree rooted at `id` can satisfy the minimum after
/// (possibly) collapsing descendants; collapses `id` itself when a child
/// cannot.
fn ensure_supported(
    tree: &mut DecisionTree,
    id: NodeId,
    node_counts: &[u64],
    min_count: u64,
    collapsed: &mut usize,
) -> bool {
    match tree.node(id).kind {
        NodeKind::Leaf => node_counts[id] >= min_count,
        NodeKind::Internal { left, right, .. } => {
            let left_ok = ensure_supported(tree, left, node_counts, min_count, collapsed);
            let right_ok = ensure_supported(tree, right, node_counts, min_count, collapsed);
            if left_ok && right_ok {
                true
            } else {
                tree.collapse_to_leaf(id);
                *collapsed += 1;
                node_counts[id] >= min_count
            }
        }
    }
}

/// Minimal cost-complexity pruning (classic CART, Breiman et al. ch. 3):
/// repeatedly collapses the internal node with the weakest link — the
/// smallest per-leaf training-impurity increase
/// `alpha(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1)` — until every
/// remaining internal node's weakest-link value exceeds `alpha`.
///
/// This is the standard alternative to the paper's calibration-driven
/// pruning; the two compose (cost-complexity first, calibration second) and
/// are compared in the `bench_dtree` ablation.
///
/// The tree is compacted afterwards, invalidating previous [`NodeId`]s.
pub fn prune_cost_complexity(tree: &mut DecisionTree, alpha: f64) -> PruneReport {
    let n_leaves_before = tree.n_leaves();
    let mut collapsed = 0usize;
    let total = tree.node(0).info.n as f64;
    loop {
        // Find the internal node with the smallest weakest-link alpha.
        let mut weakest: Option<(NodeId, f64)> = None;
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            if let NodeKind::Internal { left, right, .. } = tree.node(id).kind {
                stack.push(left);
                stack.push(right);
                let node_risk = tree.node(id).info.impurity * tree.node(id).info.n as f64 / total;
                let (subtree_risk, subtree_leaves) = subtree_risk(tree, id, total);
                if subtree_leaves < 2 {
                    continue;
                }
                let link = (node_risk - subtree_risk) / (subtree_leaves as f64 - 1.0);
                if weakest.is_none_or(|(_, best)| link < best) {
                    weakest = Some((id, link));
                }
            }
        }
        match weakest {
            Some((id, link)) if link <= alpha => {
                tree.collapse_to_leaf(id);
                collapsed += 1;
            }
            _ => break,
        }
    }
    tree.compact();
    PruneReport {
        n_leaves_before,
        n_leaves_after: tree.n_leaves(),
        collapsed,
    }
}

/// Training risk (count-weighted impurity) and leaf count of the subtree
/// rooted at `id`.
fn subtree_risk(tree: &DecisionTree, id: NodeId, total: f64) -> (f64, usize) {
    match tree.node(id).kind {
        NodeKind::Leaf => (
            tree.node(id).info.impurity * tree.node(id).info.n as f64 / total,
            1,
        ),
        NodeKind::Internal { left, right, .. } => {
            let (rl, nl) = subtree_risk(tree, left, total);
            let (rr, nr) = subtree_risk(tree, right, total);
            (rl + rr, nl + nr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::data::Dataset;

    fn staircase_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..n {
            // Alternating blocks make the tree split repeatedly.
            let label = u32::from((i / 8) % 2 == 0);
            ds.push_row(&[i as f64], label).unwrap();
        }
        ds
    }

    fn rows(values: &[f64]) -> Vec<Vec<f64>> {
        values.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn every_leaf_meets_minimum_after_prune() {
        let ds = staircase_dataset(128);
        let mut tree = TreeBuilder::new().max_depth(10).fit(&ds).unwrap();
        assert!(tree.n_leaves() > 4);
        // Calibration set: 64 evenly spread points.
        let calib = rows(&(0..64).map(|i| i as f64 * 2.0).collect::<Vec<_>>());
        let counts = tree
            .node_sample_counts(calib.iter().map(|r| r.as_slice()))
            .unwrap();
        let report = prune_to_min_count(&mut tree, &counts, 10).unwrap();
        assert!(report.n_leaves_after < report.n_leaves_before);
        // Recount on the pruned tree: every leaf ≥ 10.
        let counts = tree
            .node_sample_counts(calib.iter().map(|r| r.as_slice()))
            .unwrap();
        for leaf in tree.leaf_ids() {
            assert!(
                counts[leaf] >= 10,
                "leaf {leaf} has only {} samples",
                counts[leaf]
            );
        }
    }

    #[test]
    fn prune_is_noop_when_all_leaves_are_rich() {
        let ds = staircase_dataset(64);
        let mut tree = TreeBuilder::new().max_depth(2).fit(&ds).unwrap();
        let calib = rows(&(0..640).map(|i| i as f64 / 10.0).collect::<Vec<_>>());
        let counts = tree
            .node_sample_counts(calib.iter().map(|r| r.as_slice()))
            .unwrap();
        let before = tree.n_leaves();
        let report = prune_to_min_count(&mut tree, &counts, 5).unwrap();
        assert_eq!(report.collapsed, 0);
        assert_eq!(report.n_leaves_after, before);
    }

    #[test]
    fn prune_collapses_to_root_when_data_is_scarce() {
        let ds = staircase_dataset(128);
        let mut tree = TreeBuilder::new().max_depth(10).fit(&ds).unwrap();
        let calib = rows(&[1.0, 50.0, 100.0, 120.0, 3.0, 77.0]);
        let counts = tree
            .node_sample_counts(calib.iter().map(|r| r.as_slice()))
            .unwrap();
        let report = prune_to_min_count(&mut tree, &counts, 6).unwrap();
        assert_eq!(
            report.n_leaves_after, 1,
            "6 samples with min 6 forces a single leaf"
        );
        assert_eq!(tree.n_nodes(), 1, "compact must drop unreachable nodes");
    }

    #[test]
    fn infeasible_minimum_is_an_error() {
        let ds = staircase_dataset(64);
        let mut tree = TreeBuilder::new().max_depth(4).fit(&ds).unwrap();
        let calib = rows(&[1.0, 2.0]);
        let counts = tree
            .node_sample_counts(calib.iter().map(|r| r.as_slice()))
            .unwrap();
        assert!(matches!(
            prune_to_min_count(&mut tree, &counts, 3),
            Err(DtreeError::CalibrationInfeasible { .. })
        ));
    }

    #[test]
    fn wrong_counts_length_is_an_error() {
        let ds = staircase_dataset(64);
        let mut tree = TreeBuilder::new().max_depth(4).fit(&ds).unwrap();
        assert!(matches!(
            prune_to_min_count(&mut tree, &[1, 2, 3], 1),
            Err(DtreeError::InvalidHyperParameter { .. })
        ));
    }

    #[test]
    fn cost_complexity_zero_alpha_keeps_useful_splits() {
        let ds = staircase_dataset(128);
        let mut tree = TreeBuilder::new().max_depth(8).fit(&ds).unwrap();
        let before = tree.n_leaves();
        let report = prune_cost_complexity(&mut tree, 0.0);
        // alpha = 0 only removes splits with zero impurity decrease.
        assert_eq!(report.n_leaves_after, tree.n_leaves());
        assert!(tree.n_leaves() <= before);
        assert!(
            tree.n_leaves() > 1,
            "informative splits must survive alpha 0"
        );
    }

    #[test]
    fn cost_complexity_large_alpha_collapses_to_root() {
        let ds = staircase_dataset(128);
        let mut tree = TreeBuilder::new().max_depth(8).fit(&ds).unwrap();
        let report = prune_cost_complexity(&mut tree, 1.0);
        assert_eq!(report.n_leaves_after, 1);
        assert_eq!(tree.n_nodes(), 1);
        assert!(report.collapsed > 0);
    }

    #[test]
    fn cost_complexity_is_monotone_in_alpha() {
        let ds = staircase_dataset(256);
        let base = TreeBuilder::new().max_depth(10).fit(&ds).unwrap();
        let mut prev_leaves = usize::MAX;
        for alpha in [0.0, 0.001, 0.01, 0.05, 0.5] {
            let mut tree = base.clone();
            prune_cost_complexity(&mut tree, alpha);
            assert!(
                tree.n_leaves() <= prev_leaves,
                "larger alpha must not grow the tree (alpha {alpha})"
            );
            prev_leaves = tree.n_leaves();
        }
    }

    #[test]
    fn cost_complexity_preserves_accuracy_at_small_alpha() {
        // Greedily separable nested thresholds (a balanced staircase would
        // defeat greedy CART before pruning is even involved).
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..256 {
            let x = i as f64 / 256.0;
            let label = u32::from(x > 0.75 || (x > 0.25 && x <= 0.5));
            ds.push_row(&[x], label).unwrap();
        }
        let mut tree = TreeBuilder::new().max_depth(10).fit(&ds).unwrap();
        let accuracy = |tree: &crate::tree::DecisionTree| {
            (0..ds.n_samples())
                .filter(|&i| tree.predict(ds.row(i)).unwrap() == ds.label(i))
                .count()
        };
        assert_eq!(
            accuracy(&tree),
            256,
            "tree must separate the data before pruning"
        );
        prune_cost_complexity(&mut tree, 1e-4);
        assert_eq!(
            accuracy(&tree),
            256,
            "tiny alpha must not collapse informative splits"
        );
        // But a large alpha trades accuracy for size.
        prune_cost_complexity(&mut tree, 0.2);
        assert!(tree.n_leaves() < 4);
        assert!(accuracy(&tree) < 256);
    }

    #[test]
    fn pruned_tree_still_predicts() {
        let ds = staircase_dataset(128);
        let mut tree = TreeBuilder::new().max_depth(10).fit(&ds).unwrap();
        let calib = rows(&(0..32).map(|i| i as f64 * 4.0).collect::<Vec<_>>());
        let counts = tree
            .node_sample_counts(calib.iter().map(|r| r.as_slice()))
            .unwrap();
        prune_to_min_count(&mut tree, &counts, 8).unwrap();
        // Prediction still routes and returns a valid class.
        for x in [0.0, 31.0, 64.0, 127.0] {
            let c = tree.predict(&[x]).unwrap();
            assert!(c < 2);
        }
    }
}
