//! CART tree construction with the classic stopping controls
//! (`max_depth`, `min_samples_split`, `min_samples_leaf`,
//! `min_impurity_decrease`).
//!
//! The paper trains its quality impact models "up to a maximum depth of 8
//! without pruning during this phase" — pruning happens later against the
//! calibration set (see [`crate::prune`]).
//!
//! Construction runs on a thread budget ([`TreeBuilder::threads`]): the
//! split search fans out across features, and large sibling subtrees build
//! concurrently. Parallel builds are **bit-identical** to serial ones —
//! concurrently built subtrees are spliced back into the exact pre-order
//! node layout the serial recursion would have produced, and every
//! floating-point reduction keeps its serial order.

use crate::criterion::SplitCriterion;
use crate::data::Dataset;
use crate::error::DtreeError;
use crate::splitter::{find_best_split_with_threads, Splitter};
use crate::tree::{DecisionTree, Node, NodeInfo, NodeKind};

/// Sibling subtrees build concurrently only when **both** children hold at
/// least this many samples; below it, thread-spawn overhead dominates.
const PARALLEL_FIT_MIN_SAMPLES: usize = 1024;

/// Non-consuming builder for [`DecisionTree`]s.
///
/// # Examples
///
/// ```
/// use tauw_dtree::{builder::TreeBuilder, data::Dataset};
///
/// let mut ds = Dataset::new(vec!["x".into()], 2)?;
/// for i in 0..10 {
///     ds.push_row(&[i as f64], u32::from(i >= 5))?;
/// }
/// let tree = TreeBuilder::new().max_depth(8).fit(&ds)?;
/// assert_eq!(tree.predict(&[0.0])?, 0);
/// assert_eq!(tree.predict(&[9.0])?, 1);
/// # Ok::<(), tauw_dtree::DtreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TreeBuilder {
    criterion: SplitCriterion,
    splitter: Splitter,
    max_depth: Option<usize>,
    min_samples_split: usize,
    min_samples_leaf: usize,
    min_impurity_decrease: f64,
    n_threads: Option<usize>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        TreeBuilder {
            criterion: SplitCriterion::Gini,
            splitter: Splitter::Exact,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            min_impurity_decrease: 0.0,
            n_threads: None,
        }
    }
}

impl TreeBuilder {
    /// Creates a builder with CART defaults (gini, exact splitter,
    /// unlimited depth).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the impurity criterion.
    pub fn criterion(&mut self, criterion: SplitCriterion) -> &mut Self {
        self.criterion = criterion;
        self
    }

    /// Sets the split search strategy.
    pub fn splitter(&mut self, splitter: Splitter) -> &mut Self {
        self.splitter = splitter;
        self
    }

    /// Limits tree depth (root = depth 0). The paper uses 8.
    pub fn max_depth(&mut self, depth: usize) -> &mut Self {
        self.max_depth = Some(depth);
        self
    }

    /// Removes any depth limit.
    pub fn unlimited_depth(&mut self) -> &mut Self {
        self.max_depth = None;
        self
    }

    /// Minimum samples required to attempt a split (default 2).
    pub fn min_samples_split(&mut self, n: usize) -> &mut Self {
        self.min_samples_split = n.max(2);
        self
    }

    /// Minimum samples that must land in each child (default 1).
    pub fn min_samples_leaf(&mut self, n: usize) -> &mut Self {
        self.min_samples_leaf = n.max(1);
        self
    }

    /// Minimum impurity decrease for a split to be accepted (default 0).
    pub fn min_impurity_decrease(&mut self, d: f64) -> &mut Self {
        self.min_impurity_decrease = d.max(0.0);
        self
    }

    /// Pins the thread budget for [`TreeBuilder::fit`] (clamped to ≥ 1).
    /// Unpinned builders use [`parallel::max_threads`]. The trained tree is
    /// bit-identical for every budget; only wall time changes.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.n_threads = Some(n.max(1));
        self
    }

    /// Restores the default (process-wide) thread budget.
    pub fn auto_threads(&mut self) -> &mut Self {
        self.n_threads = None;
        self
    }

    /// Trains a tree on the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DtreeError::EmptyDataset`] if `data` has no samples.
    pub fn fit(&self, data: &Dataset) -> Result<DecisionTree, DtreeError> {
        if data.n_samples() == 0 {
            return Err(DtreeError::EmptyDataset);
        }
        let threads = self.n_threads.unwrap_or_else(parallel::max_threads).max(1);
        let mut idx: Vec<usize> = (0..data.n_samples()).collect();
        let mut nodes: Vec<Node> = Vec::new();
        self.build_node(data, &mut idx, 0, &mut nodes, threads)?;
        DecisionTree::from_parts(
            nodes,
            data.n_features(),
            data.n_classes(),
            data.feature_names().to_vec(),
        )
    }

    /// Recursively builds the subtree over `idx` into `nodes` (pre-order:
    /// parent, left block, right block); returns the node id. `threads` is
    /// the budget available to this subtree: the split search fans out
    /// across features with it, and when both children are large enough the
    /// budget is halved over two concurrently built sibling subtrees.
    fn build_node(
        &self,
        data: &Dataset,
        idx: &mut [usize],
        depth: usize,
        nodes: &mut Vec<Node>,
        threads: usize,
    ) -> Result<usize, DtreeError> {
        let mut counts = vec![0u64; data.n_classes() as usize];
        for &i in idx.iter() {
            counts[data.label(i) as usize] += 1;
        }
        let impurity = self.criterion.impurity(&counts);
        let id = nodes.len();
        nodes.push(Node {
            info: NodeInfo {
                n: idx.len() as u64,
                counts: counts.clone(),
                impurity,
                depth,
            },
            kind: NodeKind::Leaf,
        });

        let depth_ok = self.max_depth.is_none_or(|d| depth < d);
        if !depth_ok || idx.len() < self.min_samples_split || impurity <= 0.0 {
            return Ok(id);
        }
        let split = match find_best_split_with_threads(
            data,
            idx,
            &counts,
            self.criterion,
            self.splitter,
            self.min_samples_leaf,
            threads,
        ) {
            Some(s) if s.gain >= self.min_impurity_decrease => s,
            _ => return Ok(id),
        };

        // In-place partition: left block gets x[feature] <= threshold.
        let mut lo = 0usize;
        let mut hi = idx.len();
        while lo < hi {
            if data.value(idx[lo], split.feature) <= split.threshold {
                lo += 1;
            } else {
                hi -= 1;
                idx.swap(lo, hi);
            }
        }
        debug_assert_eq!(lo, split.n_left, "partition must agree with split search");
        if lo == 0 || lo == idx.len() {
            // Degenerate split (can only happen through FP pathologies);
            // keep the node as a leaf rather than recurse forever.
            return Ok(id);
        }
        let (left_idx, right_idx) = idx.split_at_mut(lo);
        let fork = threads > 1
            && left_idx.len() >= PARALLEL_FIT_MIN_SAMPLES
            && right_idx.len() >= PARALLEL_FIT_MIN_SAMPLES;
        let (left, right) = if fork {
            // Build the sibling subtrees concurrently into local pre-order
            // vectors, then splice them back at exactly the ids the serial
            // recursion would have assigned (left block first, then right).
            let left_budget = threads.div_ceil(2);
            let right_budget = threads / 2;
            let (left_sub, right_sub) = parallel::join(
                threads,
                || self.build_subtree(data, left_idx, depth + 1, left_budget),
                || self.build_subtree(data, right_idx, depth + 1, right_budget),
            );
            let left = splice_subtree(nodes, left_sub?);
            let right = splice_subtree(nodes, right_sub?);
            (left, right)
        } else {
            let left = self.build_node(data, left_idx, depth + 1, nodes, threads)?;
            let right = self.build_node(data, right_idx, depth + 1, nodes, threads)?;
            (left, right)
        };
        nodes[id].kind = NodeKind::Internal {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        Ok(id)
    }

    /// Builds a detached subtree with local (zero-based) node ids.
    fn build_subtree(
        &self,
        data: &Dataset,
        idx: &mut [usize],
        depth: usize,
        threads: usize,
    ) -> Result<Vec<Node>, DtreeError> {
        let mut nodes = Vec::new();
        self.build_node(data, idx, depth, &mut nodes, threads)?;
        Ok(nodes)
    }
}

/// Appends a locally-indexed subtree to `nodes`, rebasing child ids; the
/// subtree root lands at the returned id (`nodes.len()` before the append),
/// which matches the id the serial pre-order recursion would have used.
fn splice_subtree(nodes: &mut Vec<Node>, subtree: Vec<Node>) -> usize {
    let offset = nodes.len();
    nodes.reserve(subtree.len());
    for mut node in subtree {
        if let NodeKind::Internal { left, right, .. } = &mut node.kind {
            *left += offset;
            *right += offset;
        }
        nodes.push(node);
    }
    offset
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_dataset() -> Dataset {
        // Class = (x > 0.35) XOR (y > 0.25): needs depth 2 to separate.
        // The asymmetric thresholds keep the root split informative (a
        // perfectly balanced XOR has zero gain for every single split and
        // defeats any greedy CART, including scikit-learn's).
        let mut ds = Dataset::new(vec!["x".into(), "y".into()], 2).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                let x = i as f64 / 10.0;
                let y = j as f64 / 10.0;
                let label = u32::from((x > 0.35) ^ (y > 0.25));
                ds.push_row(&[x, y], label).unwrap();
            }
        }
        ds
    }

    #[test]
    fn fits_xor_perfectly_with_enough_depth() {
        let ds = xor_like_dataset();
        let tree = TreeBuilder::new().max_depth(3).fit(&ds).unwrap();
        let mut errors = 0;
        for i in 0..ds.n_samples() {
            if tree.predict(ds.row(i)).unwrap() != ds.label(i) {
                errors += 1;
            }
        }
        assert_eq!(errors, 0, "XOR should be perfectly separable at depth 3");
    }

    #[test]
    fn depth_limit_is_respected() {
        let ds = xor_like_dataset();
        for limit in [1usize, 2, 3, 5] {
            let tree = TreeBuilder::new().max_depth(limit).fit(&ds).unwrap();
            assert!(
                tree.depth() <= limit,
                "depth {} exceeds limit {limit}",
                tree.depth()
            );
        }
    }

    #[test]
    fn depth_zero_yields_single_leaf() {
        let ds = xor_like_dataset();
        let tree = TreeBuilder::new().max_depth(0).fit(&ds).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn min_samples_leaf_bounds_every_leaf() {
        let ds = xor_like_dataset();
        let tree = TreeBuilder::new().min_samples_leaf(20).fit(&ds).unwrap();
        for leaf in tree.leaf_ids() {
            assert!(tree.node(leaf).info.n >= 20);
        }
    }

    #[test]
    fn min_samples_split_prevents_tiny_splits() {
        let ds = xor_like_dataset();
        let tree = TreeBuilder::new().min_samples_split(101).fit(&ds).unwrap();
        assert_eq!(
            tree.n_leaves(),
            1,
            "root has 100 samples < 101, must stay a leaf"
        );
    }

    #[test]
    fn pure_dataset_yields_stump() {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for i in 0..50 {
            ds.push_row(&[i as f64], 1).unwrap();
        }
        let tree = TreeBuilder::new().fit(&ds).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[3.0]).unwrap(), 1);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let ds = Dataset::new(vec!["x".into()], 2).unwrap();
        assert_eq!(TreeBuilder::new().fit(&ds), Err(DtreeError::EmptyDataset));
    }

    #[test]
    fn histogram_splitter_reaches_high_accuracy() {
        let ds = xor_like_dataset();
        let tree = TreeBuilder::new()
            .splitter(Splitter::Histogram { bins: 32 })
            .max_depth(4)
            .fit(&ds)
            .unwrap();
        let mut correct = 0;
        for i in 0..ds.n_samples() {
            if tree.predict(ds.row(i)).unwrap() == ds.label(i) {
                correct += 1;
            }
        }
        assert!(
            correct >= 95,
            "histogram splitter should be near-exact here, got {correct}/100"
        );
    }

    #[test]
    fn min_impurity_decrease_stops_marginal_splits() {
        let ds = xor_like_dataset();
        let full = TreeBuilder::new().max_depth(6).fit(&ds).unwrap();
        let constrained = TreeBuilder::new()
            .max_depth(6)
            .min_impurity_decrease(0.2)
            .fit(&ds)
            .unwrap();
        assert!(constrained.n_leaves() <= full.n_leaves());
    }

    #[test]
    fn node_counts_sum_to_children() {
        let ds = xor_like_dataset();
        let tree = TreeBuilder::new().max_depth(4).fit(&ds).unwrap();
        for id in 0..tree.n_nodes() {
            if let NodeKind::Internal { left, right, .. } = tree.node(id).kind {
                assert_eq!(
                    tree.node(id).info.n,
                    tree.node(left).info.n + tree.node(right).info.n
                );
                for c in 0..2 {
                    assert_eq!(
                        tree.node(id).info.counts[c],
                        tree.node(left).info.counts[c] + tree.node(right).info.counts[c]
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_fit_matches_serial_fit_on_small_data() {
        // Small data never crosses the fork threshold, but the whole code
        // path (budget plumbing, split fan-out guard) must stay identical.
        let ds = xor_like_dataset();
        let serial = TreeBuilder::new().max_depth(4).threads(1).fit(&ds).unwrap();
        for threads in [2usize, 8] {
            let par = TreeBuilder::new()
                .max_depth(4)
                .threads(threads)
                .fit(&ds)
                .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn threaded_fit_matches_serial_fit_above_fork_threshold() {
        // Enough samples that the root split forks sibling subtree builds.
        let mut ds = Dataset::new(vec!["x".into(), "y".into()], 2).unwrap();
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..6000 {
            let (x, y) = (next(), next());
            let label = u32::from(x + 0.3 * y > 0.6);
            ds.push_row(&[x, y], label).unwrap();
        }
        let serial = TreeBuilder::new().max_depth(6).threads(1).fit(&ds).unwrap();
        for threads in [2usize, 8] {
            let par = TreeBuilder::new()
                .max_depth(6)
                .threads(threads)
                .fit(&ds)
                .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
        assert!(serial.n_nodes() > 3, "tree must actually have forked");
    }

    #[test]
    fn multiclass_training_works() {
        let mut ds = Dataset::new(vec!["x".into()], 3).unwrap();
        for i in 0..30 {
            let label = (i / 10) as u32;
            ds.push_row(&[i as f64], label).unwrap();
        }
        let tree = TreeBuilder::new().fit(&ds).unwrap();
        assert_eq!(tree.predict(&[5.0]).unwrap(), 0);
        assert_eq!(tree.predict(&[15.0]).unwrap(), 1);
        assert_eq!(tree.predict(&[25.0]).unwrap(), 2);
    }
}
