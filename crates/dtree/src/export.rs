//! Transparent export of trained trees.
//!
//! A core selling point of the uncertainty wrapper approach is that domain
//! experts can *inspect* the quality impact model. This module renders a
//! [`DecisionTree`] as indented text, Graphviz DOT, or a self-contained JSON
//! document (hand-rolled writer — no extra dependencies).

use crate::tree::{DecisionTree, NodeId, NodeKind};
use std::fmt::Write as _;

/// Renders the tree as human-readable indented text.
///
/// # Examples
///
/// ```
/// use tauw_dtree::{builder::TreeBuilder, data::Dataset, export::to_text};
///
/// let mut ds = Dataset::new(vec!["x".into()], 2)?;
/// for i in 0..10 {
///     ds.push_row(&[i as f64], u32::from(i >= 5))?;
/// }
/// let tree = TreeBuilder::new().fit(&ds)?;
/// let text = to_text(&tree);
/// assert!(text.contains("x <="));
/// # Ok::<(), tauw_dtree::DtreeError>(())
/// ```
pub fn to_text(tree: &DecisionTree) -> String {
    let mut out = String::new();
    render_text(tree, 0, 0, &mut out);
    out
}

fn render_text(tree: &DecisionTree, id: NodeId, indent: usize, out: &mut String) {
    let node = tree.node(id);
    let pad = "  ".repeat(indent);
    match node.kind {
        NodeKind::Leaf => {
            let _ = writeln!(
                out,
                "{pad}leaf #{id}: n={} counts={:?} impurity={:.4}",
                node.info.n, node.info.counts, node.info.impurity
            );
        }
        NodeKind::Internal {
            feature,
            threshold,
            left,
            right,
        } => {
            let name = &tree.feature_names()[feature];
            let _ = writeln!(
                out,
                "{pad}node #{id}: {name} <= {threshold:.6} (n={}, impurity={:.4})",
                node.info.n, node.info.impurity
            );
            render_text(tree, left, indent + 1, out);
            render_text(tree, right, indent + 1, out);
        }
    }
}

/// Renders the tree in Graphviz DOT format.
pub fn to_dot(tree: &DecisionTree) -> String {
    let mut out = String::from("digraph decision_tree {\n  node [shape=box];\n");
    for id in 0..tree.n_nodes() {
        if !is_reachable(tree, id) {
            continue;
        }
        let node = tree.node(id);
        match node.kind {
            NodeKind::Leaf => {
                let _ = writeln!(
                    out,
                    "  n{id} [label=\"leaf\\nn={}\\ncounts={:?}\"];",
                    node.info.n, node.info.counts
                );
            }
            NodeKind::Internal {
                feature,
                threshold,
                left,
                right,
            } => {
                let name = &tree.feature_names()[feature];
                let _ = writeln!(
                    out,
                    "  n{id} [label=\"{name} <= {threshold:.4}\\nn={}\"];",
                    node.info.n
                );
                let _ = writeln!(out, "  n{id} -> n{left} [label=\"yes\"];");
                let _ = writeln!(out, "  n{id} -> n{right} [label=\"no\"];");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn is_reachable(tree: &DecisionTree, target: NodeId) -> bool {
    let mut stack = vec![0usize];
    while let Some(id) = stack.pop() {
        if id == target {
            return true;
        }
        if let NodeKind::Internal { left, right, .. } = tree.node(id).kind {
            stack.push(left);
            stack.push(right);
        }
    }
    false
}

/// Renders the tree as a self-contained JSON document (recursive node
/// objects). The output is deterministic.
pub fn to_json(tree: &DecisionTree) -> String {
    let mut out = String::new();
    out.push_str("{\"n_features\":");
    let _ = write!(out, "{}", tree.n_features());
    out.push_str(",\"n_classes\":");
    let _ = write!(out, "{}", tree.n_classes());
    out.push_str(",\"feature_names\":[");
    for (i, name) in tree.feature_names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(&mut out, name);
    }
    out.push_str("],\"root\":");
    render_json(tree, 0, &mut out);
    out.push('}');
    out
}

fn render_json(tree: &DecisionTree, id: NodeId, out: &mut String) {
    let node = tree.node(id);
    out.push('{');
    let _ = write!(
        out,
        "\"id\":{id},\"n\":{},\"impurity\":{}",
        node.info.n, node.info.impurity
    );
    out.push_str(",\"counts\":[");
    for (i, c) in node.info.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    out.push(']');
    match node.kind {
        NodeKind::Leaf => out.push_str(",\"kind\":\"leaf\""),
        NodeKind::Internal {
            feature,
            threshold,
            left,
            right,
        } => {
            let _ = write!(
                out,
                ",\"kind\":\"internal\",\"feature\":{feature},\"threshold\":{threshold}"
            );
            out.push_str(",\"left\":");
            render_json(tree, left, out);
            out.push_str(",\"right\":");
            render_json(tree, right, out);
        }
    }
    out.push('}');
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::data::Dataset;

    fn small_tree() -> DecisionTree {
        let mut ds = Dataset::new(vec!["rain".into(), "blur\"q".into()], 2).unwrap();
        for i in 0..20 {
            ds.push_row(&[i as f64 / 20.0, (i % 4) as f64], u32::from(i >= 10))
                .unwrap();
        }
        TreeBuilder::new().max_depth(3).fit(&ds).unwrap()
    }

    #[test]
    fn text_mentions_features_and_leaves() {
        let t = small_tree();
        let text = to_text(&t);
        assert!(text.contains("rain <="));
        assert!(text.contains("leaf"));
        assert_eq!(text.lines().count(), t.n_nodes());
    }

    #[test]
    fn dot_is_well_formed() {
        let t = small_tree();
        let dot = to_dot(&t);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        // Every internal node produces two edges.
        let n_edges = dot.matches("->").count();
        assert_eq!(n_edges, (t.n_nodes() - t.n_leaves()) * 2);
    }

    #[test]
    fn json_contains_structure_and_escapes() {
        let t = small_tree();
        let json = to_json(&t);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"n_features\":2"));
        assert!(json.contains("\\\"q"), "feature name quote must be escaped");
        assert!(json.contains("\"kind\":\"leaf\""));
        // Balanced braces.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_string_escaping_covers_control_chars() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn single_leaf_tree_exports() {
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        ds.push_row(&[1.0], 0).unwrap();
        let t = TreeBuilder::new().fit(&ds).unwrap();
        assert!(to_text(&t).contains("leaf #0"));
        assert!(to_dot(&t).contains("n0"));
        assert!(to_json(&t).contains("\"kind\":\"leaf\""));
    }
}
