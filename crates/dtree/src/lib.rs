//! # tauw-dtree
//!
//! CART decision trees built from scratch for the taUW reproduction. The
//! paper's quality impact models are CART trees trained with the gini index
//! (maximum depth 8), later pruned so every leaf retains at least 200
//! calibration samples, then annotated with binomial confidence bounds.
//! None of the thin ML crates in the ecosystem expose the calibration-driven
//! pruning and per-leaf routing this requires, so the tree is hand-built:
//!
//! * [`data::Dataset`] — dense row-major feature matrix with named columns.
//! * [`criterion::SplitCriterion`] — gini / entropy impurity.
//! * [`splitter::Splitter`] — exact sort-and-scan or histogram split search.
//! * [`builder::TreeBuilder`] — recursive CART construction with the
//!   classic stopping controls.
//! * [`tree::DecisionTree`] — the arena-based tree: prediction, decision
//!   paths, per-node routing counts, collapse/compact editing.
//! * [`flat::FlatTree`] — the compiled struct-of-arrays serving form:
//!   branch-light routing to dense, stable leaf IDs, single-sample and
//!   batched (thread-fanned) prediction, bit-identical to the pointer tree.
//! * [`forest`] — bootstrap tree ensembles: deterministic per-tree
//!   resampling fanned over the thread budget, plus the [`forest::FlatForest`]
//!   serving form (one flat traversal per member) that smooths the hard
//!   split boundaries of a single tree.
//! * [`prune`] — calibration-driven bottom-up pruning.
//! * [`export`] — text / DOT / JSON rendering for expert review.
//! * [`importance`] — mean-decrease-in-impurity feature importances.
//!
//! ## Quickstart
//!
//! ```
//! use tauw_dtree::{builder::TreeBuilder, data::Dataset};
//!
//! let mut ds = Dataset::new(vec!["rain".into(), "blur".into()], 2)?;
//! for i in 0..100 {
//!     let rain = (i % 10) as f64 / 10.0;
//!     let blur = (i % 7) as f64 / 7.0;
//!     let failed = u32::from(rain + blur > 1.0);
//!     ds.push_row(&[rain, blur], failed)?;
//! }
//! let tree = TreeBuilder::new().max_depth(8).fit(&ds)?;
//! let p = tree.predict_proba(&[0.9, 0.9])?;
//! assert!(p[1] > 0.5, "heavy rain + blur should look risky");
//! # Ok::<(), tauw_dtree::DtreeError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod criterion;
pub mod data;
pub mod error;
pub mod export;
pub mod flat;
pub mod forest;
pub mod importance;
pub mod prune;
pub mod splitter;
pub mod tree;

pub use builder::TreeBuilder;
pub use criterion::SplitCriterion;
pub use data::Dataset;
pub use error::DtreeError;
pub use flat::{FlatLeaf, FlatTree, LeafId};
pub use forest::{FlatForest, Forest, ForestBuilder};
pub use splitter::Splitter;
pub use tree::{DecisionTree, Node, NodeId, NodeInfo, NodeKind};
