//! Diagnostic probe for calibrating the simulated DDM's error model
//! against the paper's headline rates. Run with:
//!
//! ```text
//! cargo test -p tauw-sim --release --test probe -- --ignored --nocapture
//! ```

use tauw_sim::{DatasetBuilder, DeficitKind, SimConfig};

#[test]
#[ignore = "diagnostic tool, not a correctness test"]
fn print_error_model_statistics() {
    let scale: f64 = std::env::var("TAUW_PROBE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let cfg = SimConfig::scaled(scale);
    let data = DatasetBuilder::new(cfg.clone(), 1).unwrap().build();

    // Per-step misclassification over test windows.
    let mut per_step = [(0usize, 0usize); 10];
    for s in &data.test {
        for (j, f) in s.frames.iter().enumerate() {
            per_step[j].1 += 1;
            if !f.correct {
                per_step[j].0 += 1;
            }
        }
    }
    println!("== per-window-step isolated misclassification ==");
    for (j, (wrong, total)) in per_step.iter().enumerate() {
        println!("step {:2}: {:.4}", j + 1, *wrong as f64 / *total as f64);
    }
    let total_wrong: usize = per_step.iter().map(|x| x.0).sum();
    let total: usize = per_step.iter().map(|x| x.1).sum();
    println!(
        "overall: {:.4} (paper 0.0789)",
        total_wrong as f64 / total as f64
    );

    // Mean latent deficits over test frames.
    println!("\n== mean latent deficits (test frames) ==");
    for k in DeficitKind::ALL {
        let mean: f64 = data
            .test
            .iter()
            .flat_map(|s| &s.frames)
            .map(|f| f.latent_deficits.get(k))
            .sum::<f64>()
            / total as f64;
        println!("{:22}: {:.3}", k.name(), mean);
    }

    // Distribution of per-series error counts (correlation fingerprint).
    let mut hist = [0usize; 11];
    for s in &data.test {
        let errs = s.frames.iter().filter(|f| !f.correct).count();
        hist[errs.min(10)] += 1;
    }
    println!("\n== series error-count histogram (10-step windows) ==");
    for (k, n) in hist.iter().enumerate() {
        println!("{k:2} errors: {n}");
    }

    // Fused misclassification via simple majority replay.
    let mut fused_wrong = 0usize;
    let mut fused_step10 = (0usize, 0usize);
    for s in &data.test {
        let mut outcomes: Vec<u32> = Vec::new();
        for (j, f) in s.frames.iter().enumerate() {
            outcomes.push(u32::from(f.outcome.id()));
            let fused = tauw_fusion_majority(&outcomes);
            let ok = fused == u32::from(s.true_class.id());
            if !ok {
                fused_wrong += 1;
            }
            if j == 9 {
                fused_step10.1 += 1;
                if !ok {
                    fused_step10.0 += 1;
                }
            }
        }
    }
    println!(
        "\nfused misclassification: {:.4} (paper 0.0557), step10 {:.4} (paper 0.0369)",
        fused_wrong as f64 / total as f64,
        fused_step10.0 as f64 / fused_step10.1 as f64
    );
}

fn tauw_fusion_majority(outcomes: &[u32]) -> u32 {
    let mut entries: Vec<(u32, usize, usize)> = Vec::new();
    for (j, &o) in outcomes.iter().enumerate() {
        match entries.iter_mut().find(|(v, _, _)| *v == o) {
            Some(e) => {
                e.1 += 1;
                e.2 = j;
            }
            None => entries.push((o, 1, j)),
        }
    }
    let mut best = entries[0];
    for &e in &entries[1..] {
        if e.1 > best.1 || (e.1 == best.1 && e.2 > best.2) {
            best = e;
        }
    }
    best.0
}
