//! Central configuration for the synthetic TSR world.
//!
//! Every knob that shapes the simulated joint distribution of (input
//! quality, DDM correctness, series structure) lives here with documented
//! defaults. The defaults were calibrated so that the *shape* of the
//! paper's results reproduces (DDM error rate near 8% on length-10
//! windows, strong within-series error correlation, error rate falling as
//! the sign grows); `tauw-experiments` records the measured values next to
//! the paper's in `EXPERIMENTS.md`.

use crate::deficits::{DeficitKind, N_DEFICITS};
use crate::geometry::ApproachGeometry;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic world and the simulated DDM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of base timeseries (paper: 1307 GTSRB tracks).
    pub n_series: usize,
    /// Approach geometry shared by all series.
    pub geometry: ApproachGeometry,
    /// Train/calibration/test split in series counts (paper: 522/392/392
    /// with one spare; we assign it to training).
    pub split: (usize, usize, usize),
    /// Per-deficit intensity levels used to augment each *training* series
    /// (paper: low/medium/high).
    pub train_intensity_levels: Vec<f64>,
    /// Number of random situation settings per calibration series
    /// (paper: 28).
    pub calib_augmentations: usize,
    /// Number of random situation settings per test series (paper: 28).
    pub test_augmentations: usize,
    /// Length of the subsampled windows for calibration/test (paper: 10).
    pub window_len: usize,
    /// DDM error-model intercept (log-odds of failure in perfect
    /// conditions at zero distance).
    pub ddm_bias: f64,
    /// Log-odds weight of normalized distance (`distance / start_distance`).
    pub ddm_distance_weight: f64,
    /// Log-odds weight per deficit kind.
    pub ddm_deficit_weights: [f64; N_DEFICITS],
    /// Standard deviation of the per-series random effect on the log-odds
    /// (systematic series difficulty; a key driver of error dependence).
    pub ddm_series_sigma: f64,
    /// AR(1) coefficient of the Gaussian copula linking consecutive error
    /// draws (0 = independent errors, →1 = fully persistent errors).
    pub ddm_error_copula_phi: f64,
    /// Probability that an error outputs the series' systematic confusion
    /// class rather than a uniformly random wrong class.
    pub ddm_systematic_confusion_prob: f64,
    /// Std-dev of additive sensor noise on observed deficit intensities.
    pub sensor_noise_sigma: f64,
    /// Relative std-dev of the observed pixel size (bounding-box jitter).
    pub pixel_size_rel_noise: f64,
    /// Per-frame relative jitter of motion blur around its base level.
    pub blur_jitter: f64,
    /// Per-frame probability that the artificial-backlight gate toggles
    /// (streetlights / oncoming traffic passing through the frame).
    pub backlight_toggle_prob: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_series: 1307,
            geometry: ApproachGeometry::default(),
            split: (523, 392, 392),
            train_intensity_levels: vec![0.33, 0.66, 1.0],
            calib_augmentations: 28,
            test_augmentations: 28,
            window_len: 10,
            ddm_bias: -6.45,
            ddm_distance_weight: 2.4,
            ddm_deficit_weights: deficit_weights(),
            ddm_series_sigma: 1.05,
            ddm_error_copula_phi: 0.72,
            ddm_systematic_confusion_prob: 0.75,
            sensor_noise_sigma: 0.04,
            pixel_size_rel_noise: 0.03,
            blur_jitter: 0.25,
            backlight_toggle_prob: 0.25,
        }
    }
}

/// Default log-odds contribution of each deficit at full intensity.
fn deficit_weights() -> [f64; N_DEFICITS] {
    let mut w = [0.0; N_DEFICITS];
    w[DeficitKind::Rain as usize] = 1.0;
    w[DeficitKind::Darkness as usize] = 0.9;
    w[DeficitKind::Haze as usize] = 1.3;
    w[DeficitKind::NaturalBacklight as usize] = 0.8;
    w[DeficitKind::ArtificialBacklight as usize] = 0.7;
    w[DeficitKind::DirtOnSign as usize] = 1.0;
    w[DeficitKind::DirtOnLens as usize] = 0.7;
    w[DeficitKind::SteamedLens as usize] = 1.4;
    w[DeficitKind::MotionBlur as usize] = 1.2;
    w
}

impl SimConfig {
    /// A scaled-down configuration for fast unit tests and benches:
    /// `fraction` scales series counts and augmentations (min 1 each).
    pub fn scaled(fraction: f64) -> Self {
        let base = SimConfig::default();
        let f = fraction.clamp(0.001, 1.0);
        let scale = |x: usize| ((x as f64 * f).round() as usize).max(4);
        let split = (
            scale(base.split.0),
            scale(base.split.1),
            scale(base.split.2),
        );
        SimConfig {
            // Derive the total from the scaled splits so rounding can never
            // make them overshoot.
            n_series: split.0 + split.1 + split.2,
            split,
            calib_augmentations: ((base.calib_augmentations as f64 * f).round() as usize).max(1),
            test_augmentations: ((base.test_augmentations as f64 * f).round() as usize).max(1),
            ..base
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.split.0 + self.split.1 + self.split.2 > self.n_series {
            return Err(format!(
                "split {:?} exceeds n_series {}",
                self.split, self.n_series
            ));
        }
        if self.window_len == 0 || self.window_len > self.geometry.n_frames {
            return Err(format!(
                "window_len {} must be in 1..={}",
                self.window_len, self.geometry.n_frames
            ));
        }
        if !(0.0..1.0).contains(&self.ddm_error_copula_phi) {
            return Err("copula phi must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.ddm_systematic_confusion_prob) {
            return Err("systematic confusion probability must be in [0, 1]".into());
        }
        if self.train_intensity_levels.is_empty() {
            return Err("at least one training intensity level is required".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_sized() {
        let c = SimConfig::default();
        c.validate().unwrap();
        assert_eq!(c.n_series, 1307);
        assert_eq!(c.split.0 + c.split.1 + c.split.2, 1307);
        assert_eq!(c.window_len, 10);
        assert_eq!(c.calib_augmentations, 28);
        assert_eq!(c.train_intensity_levels.len(), 3);
    }

    #[test]
    fn scaled_config_shrinks_but_stays_valid() {
        let c = SimConfig::scaled(0.05);
        c.validate().unwrap();
        assert!(c.n_series < 100);
        assert!(c.calib_augmentations >= 1);
    }

    #[test]
    fn validation_catches_bad_split() {
        let c = SimConfig {
            split: (1000, 1000, 1000),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_window() {
        let mut c = SimConfig {
            window_len: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.window_len = 99;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_copula() {
        let c = SimConfig {
            ddm_error_copula_phi: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn all_deficits_have_positive_weight() {
        let c = SimConfig::default();
        for k in DeficitKind::ALL {
            assert!(
                c.ddm_deficit_weights[k as usize] > 0.0,
                "{k} weight must be positive"
            );
        }
    }
}
