//! Traffic-sign tracking: a constant-velocity Kalman filter with gating,
//! the substrate that tells the timeseries buffer when a *new* physical
//! sign begins (paper Section III: "the tracking component detects a new
//! timeseries whenever the location of the detected object changes").
//!
//! The filter follows the sign's position in the image plane; a detection
//! whose normalized innovation exceeds the gate is declared a new object.

use serde::{Deserialize, Serialize};

/// A 2-D constant-velocity Kalman filter with state `[x, y, vx, vy]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KalmanFilter2D {
    /// State estimate `[x, y, vx, vy]`.
    x: [f64; 4],
    /// State covariance (row-major 4×4).
    p: [[f64; 4]; 4],
    /// Process noise intensity (acceleration spectral density).
    q: f64,
    /// Measurement noise variance (per axis).
    r: f64,
}

impl KalmanFilter2D {
    /// Creates a filter at the given initial position with diffuse velocity.
    pub fn new(position: [f64; 2], process_noise: f64, measurement_noise: f64) -> Self {
        let mut p = [[0.0; 4]; 4];
        p[0][0] = measurement_noise;
        p[1][1] = measurement_noise;
        p[2][2] = 100.0;
        p[3][3] = 100.0;
        KalmanFilter2D {
            x: [position[0], position[1], 0.0, 0.0],
            p,
            q: process_noise,
            r: measurement_noise,
        }
    }

    /// Current position estimate.
    pub fn position(&self) -> [f64; 2] {
        [self.x[0], self.x[1]]
    }

    /// Current velocity estimate.
    pub fn velocity(&self) -> [f64; 2] {
        [self.x[2], self.x[3]]
    }

    /// Time-update with unit timestep.
    pub fn predict(&mut self) {
        // x' = F x with F = [[1,0,1,0],[0,1,0,1],[0,0,1,0],[0,0,0,1]].
        self.x = [
            self.x[0] + self.x[2],
            self.x[1] + self.x[3],
            self.x[2],
            self.x[3],
        ];
        // P' = F P Fᵀ + Q.
        let f = [
            [1.0, 0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let fp = mat_mul(&f, &self.p);
        let mut p = mat_mul_transpose(&fp, &f);
        // Discrete white-noise acceleration model.
        let q = self.q;
        let qm = [
            [q / 4.0, 0.0, q / 2.0, 0.0],
            [0.0, q / 4.0, 0.0, q / 2.0],
            [q / 2.0, 0.0, q, 0.0],
            [0.0, q / 2.0, 0.0, q],
        ];
        for i in 0..4 {
            for j in 0..4 {
                p[i][j] += qm[i][j];
            }
        }
        self.p = p;
    }

    /// Measurement update with an observed position. Returns the squared
    /// Mahalanobis distance of the innovation (the gating statistic).
    pub fn update(&mut self, z: [f64; 2]) -> f64 {
        // Innovation y = z − H x, with H = [[1,0,0,0],[0,1,0,0]].
        let y = [z[0] - self.x[0], z[1] - self.x[1]];
        // S = H P Hᵀ + R (2×2).
        let s = [
            [self.p[0][0] + self.r, self.p[0][1]],
            [self.p[1][0], self.p[1][1] + self.r],
        ];
        let det = s[0][0] * s[1][1] - s[0][1] * s[1][0];
        let s_inv = [
            [s[1][1] / det, -s[0][1] / det],
            [-s[1][0] / det, s[0][0] / det],
        ];
        let d2 = y[0] * (s_inv[0][0] * y[0] + s_inv[0][1] * y[1])
            + y[1] * (s_inv[1][0] * y[0] + s_inv[1][1] * y[1]);

        // Kalman gain K = P Hᵀ S⁻¹ (4×2).
        let mut k = [[0.0; 2]; 4];
        for (row, p_row) in k.iter_mut().zip(&self.p) {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = p_row[0] * s_inv[0][j] + p_row[1] * s_inv[1][j];
            }
        }
        for (xi, k_row) in self.x.iter_mut().zip(&k) {
            *xi += k_row[0] * y[0] + k_row[1] * y[1];
        }
        // P = (I − K H) P.
        let mut ikh = [[0.0; 4]; 4];
        for (i, row) in ikh.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                let kh = if j < 2 { k[i][j] } else { 0.0 };
                *v = f64::from(u8::from(i == j)) - kh;
            }
        }
        self.p = mat_mul(&ikh, &self.p);
        d2
    }
}

fn mat_mul(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = 0.0;
            for (k, bk) in b.iter().enumerate() {
                acc += a[i][k] * bk[j];
            }
            out[i][j] = acc;
        }
    }
    out
}

/// Computes `A Bᵀ`.
fn mat_mul_transpose(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        for (j, bj) in b.iter().enumerate() {
            let mut acc = 0.0;
            for k in 0..4 {
                acc += a[i][k] * bj[k];
            }
            out[i][j] = acc;
        }
    }
    out
}

/// Result of feeding one detection to the [`SignTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackEvent {
    /// The detection continues the current track (same physical sign).
    Continued,
    /// The detection starts a new track — the timeseries buffer must be
    /// cleared.
    NewTrack,
}

/// Single-object sign tracker with chi-square gating.
///
/// # Examples
///
/// ```
/// use tauw_sim::tracking::{SignTracker, TrackEvent};
///
/// let mut tracker = SignTracker::new(9.21); // chi²(2 dof, 99%)
/// assert_eq!(tracker.observe([0.0, 0.0]), TrackEvent::NewTrack);
/// assert_eq!(tracker.observe([1.0, 1.1]), TrackEvent::Continued);
/// // A detection far from the predicted location starts a new series.
/// assert_eq!(tracker.observe([500.0, -300.0]), TrackEvent::NewTrack);
/// ```
#[derive(Debug, Clone)]
pub struct SignTracker {
    filter: Option<KalmanFilter2D>,
    gate: f64,
    process_noise: f64,
    measurement_noise: f64,
    track_count: u64,
}

impl SignTracker {
    /// Creates a tracker with the given squared-Mahalanobis gate
    /// (9.21 ≈ 99% chi-square quantile with 2 degrees of freedom) and
    /// default noise parameters suited to slow, near-linear image motion.
    pub fn new(gate: f64) -> Self {
        Self::with_noise(gate, 2.0, 4.0)
    }

    /// Creates a tracker with explicit process/measurement noise. Approach
    /// trajectories accelerate sharply in the image plane as the vehicle
    /// closes in (`x ∝ 1/distance`), so trackers consuming full approaches
    /// need a large process noise to keep the constant-velocity model's
    /// gate open (e.g. `with_noise(13.8, 2500.0, 9.0)`).
    pub fn with_noise(gate: f64, process_noise: f64, measurement_noise: f64) -> Self {
        SignTracker {
            filter: None,
            gate,
            process_noise,
            measurement_noise,
            track_count: 0,
        }
    }

    /// Number of distinct tracks seen so far.
    pub fn track_count(&self) -> u64 {
        self.track_count
    }

    /// Current position estimate, if a track is active.
    pub fn position(&self) -> Option<[f64; 2]> {
        self.filter.as_ref().map(KalmanFilter2D::position)
    }

    /// Feeds one detection; decides whether it continues the current track.
    pub fn observe(&mut self, position: [f64; 2]) -> TrackEvent {
        match self.filter.as_mut() {
            None => {
                self.start_track(position);
                TrackEvent::NewTrack
            }
            Some(filter) => {
                filter.predict();
                // Evaluate gating on a copy so a rejected detection does not
                // corrupt the active track before we replace it.
                let mut probe = filter.clone();
                let d2 = probe.update(position);
                if d2 <= self.gate {
                    *filter = probe;
                    TrackEvent::Continued
                } else {
                    self.start_track(position);
                    TrackEvent::NewTrack
                }
            }
        }
    }

    /// Coasts through a camera frame without a detection (detector miss,
    /// occlusion): the motion model advances so that the next real
    /// detection is gated against the correct predicted position. No-op if
    /// no track is active.
    pub fn coast(&mut self) {
        if let Some(filter) = self.filter.as_mut() {
            filter.predict();
        }
    }

    /// Declares end-of-stream; the next detection will start a new track.
    pub fn reset(&mut self) {
        self.filter = None;
    }

    fn start_track(&mut self, position: [f64; 2]) {
        self.filter = Some(KalmanFilter2D::new(
            position,
            self.process_noise,
            self.measurement_noise,
        ));
        self.track_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kalman_converges_on_stationary_target() {
        let mut kf = KalmanFilter2D::new([10.0, -5.0], 0.01, 1.0);
        for _ in 0..50 {
            kf.predict();
            kf.update([10.0, -5.0]);
        }
        let pos = kf.position();
        assert!((pos[0] - 10.0).abs() < 0.1);
        assert!((pos[1] + 5.0).abs() < 0.1);
        let v = kf.velocity();
        assert!(v[0].abs() < 0.05 && v[1].abs() < 0.05);
    }

    #[test]
    fn kalman_tracks_constant_velocity() {
        let mut kf = KalmanFilter2D::new([0.0, 0.0], 0.1, 1.0);
        for t in 1..60 {
            kf.predict();
            kf.update([2.0 * t as f64, -(t as f64)]);
        }
        let v = kf.velocity();
        assert!((v[0] - 2.0).abs() < 0.1, "vx {v:?}");
        assert!((v[1] + 1.0).abs() < 0.1, "vy {v:?}");
    }

    #[test]
    fn innovation_shrinks_as_filter_converges() {
        let mut kf = KalmanFilter2D::new([0.0, 0.0], 0.01, 1.0);
        kf.predict();
        let first = kf.update([3.0, 3.0]);
        let mut last = first;
        for _ in 0..20 {
            kf.predict();
            last = kf.update([3.0, 3.0]);
        }
        assert!(last < first);
    }

    #[test]
    fn tracker_segments_two_approaches() {
        let mut tracker = SignTracker::new(9.21);
        let mut events = Vec::new();
        // First sign drifts slowly outward.
        for t in 0..10 {
            events.push(tracker.observe([10.0 + 1.5 * t as f64, 5.0 + 0.8 * t as f64]));
        }
        // Second sign appears elsewhere in the image.
        for t in 0..10 {
            events.push(tracker.observe([-200.0 + 1.5 * t as f64, 90.0 + 0.8 * t as f64]));
        }
        assert_eq!(events[0], TrackEvent::NewTrack);
        assert!(events[1..10].iter().all(|e| *e == TrackEvent::Continued));
        assert_eq!(
            events[10],
            TrackEvent::NewTrack,
            "jump must start a new series"
        );
        assert!(events[11..].iter().all(|e| *e == TrackEvent::Continued));
        assert_eq!(tracker.track_count(), 2);
    }

    #[test]
    fn tracker_tolerates_measurement_noise() {
        let mut tracker = SignTracker::new(9.21);
        tracker.observe([0.0, 0.0]);
        let mut new_tracks = 0;
        for t in 1..30 {
            let jitter = if t % 2 == 0 { 1.2 } else { -1.2 };
            if tracker.observe([t as f64 * 2.0 + jitter, t as f64 + jitter]) == TrackEvent::NewTrack
            {
                new_tracks += 1;
            }
        }
        assert_eq!(
            new_tracks, 0,
            "noisy but consistent motion must not fragment the track"
        );
    }

    #[test]
    fn reset_forces_new_track() {
        let mut tracker = SignTracker::new(9.21);
        tracker.observe([0.0, 0.0]);
        tracker.observe([1.0, 1.0]);
        tracker.reset();
        assert_eq!(tracker.observe([2.0, 2.0]), TrackEvent::NewTrack);
        assert_eq!(tracker.track_count(), 2);
    }

    #[test]
    fn position_is_none_before_first_detection() {
        let tracker = SignTracker::new(9.21);
        assert!(tracker.position().is_none());
    }
}
