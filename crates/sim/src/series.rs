//! Series and frame records: the unit of data the wrapper pipeline
//! consumes.

use crate::classes::SignClass;
use crate::deficits::DeficitVector;
use crate::sensors::QualityObservation;
use crate::situation::SituationSetting;
use serde::{Deserialize, Serialize};

/// One camera frame within a timeseries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Position within the *delivered* series (0-based). For subsampled
    /// windows this restarts at 0.
    pub step: usize,
    /// Position within the original full-length approach (0-based); equals
    /// `step` for unsubsampled series.
    pub absolute_step: usize,
    /// Distance to the sign in metres.
    pub distance_m: f64,
    /// True (latent) sign size in pixels.
    pub pixel_size: f64,
    /// Latent deficit intensities for this frame (after per-frame
    /// evolution of motion blur / artificial backlight).
    pub latent_deficits: DeficitVector,
    /// The sensor readout (stateless quality factors) for this frame.
    pub observation: QualityObservation,
    /// The simulated DDM's classification outcome.
    pub outcome: SignClass,
    /// Whether the outcome matches the true class.
    pub correct: bool,
    /// The DDM's softmax-style self-confidence (for reference only — the
    /// outside-model wrapper does not use it).
    pub ddm_confidence: f64,
}

/// A timeseries of frames showing the same physical traffic sign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesRecord {
    /// Unique series id.
    pub series_id: u64,
    /// Ground-truth class of the depicted sign.
    pub true_class: SignClass,
    /// The situation setting the series was generated under.
    pub setting: SituationSetting,
    /// Frames in temporal order.
    pub frames: Vec<Frame>,
}

impl SeriesRecord {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the series has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Fraction of frames the DDM classified correctly.
    pub fn ddm_accuracy(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().filter(|f| f.correct).count() as f64 / self.frames.len() as f64
    }

    /// Extracts the subseries `[start, start + len)` with steps re-indexed
    /// from 0 (used for the paper's length-10 window subsampling).
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the series bounds.
    pub fn window(&self, start: usize, len: usize) -> SeriesRecord {
        assert!(start + len <= self.frames.len(), "window out of bounds");
        let frames = self.frames[start..start + len]
            .iter()
            .enumerate()
            .map(|(i, f)| Frame { step: i, ..*f })
            .collect();
        SeriesRecord {
            series_id: self.series_id,
            true_class: self.true_class,
            setting: self.setting.clone(),
            frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::ddm::SimulatedDdm;
    use crate::situation::SituationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn any_series() -> SeriesRecord {
        let cfg = SimConfig::default();
        let ddm = SimulatedDdm::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let setting = SituationModel::new().sample(&mut rng);
        ddm.generate_series(7, SignClass::new(2).unwrap(), &setting, &mut rng)
    }

    #[test]
    fn window_reindexes_steps_and_keeps_geometry() {
        let s = any_series();
        let w = s.window(12, 10);
        assert_eq!(w.len(), 10);
        for (i, f) in w.frames.iter().enumerate() {
            assert_eq!(f.step, i);
            assert_eq!(f.absolute_step, 12 + i);
            assert_eq!(f.distance_m, s.frames[12 + i].distance_m);
            assert_eq!(f.outcome, s.frames[12 + i].outcome);
        }
        assert_eq!(w.true_class, s.true_class);
    }

    #[test]
    #[should_panic(expected = "window out of bounds")]
    fn window_out_of_bounds_panics() {
        let s = any_series();
        let _ = s.window(25, 10);
    }

    #[test]
    fn accuracy_counts_correct_frames() {
        let mut s = any_series();
        for f in &mut s.frames {
            f.correct = false;
        }
        assert_eq!(s.ddm_accuracy(), 0.0);
        s.frames[0].correct = true;
        assert!((s.ddm_accuracy() - 1.0 / s.len() as f64).abs() < 1e-12);
    }
}
