//! Approach geometry: the vehicle closes in on a sign over ~30 frames, so
//! the sign's apparent pixel size grows frame by frame. Larger signs are
//! easier to classify — the paper's Fig. 4 leans on exactly this effect
//! ("the pixel size of the traffic sign image increases, which generally
//! reduces the misclassification rate").

use serde::{Deserialize, Serialize};

/// Geometry of one approach to a physical sign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproachGeometry {
    /// Distance at the first frame, metres.
    pub start_distance_m: f64,
    /// Distance at the last frame, metres.
    pub end_distance_m: f64,
    /// Number of frames in the full series.
    pub n_frames: usize,
    /// Camera constant: `pixel_size = camera_constant / distance`
    /// (focal length × physical sign size, in pixel·metres).
    pub camera_constant: f64,
}

impl Default for ApproachGeometry {
    fn default() -> Self {
        // GTSRB tracks run from ~15 px to ~220 px over 30 frames; with a
        // 0.6 m sign this corresponds to roughly 80 m down to 6 m.
        ApproachGeometry {
            start_distance_m: 80.0,
            end_distance_m: 6.0,
            n_frames: 30,
            camera_constant: 1300.0,
        }
    }
}

impl ApproachGeometry {
    /// Distance to the sign at frame `step` (0-based). Linear closing speed.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `step >= n_frames`.
    pub fn distance_at(&self, step: usize) -> f64 {
        debug_assert!(step < self.n_frames);
        if self.n_frames <= 1 {
            return self.end_distance_m;
        }
        let t = step as f64 / (self.n_frames - 1) as f64;
        self.start_distance_m + t * (self.end_distance_m - self.start_distance_m)
    }

    /// Apparent sign size in pixels at frame `step`.
    pub fn pixel_size_at(&self, step: usize) -> f64 {
        self.camera_constant / self.distance_at(step)
    }

    /// Apparent position of the sign in the image plane `(x, y)` in pixels
    /// relative to the image centre. Signs drift outward as the car closes
    /// in (they sit at the roadside), which is what the Kalman tracker
    /// follows.
    pub fn image_position_at(
        &self,
        step: usize,
        lateral_offset_m: f64,
        height_m: f64,
    ) -> (f64, f64) {
        let d = self.distance_at(step);
        let focal_px = 1200.0;
        (focal_px * lateral_offset_m / d, focal_px * height_m / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_decreases_monotonically() {
        let g = ApproachGeometry::default();
        let mut prev = f64::INFINITY;
        for step in 0..g.n_frames {
            let d = g.distance_at(step);
            assert!(d < prev);
            prev = d;
        }
        assert_eq!(g.distance_at(0), 80.0);
        assert_eq!(g.distance_at(29), 6.0);
    }

    #[test]
    fn pixel_size_grows_monotonically() {
        let g = ApproachGeometry::default();
        let mut prev = 0.0;
        for step in 0..g.n_frames {
            let s = g.pixel_size_at(step);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn pixel_sizes_match_gtsrb_scale() {
        let g = ApproachGeometry::default();
        let first = g.pixel_size_at(0);
        let last = g.pixel_size_at(29);
        assert!((10.0..25.0).contains(&first), "far sign {first} px");
        assert!((150.0..300.0).contains(&last), "near sign {last} px");
    }

    #[test]
    fn image_position_moves_outward() {
        let g = ApproachGeometry::default();
        let (x0, y0) = g.image_position_at(0, 3.0, 2.0);
        let (x29, y29) = g.image_position_at(29, 3.0, 2.0);
        assert!(
            x29 > x0 && y29 > y0,
            "sign should drift outward while approaching"
        );
    }

    #[test]
    fn single_frame_geometry_is_degenerate_but_safe() {
        let g = ApproachGeometry {
            n_frames: 1,
            ..Default::default()
        };
        assert_eq!(g.distance_at(0), g.end_distance_m);
    }
}
