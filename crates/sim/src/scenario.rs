//! Scenario families: first-class workload configurations layered over
//! [`SimConfig`].
//!
//! The base simulator reproduces the paper's single
//! traffic-sign-recognition world. Production serving must survive much
//! uglier traffic, so this module opens four additional workload families
//! as deterministic *post-generation transforms* over the generated
//! splits:
//!
//! * [`ScenarioFamily::SensorDropout`] — quality sensors deliver stale or
//!   missing readings for runs of steps, and channels refresh at
//!   different rates (multi-rate sensing). Only the wrapper-visible
//!   [`QualityObservation`] is touched; the latent world and DDM outcomes
//!   are unchanged.
//! * [`ScenarioFamily::RegimeSwitch`] — from a configurable position in
//!   the split onwards (and optionally from a configurable onset frame
//!   within each series), the DDM enters an unmodeled error regime: a
//!   fixed fraction of series become systematically confused, every
//!   frame reporting the same confusion target — invisible to the
//!   quality sensors and self-consistent over time.
//! * [`ScenarioFamily::HeavyTails`] — heavy-tailed (symmetric Pareto)
//!   noise bursts hit all quality features for runs of steps.
//! * [`ScenarioFamily::MultiSource`] — every frame is replicated into
//!   `n_sources` interleaved evidence sources with correlated errors,
//!   stressing the fusion layer's majority vote.
//!
//! ## Determinism contract
//!
//! Every transform is a pure function of `(family parameters, scenario
//! seed, split, series content)`: the per-series RNG stream is
//! `SplitMix64(derive_seed(derive_seed(seed, family ^ split), series_id))`,
//! so the result is bit-identical across thread budgets and invariant to
//! the order in which series are transformed. This is locked in by
//! `tests/properties.rs` and the determinism suite.

use crate::classes::SignClass;
use crate::config::SimConfig;
use crate::dataset::{DatasetBuilder, GtsrbLikeDataset};
use crate::deficits::N_DEFICITS;
use crate::rng_util::derive_seed;
use crate::sensors::QualityObservation;
use crate::series::{Frame, SeriesRecord};
use tauw_stats::bootstrap::SplitMix64;

/// Base salt mixed into every scenario stream so scenario RNG streams
/// never collide with dataset-generation streams.
const SCENARIO_SALT: u64 = 0x5CEA_0000_0000;

/// Which dataset split a series belongs to (selects the per-split RNG
/// stream salt and the split-position decoding rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Full-length training series.
    Train,
    /// Length-`window_len` calibration windows.
    Calib,
    /// Length-`window_len` test windows.
    Test,
}

impl SplitKind {
    /// Stream salt for this split (distinct from the dataset builder's
    /// split salts so transform streams are independent of generation).
    fn salt(self) -> u64 {
        match self {
            SplitKind::Train => 0x1_0000,
            SplitKind::Calib => 0x2_0000,
            SplitKind::Test => 0x3_0000,
        }
    }

    /// Decodes a series' 0-based position within its split from its id.
    ///
    /// [`DatasetBuilder`] assigns contiguous ids per split: train ids
    /// count up from 0; calibration/test ids are `(salt << 32) + pos`.
    /// Masking the high word therefore recovers the position regardless
    /// of generation order.
    pub fn position_in_split(self, series_id: u64) -> usize {
        (series_id & 0xFFFF_FFFF) as usize
    }
}

/// Which splits a scenario transform applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitApplication {
    /// Transform the training split.
    pub train: bool,
    /// Transform the calibration split.
    pub calib: bool,
    /// Transform the test split.
    pub test: bool,
}

impl SplitApplication {
    /// Apply to the test split only (deployment-time shift).
    pub const TEST_ONLY: SplitApplication = SplitApplication {
        train: false,
        calib: false,
        test: true,
    };
    /// Apply to calibration and test (exchangeability-preserving shift).
    pub const CALIB_AND_TEST: SplitApplication = SplitApplication {
        train: false,
        calib: true,
        test: true,
    };
    /// Apply to no split (baseline).
    pub const NONE: SplitApplication = SplitApplication {
        train: false,
        calib: false,
        test: false,
    };
}

/// Parameters for [`ScenarioFamily::SensorDropout`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutParams {
    /// Per-frame, per-channel probability of entering a dropout run when
    /// no run is active.
    pub gate_prob: f64,
    /// Mean dropout-run length in frames (geometric distribution).
    pub mean_run: f64,
    /// Probability a dropout run holds the last delivered value (stale
    /// sensor) instead of reading zero (dead sensor).
    pub stale_prob: f64,
    /// Multi-rate period: deficit channel `c` refreshes only on frames
    /// where `(step + c) % period == 0` (1 = every frame refreshes).
    pub multi_rate_period: usize,
    /// Whether the detector's pixel-size channel drops out too: a stale
    /// run holds the last delivered bounding box, a dead run reads the
    /// no-detection floor (1 pixel).
    pub drop_pixel: bool,
}

impl Default for DropoutParams {
    fn default() -> Self {
        DropoutParams {
            gate_prob: 0.08,
            mean_run: 3.0,
            stale_prob: 0.5,
            multi_rate_period: 3,
            drop_pixel: true,
        }
    }
}

/// Parameters for [`ScenarioFamily::RegimeSwitch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeParams {
    /// Fraction of the split (by series position) after which series are
    /// in the switched regime (`0.5` = second half of the stream).
    pub switch_at: f64,
    /// Per-series probability that a series in the switched regime is
    /// *systematically confused*: every frame (from the onset) reports
    /// the series' confusion target, with full self-consistency — the
    /// worst case for outcome-derived timeseries features, which read
    /// the agreement as confidence.
    pub flip_prob: f64,
    /// Fraction of each switched series' frames that elapse before the
    /// regime takes effect within the series (`0.0` = whole series).
    pub within_series_onset: f64,
}

impl Default for RegimeParams {
    fn default() -> Self {
        RegimeParams {
            switch_at: 0.5,
            flip_prob: 0.35,
            within_series_onset: 0.0,
        }
    }
}

/// Parameters for [`ScenarioFamily::HeavyTails`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstParams {
    /// Per-frame probability of entering a burst run when none is active.
    pub gate_prob: f64,
    /// Mean burst-run length in frames (geometric distribution).
    pub mean_run: f64,
    /// Pareto tail exponent `alpha` (smaller = heavier tails).
    pub tail_alpha: f64,
    /// Noise scale multiplying the Pareto excess.
    pub scale: f64,
}

impl Default for BurstParams {
    fn default() -> Self {
        BurstParams {
            gate_prob: 0.06,
            mean_run: 2.5,
            tail_alpha: 1.5,
            scale: 0.08,
        }
    }
}

/// Parameters for [`ScenarioFamily::MultiSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiSourceParams {
    /// Number of evidence sources per frame (source 0 is the original).
    pub n_sources: usize,
    /// Cross-source error correlation in `[0, 1]`: the probability that a
    /// secondary source copies the primary outcome verbatim.
    pub correlation: f64,
    /// Probability that an uncorrelated secondary source disagrees with a
    /// *correct* primary outcome (votes its own confusion target).
    pub disagree_prob: f64,
    /// Sensor-noise sigma for secondary-source quality observations.
    pub sensor_sigma: f64,
}

impl Default for MultiSourceParams {
    fn default() -> Self {
        MultiSourceParams {
            n_sources: 3,
            correlation: 0.5,
            disagree_prob: 0.1,
            sensor_sigma: 0.05,
        }
    }
}

/// A first-class workload family layered over [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioFamily {
    /// The unmodified paper world.
    Baseline,
    /// Stale/missing quality readings and multi-rate sensors.
    SensorDropout(DropoutParams),
    /// Mid-stream (and optionally mid-series) DDM error-regime switch.
    RegimeSwitch(RegimeParams),
    /// Heavy-tailed noise bursts on the quality features.
    HeavyTails(BurstParams),
    /// Correlated multi-source evidence streams.
    MultiSource(MultiSourceParams),
}

impl ScenarioFamily {
    /// Canonical name (accepted by [`ScenarioFamily::from_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioFamily::Baseline => "baseline",
            ScenarioFamily::SensorDropout(_) => "dropout",
            ScenarioFamily::RegimeSwitch(_) => "regime_switch",
            ScenarioFamily::HeavyTails(_) => "heavy_tails",
            ScenarioFamily::MultiSource(_) => "multi_source",
        }
    }

    /// Parses a family (with default parameters) from a CLI-style name.
    pub fn from_name(name: &str) -> Option<ScenarioFamily> {
        match name {
            "baseline" => Some(ScenarioFamily::Baseline),
            "dropout" => Some(ScenarioFamily::SensorDropout(DropoutParams::default())),
            "regime_switch" | "regime" => {
                Some(ScenarioFamily::RegimeSwitch(RegimeParams::default()))
            }
            "heavy_tails" | "heavy" => Some(ScenarioFamily::HeavyTails(BurstParams::default())),
            "multi_source" | "multisource" => {
                Some(ScenarioFamily::MultiSource(MultiSourceParams::default()))
            }
            _ => None,
        }
    }

    /// All families at their default parameters, baseline first.
    pub fn all_defaults() -> [ScenarioFamily; 5] {
        [
            ScenarioFamily::Baseline,
            ScenarioFamily::SensorDropout(DropoutParams::default()),
            ScenarioFamily::RegimeSwitch(RegimeParams::default()),
            ScenarioFamily::HeavyTails(BurstParams::default()),
            ScenarioFamily::MultiSource(MultiSourceParams::default()),
        ]
    }

    /// The splits this family transforms by default.
    ///
    /// Deployment-time shifts (dropout, regime switch, multi-source)
    /// touch only the test split — the wrapper is trained and calibrated
    /// on the clean world and then hit by the shift. Heavy tails apply to
    /// calibration *and* test so conformal exchangeability survives (the
    /// documented shape claim is that coverage stays ≥ nominal there).
    pub fn default_application(&self) -> SplitApplication {
        match self {
            ScenarioFamily::Baseline => SplitApplication::NONE,
            ScenarioFamily::HeavyTails(_) => SplitApplication::CALIB_AND_TEST,
            _ => SplitApplication::TEST_ONLY,
        }
    }

    /// Stream salt distinguishing this family's RNG streams.
    fn salt(&self) -> u64 {
        match self {
            ScenarioFamily::Baseline => 0x00,
            ScenarioFamily::SensorDropout(_) => 0x11,
            ScenarioFamily::RegimeSwitch(_) => 0x22,
            ScenarioFamily::HeavyTails(_) => 0x33,
            ScenarioFamily::MultiSource(_) => 0x44,
        }
    }
}

/// A scenario: a base [`SimConfig`] plus a [`ScenarioFamily`] and the
/// splits it applies to.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The base world configuration.
    pub base: SimConfig,
    /// The workload family to layer on top.
    pub family: ScenarioFamily,
    /// Which splits the transform applies to.
    pub apply_to: SplitApplication,
}

impl ScenarioConfig {
    /// Creates a scenario with the family's default split application.
    pub fn new(base: SimConfig, family: ScenarioFamily) -> Self {
        let apply_to = family.default_application();
        ScenarioConfig {
            base,
            family,
            apply_to,
        }
    }

    /// Overrides the split application.
    pub fn applied_to(mut self, apply_to: SplitApplication) -> Self {
        self.apply_to = apply_to;
        self
    }

    /// Builds the base dataset and applies the scenario transform.
    ///
    /// # Errors
    ///
    /// Returns the base configuration's validation error, if any.
    pub fn build(&self, seed: u64) -> Result<GtsrbLikeDataset, String> {
        self.build_with_threads(seed, parallel::max_threads())
    }

    /// Like [`ScenarioConfig::build`] with a pinned thread budget. The
    /// result is bit-identical for every budget.
    ///
    /// # Errors
    ///
    /// Returns the base configuration's validation error, if any.
    pub fn build_with_threads(
        &self,
        seed: u64,
        threads: usize,
    ) -> Result<GtsrbLikeDataset, String> {
        let mut builder = DatasetBuilder::new(self.base.clone(), seed)?;
        builder.threads(threads);
        let mut data = builder.build();
        self.apply_with_threads(&mut data, seed, threads);
        Ok(data)
    }

    /// Applies the scenario transform in place to the configured splits.
    pub fn apply(&self, data: &mut GtsrbLikeDataset, seed: u64) {
        self.apply_with_threads(data, seed, parallel::max_threads());
    }

    /// Like [`ScenarioConfig::apply`] with a pinned thread budget.
    pub fn apply_with_threads(&self, data: &mut GtsrbLikeDataset, seed: u64, threads: usize) {
        let threads = threads.max(1);
        if self.apply_to.train {
            self.apply_split(SplitKind::Train, &mut data.train, seed, threads);
        }
        if self.apply_to.calib {
            self.apply_split(SplitKind::Calib, &mut data.calib, seed, threads);
        }
        if self.apply_to.test {
            self.apply_split(SplitKind::Test, &mut data.test, seed, threads);
        }
    }

    /// Transforms every series of one split (parallel over series).
    pub fn apply_split(
        &self,
        split: SplitKind,
        series: &mut [SeriesRecord],
        seed: u64,
        threads: usize,
    ) {
        let split_len = series.len();
        parallel::par_map_mut(threads.max(1), series, |s| {
            self.transform_series(split, split_len, s, seed);
        });
    }

    /// Transforms a single series in place. Pure in `(self, split,
    /// split_len, series content, seed)` — independent of call order and
    /// thread placement.
    pub fn transform_series(
        &self,
        split: SplitKind,
        split_len: usize,
        series: &mut SeriesRecord,
        seed: u64,
    ) {
        let mut rng = self.series_stream(split, series.series_id, seed);
        match &self.family {
            ScenarioFamily::Baseline => {}
            ScenarioFamily::SensorDropout(p) => transform_dropout(p, series, &mut rng),
            ScenarioFamily::RegimeSwitch(p) => {
                let pos = split.position_in_split(series.series_id);
                transform_regime(p, pos, split_len, series, &mut rng);
            }
            ScenarioFamily::HeavyTails(p) => transform_heavy_tails(p, series, &mut rng),
            ScenarioFamily::MultiSource(p) => transform_multi_source(p, series, &mut rng),
        }
    }

    /// The per-series scenario RNG stream (see the module docs for the
    /// determinism contract).
    fn series_stream(&self, split: SplitKind, series_id: u64, seed: u64) -> SplitMix64 {
        let family_stream = derive_seed(seed, SCENARIO_SALT ^ self.family.salt() ^ split.salt());
        SplitMix64::new(derive_seed(family_stream, series_id))
    }
}

/// Samples a geometric run length with the given mean (≥ 1 frame).
fn sample_run_len(rng: &mut SplitMix64, mean: f64) -> usize {
    let p = (1.0 / mean.max(1.0)).min(1.0);
    if p >= 1.0 {
        return 1;
    }
    let u = 1.0 - rng.next_f64(); // (0, 1]
    1 + (u.ln() / (1.0 - p).ln()).min(1000.0) as usize
}

/// Standard normal via Box–Muller on a SplitMix64 stream.
fn sample_normal(rng: &mut SplitMix64) -> f64 {
    let u1 = 1.0 - rng.next_f64(); // (0, 1]
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Symmetric heavy-tailed excess: `u^(-1/alpha) - 1` with a random sign.
fn sample_pareto_excess(rng: &mut SplitMix64, alpha: f64) -> f64 {
    let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
    let u = 1.0 - rng.next_f64(); // (0, 1]
    sign * (u.powf(-1.0 / alpha.max(0.1)) - 1.0)
}

/// Picks a deterministic confusion target for a series (a visually
/// confusable class, never the true class).
fn confusion_target(rng: &mut SplitMix64, true_class: SignClass) -> SignClass {
    let peers = true_class.confusable_with();
    if peers.is_empty() {
        // Unreachable for GTSRB's 43 classes (every group has ≥ 2
        // members) but kept total for safety.
        SignClass::new((true_class.id() + 1) % 43).expect("valid class id")
    } else {
        peers[rng.next_index(peers.len())]
    }
}

/// Sensor dropout + multi-rate sensing: only the wrapper-visible
/// observation changes; latents, outcomes and pixel size stay intact.
fn transform_dropout(p: &DropoutParams, series: &mut SeriesRecord, rng: &mut SplitMix64) {
    if series.frames.is_empty() {
        return;
    }
    let period = p.multi_rate_period.max(1);
    // One channel per deficit sensor plus the detector's pixel size.
    const N_CHANNELS: usize = N_DEFICITS + 1;
    const PIXEL: usize = N_DEFICITS;
    // Last *delivered* value per channel; sensors boot with frame 0.
    let mut held = [0.0f64; N_CHANNELS];
    held[..N_DEFICITS].copy_from_slice(&series.frames[0].observation.deficits);
    held[PIXEL] = series.frames[0].observation.pixel_size;
    let mut run = [0usize; N_CHANNELS];
    let mut stale = [false; N_CHANNELS];
    let n_channels = if p.drop_pixel { N_CHANNELS } else { N_DEFICITS };
    for frame in &mut series.frames {
        for c in 0..n_channels {
            let fresh = if c == PIXEL {
                frame.observation.pixel_size
            } else {
                frame.observation.deficits[c]
            };
            if run[c] == 0 && rng.next_f64() < p.gate_prob {
                run[c] = sample_run_len(rng, p.mean_run);
                stale[c] = rng.next_f64() < p.stale_prob;
            }
            let refreshes = frame.step == 0 || (frame.step + c) % period == 0;
            let value = if run[c] > 0 {
                run[c] -= 1;
                if stale[c] {
                    held[c]
                } else if c == PIXEL {
                    1.0 // no-detection floor
                } else {
                    0.0 // dead deficit sensor
                }
            } else if refreshes {
                held[c] = fresh;
                fresh
            } else {
                held[c]
            };
            if c == PIXEL {
                frame.observation.pixel_size = value;
            } else {
                frame.observation.deficits[c] = value;
            }
        }
    }
}

/// Mid-stream regime switch: series past the switch position become
/// systematically confused with probability `flip_prob` — every frame
/// from the onset reports the same confusion target, invisible to the
/// quality sensors and self-consistent over time (so outcome-agreement
/// timeseries features read the failure as confidence).
fn transform_regime(
    p: &RegimeParams,
    pos: usize,
    split_len: usize,
    series: &mut SeriesRecord,
    rng: &mut SplitMix64,
) {
    let threshold = p.switch_at * split_len as f64;
    if (pos as f64) < threshold {
        return;
    }
    let target = confusion_target(rng, series.true_class);
    if rng.next_f64() >= p.flip_prob {
        return;
    }
    let onset = (p.within_series_onset * series.frames.len() as f64) as usize;
    for frame in series.frames.iter_mut().skip(onset) {
        frame.outcome = target;
        frame.correct = target == series.true_class; // always false
    }
}

/// Heavy-tailed noise bursts on all quality features (deficit channels
/// clamped to `[0, 1]`, pixel size by a bounded multiplicative factor).
fn transform_heavy_tails(p: &BurstParams, series: &mut SeriesRecord, rng: &mut SplitMix64) {
    let mut run = 0usize;
    for frame in &mut series.frames {
        if run == 0 && rng.next_f64() < p.gate_prob {
            run = sample_run_len(rng, p.mean_run);
        }
        if run == 0 {
            continue;
        }
        run -= 1;
        for c in 0..N_DEFICITS {
            let excess = sample_pareto_excess(rng, p.tail_alpha);
            frame.observation.deficits[c] =
                (frame.observation.deficits[c] + p.scale * excess).clamp(0.0, 1.0);
        }
        let excess = sample_pareto_excess(rng, p.tail_alpha);
        let factor = (1.0 + p.scale * excess).clamp(0.2, 5.0);
        frame.observation.pixel_size = (frame.observation.pixel_size * factor).max(1.0);
    }
}

/// Correlated multi-source evidence: every frame becomes `n_sources`
/// interleaved frames. Source 0 is the original; secondary sources carry
/// independently noised observations and outcomes correlated with the
/// primary through the `correlation` parameter.
fn transform_multi_source(p: &MultiSourceParams, series: &mut SeriesRecord, rng: &mut SplitMix64) {
    let n = p.n_sources.max(1);
    if n == 1 || series.frames.is_empty() {
        return;
    }
    // Each secondary source has its own systematic confusion target.
    let targets: Vec<SignClass> = (1..n)
        .map(|_| confusion_target(rng, series.true_class))
        .collect();
    let mut frames = Vec::with_capacity(series.frames.len() * n);
    for (i, original) in series.frames.iter().enumerate() {
        frames.push(Frame {
            step: i * n,
            ..*original
        });
        for (j, &target) in targets.iter().enumerate() {
            let mut deficits = original.observation.deficits;
            for value in &mut deficits {
                *value = (*value + p.sensor_sigma * sample_normal(rng)).clamp(0.0, 1.0);
            }
            let pixel_size = (original.observation.pixel_size
                * (1.0 + p.sensor_sigma * sample_normal(rng)))
            .max(1.0);
            let outcome = if rng.next_f64() < p.correlation {
                original.outcome
            } else if original.correct {
                if rng.next_f64() < p.disagree_prob {
                    target
                } else {
                    series.true_class
                }
            } else if rng.next_f64() < 0.5 {
                series.true_class
            } else {
                target
            };
            frames.push(Frame {
                step: i * n + j + 1,
                observation: QualityObservation {
                    deficits,
                    pixel_size,
                },
                outcome,
                correct: outcome == series.true_class,
                ..*original
            });
        }
    }
    series.frames = frames;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SimConfig {
        SimConfig::scaled(0.01)
    }

    fn scenario(family: ScenarioFamily) -> ScenarioConfig {
        ScenarioConfig::new(small_config(), family)
    }

    #[test]
    fn names_roundtrip() {
        for family in ScenarioFamily::all_defaults() {
            let parsed = ScenarioFamily::from_name(family.name()).unwrap();
            assert_eq!(parsed, family);
        }
        assert!(ScenarioFamily::from_name("nope").is_none());
    }

    #[test]
    fn baseline_is_identity() {
        let base = DatasetBuilder::new(small_config(), 7).unwrap().build();
        let built = scenario(ScenarioFamily::Baseline).build(7).unwrap();
        assert_eq!(base.test, built.test);
        assert_eq!(base.calib, built.calib);
        assert_eq!(base.train, built.train);
    }

    #[test]
    fn build_is_bit_identical_across_thread_budgets() {
        for family in ScenarioFamily::all_defaults() {
            let cfg = scenario(family);
            let serial = cfg.build_with_threads(11, 1).unwrap();
            for threads in [2usize, 8] {
                let par = cfg.build_with_threads(11, threads).unwrap();
                assert_eq!(
                    serial.train,
                    par.train,
                    "{} threads={threads}",
                    family.name()
                );
                assert_eq!(
                    serial.calib,
                    par.calib,
                    "{} threads={threads}",
                    family.name()
                );
                assert_eq!(serial.test, par.test, "{} threads={threads}", family.name());
            }
        }
    }

    #[test]
    fn transform_is_invariant_to_series_order() {
        for family in ScenarioFamily::all_defaults() {
            let cfg = scenario(family);
            let base = DatasetBuilder::new(small_config(), 13).unwrap().build();
            let mut in_order = base.test.clone();
            let split_len = in_order.len();
            for s in &mut in_order {
                cfg.transform_series(SplitKind::Test, split_len, s, 13);
            }
            let mut reversed = base.test.clone();
            reversed.reverse();
            for s in &mut reversed {
                cfg.transform_series(SplitKind::Test, split_len, s, 13);
            }
            reversed.reverse();
            assert_eq!(in_order, reversed, "{}", family.name());
        }
    }

    #[test]
    fn dropout_touches_only_observations() {
        let cfg = scenario(ScenarioFamily::SensorDropout(DropoutParams::default()));
        let base = DatasetBuilder::new(small_config(), 3).unwrap().build();
        let shifted = cfg.build(3).unwrap();
        assert_eq!(base.train, shifted.train);
        assert_eq!(base.calib, shifted.calib);
        let mut changed = 0usize;
        for (a, b) in base.test.iter().zip(&shifted.test) {
            assert_eq!(a.series_id, b.series_id);
            for (fa, fb) in a.frames.iter().zip(&b.frames) {
                assert_eq!(fa.outcome, fb.outcome);
                assert_eq!(fa.correct, fb.correct);
                assert_eq!(fa.latent_deficits, fb.latent_deficits);
                assert_eq!(fa.pixel_size, fb.pixel_size, "latent pixel size changed");
                assert!(fb.observation.pixel_size >= 1.0);
                for v in fb.observation.deficits {
                    assert!((0.0..=1.0).contains(&v));
                }
                if fa.observation.deficits != fb.observation.deficits {
                    changed += 1;
                }
            }
        }
        assert!(changed > 0, "dropout never perturbed an observation");
    }

    #[test]
    fn regime_switch_leaves_first_half_untouched_and_degrades_second() {
        // flip_prob 1.0: the tiny test world has too few post-switch
        // series for a fractional per-series flip to be guaranteed.
        let cfg = scenario(ScenarioFamily::RegimeSwitch(RegimeParams {
            flip_prob: 1.0,
            ..Default::default()
        }));
        let base = DatasetBuilder::new(small_config(), 5).unwrap().build();
        let shifted = cfg.build(5).unwrap();
        let half = shifted.test.len() / 2;
        assert_eq!(&base.test[..half], &shifted.test[..half]);
        let acc = |series: &[SeriesRecord]| {
            let (ok, total) = series.iter().fold((0usize, 0usize), |(ok, total), s| {
                (
                    ok + s.frames.iter().filter(|f| f.correct).count(),
                    total + s.frames.len(),
                )
            });
            ok as f64 / total as f64
        };
        let base_acc = acc(&base.test[half..]);
        let shifted_acc = acc(&shifted.test[half..]);
        assert!(
            shifted_acc < base_acc - 0.1,
            "regime switch should degrade accuracy: {base_acc} -> {shifted_acc}"
        );
        for s in &shifted.test {
            for f in &s.frames {
                assert_eq!(f.correct, f.outcome == s.true_class);
            }
        }
    }

    #[test]
    fn heavy_tails_respects_bounds_and_perturbs_calib_and_test() {
        let cfg = scenario(ScenarioFamily::HeavyTails(BurstParams::default()));
        let base = DatasetBuilder::new(small_config(), 9).unwrap().build();
        let shifted = cfg.build(9).unwrap();
        assert_eq!(base.train, shifted.train);
        for (split_base, split_shifted) in
            [(&base.calib, &shifted.calib), (&base.test, &shifted.test)]
        {
            let mut changed = 0usize;
            for (a, b) in split_base.iter().zip(split_shifted.iter()) {
                for (fa, fb) in a.frames.iter().zip(&b.frames) {
                    assert_eq!(fa.outcome, fb.outcome);
                    for v in fb.observation.deficits {
                        assert!((0.0..=1.0).contains(&v));
                    }
                    assert!(fb.observation.pixel_size >= 1.0);
                    if fa.observation != fb.observation {
                        changed += 1;
                    }
                }
            }
            assert!(changed > 0, "heavy tails never perturbed a frame");
        }
    }

    #[test]
    fn multi_source_interleaves_sources_and_keeps_source_zero() {
        let params = MultiSourceParams::default();
        let cfg = scenario(ScenarioFamily::MultiSource(params));
        let base = DatasetBuilder::new(small_config(), 21).unwrap().build();
        let shifted = cfg.build(21).unwrap();
        for (a, b) in base.test.iter().zip(&shifted.test) {
            assert_eq!(b.frames.len(), a.frames.len() * params.n_sources);
            for (i, fa) in a.frames.iter().enumerate() {
                let primary = &b.frames[i * params.n_sources];
                assert_eq!(primary.outcome, fa.outcome);
                assert_eq!(primary.observation, fa.observation);
                for j in 0..params.n_sources {
                    let f = &b.frames[i * params.n_sources + j];
                    assert_eq!(f.step, i * params.n_sources + j);
                    assert_eq!(f.absolute_step, fa.absolute_step);
                    assert_eq!(f.correct, f.outcome == b.true_class);
                }
            }
        }
    }

    #[test]
    fn high_correlation_copies_primary_outcomes_more_often() {
        let base = DatasetBuilder::new(small_config(), 31).unwrap().build();
        let agreement = |correlation: f64| {
            let cfg = scenario(ScenarioFamily::MultiSource(MultiSourceParams {
                correlation,
                ..Default::default()
            }));
            let shifted = cfg.build(31).unwrap();
            // Condition on primary-wrong frames: there, copying the
            // primary is essentially the only path to agreement.
            let (mut same, mut total) = (0usize, 0usize);
            for (a, b) in base.test.iter().zip(&shifted.test) {
                for (i, fa) in a.frames.iter().enumerate().filter(|(_, f)| !f.correct) {
                    for j in 1..3 {
                        total += 1;
                        if b.frames[i * 3 + j].outcome == fa.outcome {
                            same += 1;
                        }
                    }
                }
            }
            same as f64 / total.max(1) as f64
        };
        assert!(agreement(0.95) > agreement(0.1) + 0.3);
    }
}
