//! Small sampling helpers on top of `rand` (which, at the pinned version,
//! ships no Gaussian distribution without the `rand_distr` add-on crate).

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Derives a stream-specific seed from a master seed and a stream label,
/// so that every series gets an independent, reproducible RNG regardless of
/// generation order (SplitMix64 finalizer).
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples an index from a discrete distribution given by `weights`
/// (need not be normalized; must be non-negative with a positive sum).
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    fn weighted_sampling_tracks_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        assert!((800..1200).contains(&counts[0]), "{counts:?}");
        assert!((2700..3300).contains(&counts[1]), "{counts:?}");
        assert!((5700..6300).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn weighted_sampling_single_bucket() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(sample_weighted(&mut rng, &[5.0]), 0);
        }
    }
}
