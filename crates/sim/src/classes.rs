//! The GTSRB class inventory: 43 German traffic-sign classes with
//! visual-similarity confusion groups.
//!
//! The simulated DDM makes *systematic* mistakes: when it errs on a series
//! it predominantly confuses the true sign with a visually similar one
//! (e.g. one speed limit for another), which is what makes successive
//! errors within a timeseries agree with each other — the property that
//! breaks majority voting and the naïve independence assumption.

use serde::{Deserialize, Serialize};

/// Number of classes in the GTSRB benchmark.
pub const N_CLASSES: u8 = 43;

/// A traffic-sign class id in `0..43`, following the GTSRB numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SignClass(u8);

impl SignClass {
    /// Creates a class from its GTSRB id.
    ///
    /// Returns `None` if `id >= 43`.
    pub fn new(id: u8) -> Option<Self> {
        (id < N_CLASSES).then_some(SignClass(id))
    }

    /// The raw GTSRB class id.
    pub fn id(self) -> u8 {
        self.0
    }

    /// Iterator over all 43 classes in id order.
    pub fn all() -> impl Iterator<Item = SignClass> {
        (0..N_CLASSES).map(SignClass)
    }

    /// English name of the sign, matching the usual GTSRB labelling.
    pub fn name(self) -> &'static str {
        NAMES[self.0 as usize]
    }

    /// The visual confusion group this sign belongs to.
    pub fn confusion_group(self) -> ConfusionGroup {
        match self.0 {
            0..=5 | 7 | 8 => ConfusionGroup::SpeedLimits,
            6 | 32 | 41 | 42 => ConfusionGroup::EndOfRestriction,
            9 | 10 | 15 | 16 | 17 => ConfusionGroup::ProhibitoryCircles,
            11 | 13 | 18..=31 => ConfusionGroup::WarningTriangles,
            33..=40 => ConfusionGroup::MandatoryBlue,
            12 | 14 => ConfusionGroup::UniqueShapes,
            _ => unreachable!("SignClass invariant: id < 43"),
        }
    }

    /// Members of this sign's confusion group, excluding the sign itself.
    pub fn confusable_with(self) -> Vec<SignClass> {
        let group = self.confusion_group();
        SignClass::all()
            .filter(|&c| c != self && c.confusion_group() == group)
            .collect()
    }

    /// Relative frequency weight of this class in the GTSRB training data
    /// (coarse, normalized so weights sum to ~1). GTSRB is heavily
    /// imbalanced: speed limits 30/50 and priority/yield signs dominate.
    pub fn frequency_weight(self) -> f64 {
        FREQ[self.0 as usize] / FREQ_TOTAL
    }
}

impl std::fmt::Display for SignClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.0, self.name())
    }
}

/// Visual similarity families used to pick systematic confusion targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfusionGroup {
    /// Red-bordered circular speed-limit signs (very high mutual confusion).
    SpeedLimits,
    /// Grey "end of restriction" signs.
    EndOfRestriction,
    /// Other red-bordered prohibitory circles (no passing, no entry, ...).
    ProhibitoryCircles,
    /// Red-bordered warning triangles.
    WarningTriangles,
    /// Blue circular mandatory-direction signs.
    MandatoryBlue,
    /// Distinctive shapes (priority diamond, stop octagon).
    UniqueShapes,
}

const NAMES: [&str; 43] = [
    "speed limit 20",
    "speed limit 30",
    "speed limit 50",
    "speed limit 60",
    "speed limit 70",
    "speed limit 80",
    "end of speed limit 80",
    "speed limit 100",
    "speed limit 120",
    "no passing",
    "no passing for trucks",
    "right-of-way at next intersection",
    "priority road",
    "yield",
    "stop",
    "no vehicles",
    "trucks prohibited",
    "no entry",
    "general caution",
    "dangerous curve left",
    "dangerous curve right",
    "double curve",
    "bumpy road",
    "slippery road",
    "road narrows on the right",
    "road work",
    "traffic signals",
    "pedestrians",
    "children crossing",
    "bicycles crossing",
    "beware of ice/snow",
    "wild animals crossing",
    "end of all speed and passing limits",
    "turn right ahead",
    "turn left ahead",
    "ahead only",
    "go straight or right",
    "go straight or left",
    "keep right",
    "keep left",
    "roundabout mandatory",
    "end of no passing",
    "end of no passing for trucks",
];

/// Approximate per-class sample counts in the GTSRB training set (in units
/// of 30-image tracks), used as sampling weights for realistic class
/// imbalance.
const FREQ: [f64; 43] = [
    7.0, 74.0, 75.0, 47.0, 66.0, 62.0, 14.0, 48.0, 47.0, 49.0, 67.0, 44.0, 70.0, 72.0, 26.0, 21.0,
    14.0, 37.0, 40.0, 7.0, 11.0, 10.0, 13.0, 17.0, 9.0, 50.0, 20.0, 8.0, 18.0, 9.0, 15.0, 26.0,
    8.0, 23.0, 14.0, 40.0, 13.0, 7.0, 69.0, 10.0, 12.0, 8.0, 8.0,
];

const FREQ_TOTAL: f64 = {
    // const-evaluated sum keeps the weights exactly normalized.
    let mut total = 0.0;
    let mut i = 0;
    while i < 43 {
        total += FREQ[i];
        i += 1;
    }
    total
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_43_classes() {
        assert_eq!(SignClass::all().count(), 43);
        assert!(SignClass::new(42).is_some());
        assert!(SignClass::new(43).is_none());
    }

    #[test]
    fn names_are_distinct_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for c in SignClass::all() {
            assert!(!c.name().is_empty());
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
        }
    }

    #[test]
    fn every_class_has_a_group() {
        for c in SignClass::all() {
            let _ = c.confusion_group(); // must not panic
        }
    }

    #[test]
    fn speed_limits_confuse_with_speed_limits() {
        let sl50 = SignClass::new(2).unwrap();
        let peers = sl50.confusable_with();
        assert!(peers.len() >= 7);
        for p in &peers {
            assert_eq!(p.confusion_group(), ConfusionGroup::SpeedLimits);
            assert_ne!(*p, sl50);
        }
    }

    #[test]
    fn stop_sign_group_is_small_but_nonempty() {
        let stop = SignClass::new(14).unwrap();
        assert_eq!(stop.confusion_group(), ConfusionGroup::UniqueShapes);
        let peers = stop.confusable_with();
        assert_eq!(peers, vec![SignClass::new(12).unwrap()]);
    }

    #[test]
    fn frequency_weights_are_a_distribution() {
        let total: f64 = SignClass::all().map(|c| c.frequency_weight()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for c in SignClass::all() {
            assert!(c.frequency_weight() > 0.0);
        }
    }

    #[test]
    fn common_classes_are_more_frequent_than_rare() {
        let sl30 = SignClass::new(1).unwrap(); // very common
        let sl20 = SignClass::new(0).unwrap(); // rare
        assert!(sl30.frequency_weight() > 5.0 * sl20.frequency_weight());
    }

    #[test]
    fn display_includes_id_and_name() {
        let c = SignClass::new(14).unwrap();
        assert_eq!(c.to_string(), "14 (stop)");
    }

    #[test]
    fn confusable_never_includes_self() {
        for c in SignClass::all() {
            assert!(!c.confusable_with().contains(&c));
            assert!(
                !c.confusable_with().is_empty(),
                "class {c} has no confusion peers"
            );
        }
    }
}
