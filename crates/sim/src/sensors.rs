//! Noisy sensing of quality factors.
//!
//! The uncertainty wrapper never sees the latent deficit intensities — it
//! sees what the vehicle's sensors report (rain sensor, light sensor, blur
//! estimator, bounding-box size, ...). This module models that measurement
//! channel: additive Gaussian noise on each deficit, multiplicative jitter
//! on the detected pixel size.

use crate::config::SimConfig;
use crate::deficits::{DeficitKind, DeficitVector, N_DEFICITS};
use crate::rng_util::sample_standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of stateless quality factors exposed to the wrapper
/// (nine deficit sensors plus the detected sign pixel size).
pub const N_QUALITY_FACTORS: usize = N_DEFICITS + 1;

/// One frame's sensor readout: the wrapper's stateless quality factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityObservation {
    /// Noisy deficit intensity estimates, clamped to `[0, 1]`.
    pub deficits: [f64; N_DEFICITS],
    /// Detected sign size in pixels (bounding-box height).
    pub pixel_size: f64,
}

impl QualityObservation {
    /// Simulates the sensor readout for a frame.
    pub fn observe<R: Rng + ?Sized>(
        latent: &DeficitVector,
        pixel_size: f64,
        config: &SimConfig,
        rng: &mut R,
    ) -> Self {
        let mut deficits = [0.0; N_DEFICITS];
        for (i, slot) in deficits.iter_mut().enumerate() {
            let noise = config.sensor_noise_sigma * sample_standard_normal(rng);
            *slot = (latent.as_array()[i] + noise).clamp(0.0, 1.0);
        }
        let px = pixel_size * (1.0 + config.pixel_size_rel_noise * sample_standard_normal(rng));
        QualityObservation {
            deficits,
            pixel_size: px.max(1.0),
        }
    }

    /// A noise-free observation (useful for tests and deterministic demos).
    pub fn exact(latent: &DeficitVector, pixel_size: f64) -> Self {
        QualityObservation {
            deficits: *latent.as_array(),
            pixel_size,
        }
    }

    /// The stateless quality-factor feature vector, in the column order
    /// given by [`QualityObservation::feature_names`].
    pub fn feature_vector(&self) -> [f64; N_QUALITY_FACTORS] {
        let mut out = [0.0; N_QUALITY_FACTORS];
        out[..N_DEFICITS].copy_from_slice(&self.deficits);
        out[N_DEFICITS] = self.pixel_size;
        out
    }

    /// Column names matching [`QualityObservation::feature_vector`].
    pub fn feature_names() -> Vec<String> {
        DeficitKind::ALL
            .iter()
            .map(|k| format!("qf_{}", k.name()))
            .chain(std::iter::once("qf_pixel_size".to_string()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feature_vector_has_stable_layout() {
        let names = QualityObservation::feature_names();
        assert_eq!(names.len(), N_QUALITY_FACTORS);
        assert_eq!(names[0], "qf_rain");
        assert_eq!(names[8], "qf_motion_blur");
        assert_eq!(names[9], "qf_pixel_size");
    }

    #[test]
    fn exact_observation_roundtrips_latent() {
        let mut latent = DeficitVector::zero();
        latent.set(DeficitKind::Haze, 0.42);
        let obs = QualityObservation::exact(&latent, 50.0);
        let fv = obs.feature_vector();
        assert_eq!(fv[DeficitKind::Haze as usize], 0.42);
        assert_eq!(fv[9], 50.0);
    }

    #[test]
    fn noisy_observation_stays_in_bounds() {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut latent = DeficitVector::zero();
        latent.set(DeficitKind::Rain, 0.99);
        latent.set(DeficitKind::Darkness, 0.01);
        for _ in 0..1000 {
            let obs = QualityObservation::observe(&latent, 20.0, &cfg, &mut rng);
            for v in obs.deficits {
                assert!((0.0..=1.0).contains(&v));
            }
            assert!(obs.pixel_size >= 1.0);
        }
    }

    #[test]
    fn noise_is_centred_on_latent() {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(10);
        let mut latent = DeficitVector::zero();
        latent.set(DeficitKind::Haze, 0.5);
        let mean: f64 = (0..5000)
            .map(|_| {
                QualityObservation::observe(&latent, 20.0, &cfg, &mut rng).deficits
                    [DeficitKind::Haze as usize]
            })
            .sum::<f64>()
            / 5000.0;
        assert!(
            (mean - 0.5).abs() < 0.01,
            "sensor mean {mean} drifted from latent 0.5"
        );
    }
}
