//! The situation-setting model: a synthetic stand-in for the paper's
//! combination of DWD historical weather data and OpenStreetMap street
//! locations.
//!
//! A *situation setting* fixes the contextual conditions for one timeseries
//! (one approach to one physical sign): season, hour, road environment,
//! weather, and the resulting latent quality-deficit intensities. The
//! paper's generator enumerates ~2.7 million realistic settings; this model
//! samples from a factored distribution over the same factor space whose
//! discretized support exceeds that count (see
//! [`SituationModel::distinct_settings_lower_bound`]), with the co-occurrence
//! structure that matters for the wrapper:
//!
//! * darkness follows the sun (hour × month),
//! * steamed lenses need cold *and* humid conditions,
//! * artificial backlight needs darkness and an urban environment,
//! * motion blur grows with speed and exposure time (darkness),
//! * natural backlight needs a low sun and an unlucky heading.

use crate::deficits::{DeficitKind, DeficitVector};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Road environment of the approach, which shifts both speed and deficit
/// priors (a coarse OpenStreetMap surrogate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadEnvironment {
    /// City streets: slow, lit at night.
    Urban,
    /// Country roads: mid speeds, dirt more likely.
    Rural,
    /// Autobahn: high speeds, strong motion blur.
    Highway,
}

impl RoadEnvironment {
    /// All environments.
    pub const ALL: [RoadEnvironment; 3] = [
        RoadEnvironment::Urban,
        RoadEnvironment::Rural,
        RoadEnvironment::Highway,
    ];

    /// Typical driving speed in km/h for the environment.
    pub fn typical_speed_kmh(self) -> f64 {
        match self {
            RoadEnvironment::Urban => 45.0,
            RoadEnvironment::Rural => 85.0,
            RoadEnvironment::Highway => 120.0,
        }
    }
}

/// The contextual setting of one timeseries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SituationSetting {
    /// Month, 1–12.
    pub month: u8,
    /// Hour of day, 0–23.
    pub hour: u8,
    /// Road environment.
    pub environment: RoadEnvironment,
    /// Vehicle speed in km/h.
    pub speed_kmh: f64,
    /// Air temperature in °C.
    pub temperature_c: f64,
    /// Relative humidity, 0–1.
    pub humidity: f64,
    /// Rain rate in mm/h (0 = dry).
    pub rain_mm_h: f64,
    /// Heading-vs-sun alignment, 0–1 (1 = driving straight into a low sun).
    pub sun_alignment: f64,
    /// Base deficit intensities derived from the above (constant part; the
    /// per-frame variation of motion blur and artificial backlight is added
    /// during series generation).
    pub deficits: DeficitVector,
}

/// Samples realistic situation settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SituationModel {
    _private: (),
}

impl SituationModel {
    /// Creates the default model (parameters follow German climate
    /// seasonality coarsely).
    pub fn new() -> Self {
        SituationModel { _private: () }
    }

    /// Lower bound on the number of distinct settings the discretized factor
    /// space supports; documented to mirror the paper's "2.7 million
    /// realistic settings".
    pub fn distinct_settings_lower_bound(&self) -> u64 {
        // month(12) × hour(24) × env(3) × rain(8 levels) × temp(16) ×
        // humidity(8) × sun alignment(8) ≈ 5.7M > 2.7M.
        12 * 24 * 3 * 8 * 16 * 8 * 8
    }

    /// Draws one situation setting.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SituationSetting {
        let month = rng.gen_range(1..=12u8);
        let hour = rng.gen_range(0..24u8);
        let environment = match rng.gen_range(0..10u8) {
            0..=3 => RoadEnvironment::Urban,
            4..=7 => RoadEnvironment::Rural,
            _ => RoadEnvironment::Highway,
        };
        let speed_kmh = (environment.typical_speed_kmh() + rng.gen_range(-15.0..15.0)).max(15.0);

        // Seasonal temperature: coldest in January (~0°C), warmest in July (~19°C).
        let season_phase = (month as f64 - 1.0) / 12.0 * std::f64::consts::TAU;
        let temperature_c = 9.5 - 9.5 * season_phase.cos() + rng.gen_range(-6.0..6.0);
        let humidity = (0.55
            + 0.25 * rng.gen_range(-1.0..1.0f64)
            + if temperature_c < 5.0 { 0.15 } else { 0.0 })
        .clamp(0.2, 1.0);

        // Rain: ~62% of drives are dry; wet drives follow a skewed intensity.
        let rain_mm_h = if rng.gen_bool(0.38) {
            let u: f64 = rng.gen_range(0.0..1.0);
            8.0 * u * u // up to 8 mm/h, mostly light
        } else {
            0.0
        };

        let sun_elevation = Self::sun_elevation_deg(month, hour);
        let darkness = Self::darkness_from_sun(sun_elevation);
        let low_sun = sun_elevation > 0.0 && sun_elevation < 18.0;
        let sun_alignment = if low_sun {
            rng.gen_range(0.0..1.0)
        } else {
            0.0
        };

        let mut deficits = DeficitVector::zero();
        deficits.set(DeficitKind::Rain, (rain_mm_h / 8.0).powf(0.7));
        deficits.set(DeficitKind::Darkness, darkness);
        // Haze: cold humid mornings; occasional dense fog.
        let haze_base = if humidity > 0.75 && temperature_c < 8.0 && hour < 11 {
            rng.gen_range(0.2..0.9)
        } else if rng.gen_bool(0.05) {
            rng.gen_range(0.1..0.5)
        } else {
            0.0
        };
        deficits.set(DeficitKind::Haze, haze_base);
        deficits.set(
            DeficitKind::NaturalBacklight,
            sun_alignment * (1.0 - darkness) * if low_sun { 1.0 } else { 0.0 },
        );
        // Artificial backlight base level: dark + urban.
        let artificial = if darkness > 0.5 && environment == RoadEnvironment::Urban {
            rng.gen_range(0.0..0.7)
        } else if darkness > 0.5 && rng.gen_bool(0.2) {
            rng.gen_range(0.0..0.4) // oncoming headlights elsewhere
        } else {
            0.0
        };
        deficits.set(DeficitKind::ArtificialBacklight, artificial);
        // Dirt accumulates; rural roads are worse.
        let dirt_scale = if environment == RoadEnvironment::Rural {
            1.5
        } else {
            1.0
        };
        let dirt_sign: f64 = rng.gen_range(0.0..1.0);
        deficits.set(
            DeficitKind::DirtOnSign,
            (dirt_sign.powi(4) * dirt_scale).min(1.0),
        );
        let dirt_lens: f64 = rng.gen_range(0.0..1.0);
        deficits.set(
            DeficitKind::DirtOnLens,
            (dirt_lens.powi(5) * dirt_scale).min(1.0),
        );
        // Steamed lens: cold and humid.
        let steam = if temperature_c < 6.0 && humidity > 0.8 {
            rng.gen_range(0.3..1.0)
        } else if temperature_c < 10.0 && humidity > 0.7 && rng.gen_bool(0.3) {
            rng.gen_range(0.1..0.5)
        } else {
            0.0
        };
        deficits.set(DeficitKind::SteamedLens, steam);
        // Motion blur base: speed and exposure (darkness lengthens exposure).
        let blur = (speed_kmh / 160.0) * (0.5 + 0.9 * darkness);
        deficits.set(DeficitKind::MotionBlur, blur);

        SituationSetting {
            month,
            hour,
            environment,
            speed_kmh,
            temperature_c,
            humidity,
            rain_mm_h,
            sun_alignment,
            deficits,
        }
    }

    /// Very coarse solar elevation (degrees) for Germany by month and hour;
    /// negative means below the horizon.
    fn sun_elevation_deg(month: u8, hour: u8) -> f64 {
        // Peak elevation: ~15° in December, ~62° in June.
        let season_phase = (month as f64 - 0.5) / 12.0 * std::f64::consts::TAU;
        let peak = 38.5 - 23.5 * season_phase.cos();
        // Day length: ~8h winter, ~16h summer; solar noon at 13:00 local.
        let half_day = 4.0 + 4.0 * (1.0 - season_phase.cos()) / 2.0;
        let t = (hour as f64 - 13.0) / half_day;
        peak * (1.0 - t * t)
    }

    fn darkness_from_sun(elevation_deg: f64) -> f64 {
        // Fully dark below -6° (civil twilight), fully bright above +10°.
        ((10.0 - elevation_deg) / 16.0).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(n: usize, seed: u64) -> Vec<SituationSetting> {
        let model = SituationModel::new();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| model.sample(&mut rng)).collect()
    }

    #[test]
    fn all_deficits_in_unit_interval() {
        for s in samples(2000, 1) {
            for k in DeficitKind::ALL {
                let v = s.deficits.get(k);
                assert!((0.0..=1.0).contains(&v), "{k} = {v} out of range");
            }
        }
    }

    #[test]
    fn night_hours_are_dark() {
        let night: Vec<_> = samples(3000, 2)
            .into_iter()
            .filter(|s| s.hour <= 2 || s.hour >= 23)
            .collect();
        assert!(!night.is_empty());
        for s in &night {
            assert!(
                s.deficits.get(DeficitKind::Darkness) > 0.8,
                "midnight must be dark (month {}, hour {})",
                s.month,
                s.hour
            );
        }
    }

    #[test]
    fn summer_noon_is_bright() {
        let noons: Vec<_> = samples(5000, 3)
            .into_iter()
            .filter(|s| (6..=8).contains(&s.month) && (11..=14).contains(&s.hour))
            .collect();
        assert!(!noons.is_empty());
        for s in &noons {
            assert!(
                s.deficits.get(DeficitKind::Darkness) < 0.2,
                "summer noon should be bright, got {}",
                s.deficits.get(DeficitKind::Darkness)
            );
        }
    }

    #[test]
    fn steam_requires_cold_humid() {
        for s in samples(4000, 4) {
            if s.deficits.get(DeficitKind::SteamedLens) > 0.0 {
                assert!(s.temperature_c < 10.0);
                assert!(s.humidity > 0.7);
            }
        }
    }

    #[test]
    fn artificial_backlight_requires_darkness() {
        for s in samples(4000, 5) {
            if s.deficits.get(DeficitKind::ArtificialBacklight) > 0.0 {
                assert!(s.deficits.get(DeficitKind::Darkness) > 0.5);
            }
        }
    }

    #[test]
    fn rain_deficit_tracks_rain_rate() {
        for s in samples(2000, 6) {
            if s.rain_mm_h == 0.0 {
                assert_eq!(s.deficits.get(DeficitKind::Rain), 0.0);
            } else {
                assert!(s.deficits.get(DeficitKind::Rain) > 0.0);
            }
        }
    }

    #[test]
    fn majority_of_drives_are_dry() {
        let wet = samples(5000, 7)
            .iter()
            .filter(|s| s.rain_mm_h > 0.0)
            .count();
        assert!(
            (1500..2500).contains(&wet),
            "wet fraction {wet}/5000 implausible"
        );
    }

    #[test]
    fn highway_is_fast_and_blurry() {
        let s = samples(5000, 8);
        let mean_speed = |env: RoadEnvironment| {
            let xs: Vec<_> = s.iter().filter(|x| x.environment == env).collect();
            xs.iter().map(|x| x.speed_kmh).sum::<f64>() / xs.len() as f64
        };
        assert!(mean_speed(RoadEnvironment::Highway) > mean_speed(RoadEnvironment::Urban) + 40.0);
        let mean_blur = |env: RoadEnvironment| {
            let xs: Vec<_> = s.iter().filter(|x| x.environment == env).collect();
            xs.iter()
                .map(|x| x.deficits.get(DeficitKind::MotionBlur))
                .sum::<f64>()
                / xs.len() as f64
        };
        assert!(mean_blur(RoadEnvironment::Highway) > mean_blur(RoadEnvironment::Urban));
    }

    #[test]
    fn setting_space_exceeds_papers_count() {
        assert!(SituationModel::new().distinct_settings_lower_bound() > 2_700_000);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = samples(10, 42);
        let b = samples(10, 42);
        assert_eq!(a, b);
    }
}
