//! Drive scenarios: multi-sign detection streams for exercising the full
//! runtime pipeline (tracking → buffer reset → fusion → taUW).
//!
//! A [`DriveScenario`] strings several sign approaches together the way a
//! camera would see them — each sign at its own roadside placement, with
//! the sign leaving the field of view near the end of its approach and
//! occasional detection dropouts — and yields a flat stream of
//! [`DriveFrame`]s. This is what the tracking component consumes in the
//! paper's Fig. 2 architecture.

use crate::classes::SignClass;
use crate::config::SimConfig;
use crate::ddm::SimulatedDdm;
use crate::rng_util::sample_weighted;
use crate::series::{Frame, SeriesRecord};
use crate::situation::SituationModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One detection delivered to the runtime pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveFrame {
    /// Index of the sign within the drive (ground truth, for evaluation).
    pub sign_index: usize,
    /// Detection position in the image plane, pixels relative to centre.
    pub image_position: [f64; 2],
    /// The underlying camera frame (quality factors, DDM outcome, ...).
    pub frame: Frame,
    /// Ground-truth class of the sign (for evaluation only).
    pub true_class: SignClass,
}

/// One camera tick of a drive: either a detection, or a frame on which the
/// detector produced nothing (the tracker should coast).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // detections dominate the stream, so boxing them would add an allocation per frame for no saving
pub enum DriveEvent {
    /// The detector found the sign in this frame.
    Detection(DriveFrame),
    /// Detector miss / occlusion while a sign is nominally visible; real
    /// trackers coast their motion model through these frames.
    Dropout {
        /// Index of the sign that went undetected.
        sign_index: usize,
    },
}

/// A generated drive: the camera event stream plus the per-sign series it
/// was assembled from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Drive {
    /// Camera events in temporal order.
    pub events: Vec<DriveEvent>,
    /// The source series, one per sign.
    pub series: Vec<SeriesRecord>,
}

impl Drive {
    /// Number of distinct physical signs in the drive.
    pub fn n_signs(&self) -> usize {
        self.series.len()
    }

    /// Iterator over the detections only (skipping dropouts).
    pub fn detections(&self) -> impl Iterator<Item = &DriveFrame> {
        self.events.iter().filter_map(|e| match e {
            DriveEvent::Detection(f) => Some(f),
            DriveEvent::Dropout { .. } => None,
        })
    }
}

/// Configuration for drive generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveScenario {
    /// Number of signs passed during the drive.
    pub n_signs: usize,
    /// Horizontal field of view half-width in pixels; detections beyond it
    /// are dropped (the sign has left the image).
    pub fov_half_width_px: f64,
    /// Per-frame probability of a detection dropout (occlusion, detector
    /// miss) strictly inside a series.
    pub dropout_prob: f64,
}

impl Default for DriveScenario {
    fn default() -> Self {
        DriveScenario {
            n_signs: 3,
            fov_half_width_px: 640.0,
            dropout_prob: 0.02,
        }
    }
}

impl DriveScenario {
    /// Generates a drive deterministically from the world config and seed.
    pub fn generate(&self, config: &SimConfig, seed: u64) -> Drive {
        let ddm = SimulatedDdm::new(config.clone());
        let situations = SituationModel::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = SignClass::all().map(|c| c.frequency_weight()).collect();

        let mut events = Vec::new();
        let mut series_list = Vec::new();
        for sign_index in 0..self.n_signs {
            let true_class = SignClass::new(sample_weighted(&mut rng, &weights) as u8)
                .expect("weighted index is a valid class");
            let setting = situations.sample(&mut rng);
            let series = ddm.generate_series(sign_index as u64, true_class, &setting, &mut rng);
            // Roadside placement: alternating sides, varying offset/height.
            let side = if sign_index % 2 == 0 { 1.0 } else { -1.0 };
            let lateral = side * rng.gen_range(2.0..5.0);
            let height = rng.gen_range(1.8..3.2);
            for frame in &series.frames {
                let (x, y) =
                    config
                        .geometry
                        .image_position_at(frame.absolute_step, lateral, height);
                if x.abs() > self.fov_half_width_px {
                    // Sign left the camera's field of view.
                    break;
                }
                if rng.gen_bool(self.dropout_prob) {
                    events.push(DriveEvent::Dropout { sign_index });
                    continue;
                }
                events.push(DriveEvent::Detection(DriveFrame {
                    sign_index,
                    image_position: [x, y],
                    frame: *frame,
                    true_class,
                }));
            }
            series_list.push(series);
        }
        Drive {
            events,
            series: series_list,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracking::{SignTracker, TrackEvent};

    fn drive() -> Drive {
        DriveScenario::default().generate(&SimConfig::default(), 5)
    }

    #[test]
    fn drive_contains_all_signs_in_order() {
        let d = drive();
        assert_eq!(d.n_signs(), 3);
        let mut last = 0;
        for f in d.detections() {
            assert!(f.sign_index >= last, "signs must appear in order");
            last = f.sign_index;
        }
        let seen: std::collections::HashSet<usize> = d.detections().map(|f| f.sign_index).collect();
        assert_eq!(seen.len(), 3, "every sign must contribute detections");
    }

    #[test]
    fn detections_stay_inside_the_fov() {
        let d = drive();
        for f in d.detections() {
            assert!(f.image_position[0].abs() <= 640.0);
        }
    }

    #[test]
    fn dropouts_thin_detections_but_keep_camera_ticks() {
        let scenario = DriveScenario {
            dropout_prob: 0.5,
            ..Default::default()
        };
        let thinned = scenario.generate(&SimConfig::default(), 5);
        let full = DriveScenario {
            dropout_prob: 0.0,
            ..Default::default()
        }
        .generate(&SimConfig::default(), 5);
        assert!(thinned.detections().count() < full.detections().count());
        assert!(thinned.detections().count() > full.detections().count() / 5);
        let dropouts = thinned
            .events
            .iter()
            .filter(|e| matches!(e, DriveEvent::Dropout { .. }))
            .count();
        assert!(
            dropouts > 0,
            "50% dropout probability must produce dropout events"
        );
        assert!(full
            .events
            .iter()
            .all(|e| matches!(e, DriveEvent::Detection(_))));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DriveScenario::default().generate(&SimConfig::default(), 9);
        let b = DriveScenario::default().generate(&SimConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn tracker_segments_the_default_drive() {
        // The end-to-end property the scenario exists for: a Kalman tracker
        // with approach-suited noise, coasting through dropouts, recovers
        // exactly the sign boundaries.
        let d = drive();
        let mut tracker = SignTracker::with_noise(13.8, 2500.0, 9.0);
        let mut previous: Option<usize> = None;
        for event in &d.events {
            match event {
                DriveEvent::Dropout { .. } => tracker.coast(),
                DriveEvent::Detection(f) => {
                    let event = tracker.observe(f.image_position);
                    if let Some(prev) = previous {
                        if prev != f.sign_index {
                            assert_eq!(
                                event,
                                TrackEvent::NewTrack,
                                "sign change {prev}->{} must start a new track",
                                f.sign_index
                            );
                        } else {
                            assert_eq!(
                                event,
                                TrackEvent::Continued,
                                "track must not fragment within sign {}",
                                f.sign_index
                            );
                        }
                    }
                    previous = Some(f.sign_index);
                }
            }
        }
        assert_eq!(
            tracker.track_count() as usize,
            d.n_signs(),
            "one track per sign"
        );
    }

    #[test]
    fn dropout_heavy_drive_still_segments_with_coasting() {
        let scenario = DriveScenario {
            dropout_prob: 0.25,
            ..Default::default()
        };
        let d = scenario.generate(&SimConfig::default(), 11);
        let mut tracker = SignTracker::with_noise(13.8, 2500.0, 9.0);
        for event in &d.events {
            match event {
                DriveEvent::Dropout { .. } => tracker.coast(),
                DriveEvent::Detection(f) => {
                    tracker.observe(f.image_position);
                }
            }
        }
        assert_eq!(tracker.track_count() as usize, d.n_signs());
    }

    #[test]
    fn frames_carry_consistent_ground_truth() {
        let d = drive();
        for f in d.detections() {
            assert_eq!(f.true_class, d.series[f.sign_index].true_class);
            assert_eq!(f.frame.correct, f.frame.outcome == f.true_class);
        }
    }

    #[test]
    fn coast_is_noop_without_active_track() {
        let mut tracker = SignTracker::new(9.21);
        tracker.coast(); // must not panic
        assert_eq!(tracker.track_count(), 0);
    }
}
