//! The nine image quality deficits used by the paper's augmentation
//! framework (Jöckel & Kläs), modelled as latent intensities in `[0, 1]`.

use serde::{Deserialize, Serialize};

/// The quality deficit kinds the paper augments GTSRB images with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum DeficitKind {
    /// Rain streaks / droplets obscuring the scene.
    Rain = 0,
    /// Low ambient light (night, dusk).
    Darkness = 1,
    /// Haze / fog reducing contrast.
    Haze = 2,
    /// Natural backlight (low sun behind the sign).
    NaturalBacklight = 3,
    /// Artificial backlight (street lamps, oncoming headlights).
    ArtificialBacklight = 4,
    /// Dirt on the traffic sign itself.
    DirtOnSign = 5,
    /// Dirt on the camera lens.
    DirtOnLens = 6,
    /// Steamed-up (fogged) camera lens.
    SteamedLens = 7,
    /// Motion blur from vehicle speed and exposure time.
    MotionBlur = 8,
}

/// Number of deficit kinds.
pub const N_DEFICITS: usize = 9;

impl DeficitKind {
    /// All deficit kinds in index order.
    pub const ALL: [DeficitKind; N_DEFICITS] = [
        DeficitKind::Rain,
        DeficitKind::Darkness,
        DeficitKind::Haze,
        DeficitKind::NaturalBacklight,
        DeficitKind::ArtificialBacklight,
        DeficitKind::DirtOnSign,
        DeficitKind::DirtOnLens,
        DeficitKind::SteamedLens,
        DeficitKind::MotionBlur,
    ];

    /// Stable snake_case name used for feature columns and reports.
    pub fn name(self) -> &'static str {
        match self {
            DeficitKind::Rain => "rain",
            DeficitKind::Darkness => "darkness",
            DeficitKind::Haze => "haze",
            DeficitKind::NaturalBacklight => "natural_backlight",
            DeficitKind::ArtificialBacklight => "artificial_backlight",
            DeficitKind::DirtOnSign => "dirt_on_sign",
            DeficitKind::DirtOnLens => "dirt_on_lens",
            DeficitKind::SteamedLens => "steamed_lens",
            DeficitKind::MotionBlur => "motion_blur",
        }
    }

    /// Whether the deficit may change from frame to frame within one series.
    /// The paper keeps settings constant through a series "except for motion
    /// blur and artificial backlight".
    pub fn varies_within_series(self) -> bool {
        matches!(
            self,
            DeficitKind::MotionBlur | DeficitKind::ArtificialBacklight
        )
    }
}

impl std::fmt::Display for DeficitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Intensities for all nine deficits, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeficitVector([f64; N_DEFICITS]);

impl DeficitVector {
    /// All-zero (pristine conditions).
    pub fn zero() -> Self {
        DeficitVector([0.0; N_DEFICITS])
    }

    /// Builds a vector from raw intensities, clamping each into `[0, 1]`
    /// (NaN becomes 0).
    pub fn from_raw(values: [f64; N_DEFICITS]) -> Self {
        let mut v = values;
        for x in &mut v {
            *x = if x.is_nan() { 0.0 } else { x.clamp(0.0, 1.0) };
        }
        DeficitVector(v)
    }

    /// A vector with a single deficit set to `intensity` (used for the
    /// paper's per-deficit training augmentation).
    pub fn single(kind: DeficitKind, intensity: f64) -> Self {
        let mut v = DeficitVector::zero();
        v.set(kind, intensity);
        v
    }

    /// Intensity of one deficit.
    pub fn get(&self, kind: DeficitKind) -> f64 {
        self.0[kind as usize]
    }

    /// Sets one deficit, clamping into `[0, 1]`.
    pub fn set(&mut self, kind: DeficitKind, intensity: f64) {
        self.0[kind as usize] = if intensity.is_nan() {
            0.0
        } else {
            intensity.clamp(0.0, 1.0)
        };
    }

    /// Raw intensities in [`DeficitKind`] index order.
    pub fn as_array(&self) -> &[f64; N_DEFICITS] {
        &self.0
    }

    /// Sum of all intensities (a crude overall severity measure).
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// The most intense deficit and its value, or `None` if all are zero.
    pub fn dominant(&self) -> Option<(DeficitKind, f64)> {
        let (idx, &value) = self
            .0
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("fixed-size array is never empty");
        (value > 0.0).then_some((DeficitKind::ALL[idx], value))
    }
}

impl std::ops::Index<DeficitKind> for DeficitVector {
    type Output = f64;
    fn index(&self, kind: DeficitKind) -> &f64 {
        &self.0[kind as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_unique_indices_and_names() {
        let mut names = std::collections::HashSet::new();
        for (i, k) in DeficitKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
            assert!(names.insert(k.name()));
        }
        assert_eq!(DeficitKind::ALL.len(), N_DEFICITS);
    }

    #[test]
    fn only_blur_and_artificial_backlight_vary() {
        let varying: Vec<_> = DeficitKind::ALL
            .iter()
            .filter(|k| k.varies_within_series())
            .collect();
        assert_eq!(
            varying,
            vec![&DeficitKind::ArtificialBacklight, &DeficitKind::MotionBlur]
        );
    }

    #[test]
    fn from_raw_clamps_and_scrubs_nan() {
        let v = DeficitVector::from_raw([1.5, -0.3, f64::NAN, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(v.get(DeficitKind::Rain), 1.0);
        assert_eq!(v.get(DeficitKind::Darkness), 0.0);
        assert_eq!(v.get(DeficitKind::Haze), 0.0);
        assert_eq!(v.get(DeficitKind::NaturalBacklight), 0.5);
    }

    #[test]
    fn single_sets_exactly_one() {
        let v = DeficitVector::single(DeficitKind::SteamedLens, 0.7);
        assert_eq!(v.get(DeficitKind::SteamedLens), 0.7);
        assert_eq!(v.total(), 0.7);
        assert_eq!(v.dominant(), Some((DeficitKind::SteamedLens, 0.7)));
    }

    #[test]
    fn zero_vector_has_no_dominant() {
        assert_eq!(DeficitVector::zero().dominant(), None);
        assert_eq!(DeficitVector::zero().total(), 0.0);
    }

    #[test]
    fn index_operator_matches_get() {
        let mut v = DeficitVector::zero();
        v.set(DeficitKind::Rain, 0.4);
        assert_eq!(v[DeficitKind::Rain], 0.4);
        assert_eq!(v[DeficitKind::Haze], 0.0);
    }
}
