//! # tauw-sim
//!
//! The synthetic traffic-sign-recognition world that substitutes for the
//! paper's GTSRB images, CNN, augmentation pipeline, DWD weather archive
//! and OpenStreetMap extracts (see `DESIGN.md` §2 for the substitution
//! rationale). The uncertainty wrapper is an *outside-model* technique: it
//! only observes quality factors and DDM outcomes, so the simulator's job
//! is to reproduce their joint distribution —
//!
//! * a situation model with realistic co-occurrence of quality deficits
//!   ([`situation`]),
//! * approach geometry that grows the sign frame by frame ([`geometry`]),
//! * a simulated classifier whose errors depend on input quality and are
//!   strongly *correlated within a series* ([`ddm`]),
//! * noisy quality-factor sensors ([`sensors`]),
//! * the paper's train/calibration/test construction ([`dataset`]),
//! * first-class workload families layered over the base world — sensor
//!   dropout, regime switches, heavy-tailed bursts, multi-source evidence
//!   ([`scenario`]),
//! * multi-sign drive scenarios for end-to-end pipeline demos ([`drive`]),
//! * and a Kalman-filter sign tracker that signals series onsets
//!   ([`tracking`]).
//!
//! ## Quickstart
//!
//! ```
//! use tauw_sim::{config::SimConfig, dataset::DatasetBuilder};
//!
//! let cfg = SimConfig::scaled(0.02); // small world for the doctest
//! let data = DatasetBuilder::new(cfg, 42).map_err(std::io::Error::other)?.build();
//! assert!(!data.train.is_empty());
//! assert_eq!(data.test[0].len(), 10); // length-10 windows
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod classes;
pub mod config;
pub mod dataset;
pub mod ddm;
pub mod deficits;
pub mod drive;
pub mod geometry;
pub mod rng_util;
pub mod scenario;
pub mod sensors;
pub mod series;
pub mod situation;
pub mod tracking;

pub use classes::{ConfusionGroup, SignClass, N_CLASSES};
pub use config::SimConfig;
pub use dataset::{DatasetBuilder, GtsrbLikeDataset};
pub use ddm::SimulatedDdm;
pub use deficits::{DeficitKind, DeficitVector, N_DEFICITS};
pub use drive::{Drive, DriveFrame, DriveScenario};
pub use scenario::{
    BurstParams, DropoutParams, MultiSourceParams, RegimeParams, ScenarioConfig, ScenarioFamily,
    SplitApplication, SplitKind,
};
pub use sensors::{QualityObservation, N_QUALITY_FACTORS};
pub use series::{Frame, SeriesRecord};
pub use situation::{RoadEnvironment, SituationModel, SituationSetting};
pub use tracking::{SignTracker, TrackEvent};
