//! The simulated data-driven model (DDM): a stand-in for the paper's CNN
//! traffic-sign classifier.
//!
//! The wrapper treats the DDM as a black box, so what must be faithful is
//! not pixels-in/logits-out but the *statistical behaviour* of the
//! classifier:
//!
//! 1. **Error rate depends on input quality** — a logistic model over the
//!    latent deficit intensities and the (normalized) viewing distance.
//! 2. **Errors are systematically dependent within a series** — a shared
//!    per-series random effect on the log-odds, an AR(1) Gaussian copula
//!    across the per-frame error draws, and a per-series *systematic
//!    confusion class* that wrong outcomes collapse onto. The paper calls
//!    this out explicitly: "constant or slowly changing environment factors
//!    lead to systematic mistakes and thus it cannot be assumed that
//!    successive DDM misclassifications will occur purely at random."
//! 3. **Accuracy improves as the sign grows** in the image (Fig. 4).

use crate::classes::SignClass;
use crate::config::SimConfig;
use crate::deficits::{DeficitKind, DeficitVector};
use crate::rng_util::{sample_standard_normal, sample_weighted};
use crate::sensors::QualityObservation;
use crate::series::{Frame, SeriesRecord};
use crate::situation::SituationSetting;
use rand::Rng;
use tauw_stats::special::normal_cdf;

/// The simulated CNN classifier.
#[derive(Debug, Clone)]
pub struct SimulatedDdm {
    config: SimConfig,
}

impl SimulatedDdm {
    /// Creates a DDM with the given world configuration.
    pub fn new(config: SimConfig) -> Self {
        SimulatedDdm { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Per-frame failure probability given latent conditions and the
    /// series-level random effect on the log-odds.
    pub fn error_probability(
        &self,
        deficits: &DeficitVector,
        distance_m: f64,
        series_effect: f64,
    ) -> f64 {
        let cfg = &self.config;
        let normalized_distance = (distance_m / cfg.geometry.start_distance_m).clamp(0.0, 1.5);
        let mut logit =
            cfg.ddm_bias + cfg.ddm_distance_weight * normalized_distance + series_effect;
        for (i, &w) in cfg.ddm_deficit_weights.iter().enumerate() {
            logit += w * deficits.as_array()[i];
        }
        sigmoid(logit)
    }

    /// Generates one full-length series: evolves the per-frame deficits,
    /// draws correlated error events, and synthesizes outcomes.
    pub fn generate_series<R: Rng + ?Sized>(
        &self,
        series_id: u64,
        true_class: SignClass,
        setting: &SituationSetting,
        rng: &mut R,
    ) -> SeriesRecord {
        let cfg = &self.config;
        let n_frames = cfg.geometry.n_frames;

        // Series-level systematic components.
        let series_effect = cfg.ddm_series_sigma * sample_standard_normal(rng);
        let confusion_peers = true_class.confusable_with();
        let confusion_target = confusion_peers[rng.gen_range(0..confusion_peers.len())];

        // Artificial backlight gate: Markov on/off chain around the base.
        let backlight_base = setting.deficits.get(DeficitKind::ArtificialBacklight);
        let mut backlight_on = backlight_base > 0.0 && rng.gen_bool(0.7);

        // AR(1) Gaussian copula state for error dependence.
        let phi = cfg.ddm_error_copula_phi;
        let mut z = sample_standard_normal(rng);

        let mut frames = Vec::with_capacity(n_frames);
        for step in 0..n_frames {
            // Per-frame deficit evolution.
            let mut deficits = setting.deficits;
            let blur_base = setting.deficits.get(DeficitKind::MotionBlur);
            let blur = blur_base * (1.0 + cfg.blur_jitter * sample_standard_normal(rng));
            deficits.set(DeficitKind::MotionBlur, blur);
            if backlight_base > 0.0 && rng.gen_bool(cfg.backlight_toggle_prob) {
                backlight_on = !backlight_on;
            }
            deficits.set(
                DeficitKind::ArtificialBacklight,
                if backlight_on { backlight_base } else { 0.0 },
            );

            let distance_m = cfg.geometry.distance_at(step);
            let pixel_size = cfg.geometry.pixel_size_at(step);
            let p_err = self.error_probability(&deficits, distance_m, series_effect);

            // Correlated error draw through the copula.
            if step > 0 {
                z = phi * z + (1.0 - phi * phi).sqrt() * sample_standard_normal(rng);
            }
            let is_error = normal_cdf(z) < p_err;

            let outcome = if is_error {
                if rng.gen_bool(cfg.ddm_systematic_confusion_prob) {
                    confusion_target
                } else {
                    // A uniformly random *wrong* class.
                    let mut weights = [1.0; crate::classes::N_CLASSES as usize];
                    weights[true_class.id() as usize] = 0.0;
                    SignClass::new(sample_weighted(rng, &weights) as u8)
                        .expect("index < N_CLASSES by construction")
                }
            } else {
                true_class
            };

            // Softmax-style self-confidence proxy (not consumed by the
            // wrapper): high when conditions are good, noisy when bad.
            let ddm_confidence = if is_error {
                rng.gen_range(0.35..0.9)
            } else {
                (1.0 - p_err * rng.gen_range(0.2..1.0)).clamp(0.0, 1.0)
            };

            let observation = QualityObservation::observe(&deficits, pixel_size, cfg, rng);
            frames.push(Frame {
                step,
                absolute_step: step,
                distance_m,
                pixel_size,
                latent_deficits: deficits,
                observation,
                outcome,
                correct: !is_error,
                ddm_confidence,
            });
        }

        SeriesRecord {
            series_id,
            true_class,
            setting: setting.clone(),
            frames,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::situation::SituationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ddm() -> SimulatedDdm {
        SimulatedDdm::new(SimConfig::default())
    }

    fn clean_setting(rng: &mut StdRng) -> SituationSetting {
        let mut s = SituationModel::new().sample(rng);
        s.deficits = DeficitVector::zero();
        s
    }

    #[test]
    fn error_probability_increases_with_distance() {
        let d = ddm();
        let clean = DeficitVector::zero();
        let near = d.error_probability(&clean, 6.0, 0.0);
        let far = d.error_probability(&clean, 80.0, 0.0);
        assert!(far > 2.0 * near, "far {far} should dwarf near {near}");
    }

    #[test]
    fn error_probability_increases_with_deficits() {
        let d = ddm();
        let clean = DeficitVector::zero();
        let mut bad = DeficitVector::zero();
        bad.set(DeficitKind::SteamedLens, 1.0);
        bad.set(DeficitKind::MotionBlur, 0.8);
        assert!(
            d.error_probability(&bad, 30.0, 0.0) > 3.0 * d.error_probability(&clean, 30.0, 0.0)
        );
    }

    #[test]
    fn clean_near_conditions_are_very_reliable() {
        let d = ddm();
        let p = d.error_probability(&DeficitVector::zero(), 6.0, 0.0);
        assert!(p < 0.01, "clean near error rate {p} should be below 1%");
    }

    #[test]
    fn series_has_configured_length_and_consistent_flags() {
        let d = ddm();
        let mut rng = StdRng::seed_from_u64(1);
        let setting = SituationModel::new().sample(&mut rng);
        let s = d.generate_series(1, SignClass::new(13).unwrap(), &setting, &mut rng);
        assert_eq!(s.len(), 30);
        for f in &s.frames {
            assert_eq!(f.correct, f.outcome == s.true_class);
            assert!(f.pixel_size > 0.0);
            assert!((0.0..=1.0).contains(&f.ddm_confidence));
        }
    }

    #[test]
    fn errors_are_dependent_within_series() {
        // Compare the empirical P(error at t+1 | error at t) against the
        // marginal error rate: with the copula + series effect it must be
        // much larger.
        let d = ddm();
        let mut rng = StdRng::seed_from_u64(2);
        let model = SituationModel::new();
        let mut joint = 0usize;
        let mut after_error = 0usize;
        let mut errors = 0usize;
        let mut total = 0usize;
        for i in 0..600 {
            let setting = model.sample(&mut rng);
            let s = d.generate_series(i, SignClass::new(2).unwrap(), &setting, &mut rng);
            for w in s.frames.windows(2) {
                total += 1;
                if !w[0].correct {
                    errors += 1;
                    after_error += 1;
                    if !w[1].correct {
                        joint += 1;
                    }
                }
            }
            if let Some(last) = s.frames.last() {
                if !last.correct {
                    errors += 1;
                }
            }
            total += 1;
        }
        let marginal = errors as f64 / total as f64;
        let conditional = joint as f64 / after_error.max(1) as f64;
        assert!(
            conditional > 3.0 * marginal,
            "P(err|prev err) = {conditional:.3} vs marginal {marginal:.3}: errors look independent"
        );
    }

    #[test]
    fn wrong_outcomes_concentrate_on_confusion_target() {
        let d = ddm();
        let mut rng = StdRng::seed_from_u64(3);
        let model = SituationModel::new();
        let mut histogram = std::collections::HashMap::new();
        let mut n_err = 0;
        for i in 0..400 {
            let mut setting = model.sample(&mut rng);
            // Force terrible conditions so errors abound.
            setting.deficits.set(DeficitKind::Haze, 1.0);
            setting.deficits.set(DeficitKind::SteamedLens, 1.0);
            let s = d.generate_series(i, SignClass::new(5).unwrap(), &setting, &mut rng);
            let mut per_series = std::collections::HashMap::new();
            for f in &s.frames {
                if !f.correct {
                    n_err += 1;
                    *per_series.entry(f.outcome).or_insert(0usize) += 1;
                }
            }
            // Record the modal wrong class per series.
            if let Some((&class, &count)) = per_series.iter().max_by_key(|(_, &c)| c) {
                histogram.insert(i, (class, count, per_series.values().sum::<usize>()));
            }
        }
        assert!(
            n_err > 500,
            "need plenty of errors for this test, got {n_err}"
        );
        // In most series the modal wrong class dominates the errors.
        let dominated = histogram
            .values()
            .filter(|(_, modal, total)| *modal as f64 > 0.6 * *total as f64)
            .count();
        assert!(
            dominated as f64 > 0.7 * histogram.len() as f64,
            "systematic confusion should dominate per-series errors"
        );
        // And modal wrong classes are usually in the speed-limit group.
        let speed_group = histogram
            .values()
            .filter(|(c, _, _)| c.confusion_group() == crate::classes::ConfusionGroup::SpeedLimits)
            .count();
        assert!(speed_group as f64 > 0.7 * histogram.len() as f64);
    }

    #[test]
    fn error_rate_declines_over_the_series() {
        let d = ddm();
        let mut rng = StdRng::seed_from_u64(4);
        let model = SituationModel::new();
        let mut early = 0usize;
        let mut late = 0usize;
        let mut n = 0usize;
        for i in 0..800 {
            let setting = model.sample(&mut rng);
            let s = d.generate_series(i, SignClass::new(1).unwrap(), &setting, &mut rng);
            early += s.frames[..10].iter().filter(|f| !f.correct).count();
            late += s.frames[20..].iter().filter(|f| !f.correct).count();
            n += 10;
        }
        let early_rate = early as f64 / n as f64;
        let late_rate = late as f64 / n as f64;
        assert!(
            early_rate > 1.5 * late_rate,
            "early (far) error rate {early_rate:.3} should exceed late (near) {late_rate:.3}"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = ddm();
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let s1 = {
            let setting = clean_setting(&mut rng1);
            d.generate_series(9, SignClass::new(3).unwrap(), &setting, &mut rng1)
        };
        let s2 = {
            let setting = clean_setting(&mut rng2);
            d.generate_series(9, SignClass::new(3).unwrap(), &setting, &mut rng2)
        };
        assert_eq!(s1, s2);
    }
}
