//! Dataset construction following the paper's study design (Section IV-B):
//!
//! * 1307 base series are split 523/392/392 into train/calibration/test;
//! * every **training** series is augmented once per (deficit kind ×
//!   intensity level) plus one clean variant;
//! * every **calibration/test** series is augmented 28 times with random
//!   realistic situation settings;
//! * calibration/test series are subsampled to length-10 windows with a
//!   uniformly random start, "to avoid biased uncertainty predictions due
//!   to the distance from the traffic signs".

use crate::classes::SignClass;
use crate::config::SimConfig;
use crate::ddm::SimulatedDdm;
use crate::deficits::{DeficitKind, DeficitVector};
use crate::rng_util::{derive_seed, sample_weighted};
use crate::series::SeriesRecord;
use crate::situation::{SituationModel, SituationSetting};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three datasets of the study.
#[derive(Debug, Clone)]
pub struct GtsrbLikeDataset {
    /// Full-length training series (deficit-wise augmentation).
    pub train: Vec<SeriesRecord>,
    /// Length-`window_len` calibration series (random-setting augmentation).
    pub calib: Vec<SeriesRecord>,
    /// Length-`window_len` test series (random-setting augmentation).
    pub test: Vec<SeriesRecord>,
}

impl GtsrbLikeDataset {
    /// Total number of frames across all three splits.
    pub fn total_frames(&self) -> usize {
        self.train.iter().map(SeriesRecord::len).sum::<usize>()
            + self.calib.iter().map(SeriesRecord::len).sum::<usize>()
            + self.test.iter().map(SeriesRecord::len).sum::<usize>()
    }
}

/// Deterministic builder for [`GtsrbLikeDataset`].
///
/// Generation is embarrassingly parallel: every base series derives its
/// own RNG stream from `(master seed, base index)`, so batches of base
/// series fan out over a thread budget ([`DatasetBuilder::threads`]) and
/// the result is **bit-identical** for every thread count.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    config: SimConfig,
    seed: u64,
    n_threads: Option<usize>,
}

impl DatasetBuilder {
    /// Creates a builder for the given configuration and master seed.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: SimConfig, seed: u64) -> Result<Self, String> {
        config.validate()?;
        Ok(DatasetBuilder {
            config,
            seed,
            n_threads: None,
        })
    }

    /// Pins the thread budget for [`DatasetBuilder::build`] (clamped to
    /// ≥ 1). Unpinned builders use [`parallel::max_threads`]. The generated
    /// dataset is bit-identical for every budget.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.n_threads = Some(n.max(1));
        self
    }

    fn effective_threads(&self) -> usize {
        self.n_threads.unwrap_or_else(parallel::max_threads).max(1)
    }

    /// Access to the configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Builds all three splits.
    pub fn build(&self) -> GtsrbLikeDataset {
        let specs = self.base_series_specs();
        let (train_specs, rest) = specs.split_at(self.config.split.0);
        let (calib_specs, rest2) = rest.split_at(self.config.split.1);
        let test_specs = &rest2[..self.config.split.2];

        GtsrbLikeDataset {
            train: self.build_train(train_specs),
            calib: self.build_windows(calib_specs, self.config.calib_augmentations, 0xCA11B),
            test: self.build_windows(test_specs, self.config.test_augmentations, 0x7E57),
        }
    }

    /// Builds only the training split (useful for model-building tools).
    pub fn build_train_only(&self) -> Vec<SeriesRecord> {
        let specs = self.base_series_specs();
        self.build_train(&specs[..self.config.split.0])
    }

    /// Builds only the test split (bit-identical to the `test` field of
    /// [`DatasetBuilder::build`]; used by scenario studies that re-derive
    /// a transformed test set without paying for the training split).
    pub fn build_test_only(&self) -> Vec<SeriesRecord> {
        let specs = self.base_series_specs();
        let start = self.config.split.0 + self.config.split.1;
        self.build_windows(
            &specs[start..start + self.config.split.2],
            self.config.test_augmentations,
            0x7E57,
        )
    }

    /// The per-base-series ground truth: a true class per series, shuffled
    /// deterministically so splits are random with respect to class.
    fn base_series_specs(&self) -> Vec<SignClass> {
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, 0xBA5E));
        let weights: Vec<f64> = SignClass::all().map(|c| c.frequency_weight()).collect();
        (0..self.config.n_series)
            .map(|_| {
                SignClass::new(sample_weighted(&mut rng, &weights) as u8)
                    .expect("weighted index is a valid class")
            })
            .collect()
    }

    /// Training augmentation: one clean copy plus one copy per
    /// (deficit, level). Base series fan out over the thread budget; the
    /// per-base RNG stream and series ids depend only on the base index,
    /// so output order and content match the serial loop exactly.
    fn build_train(&self, specs: &[SignClass]) -> Vec<SeriesRecord> {
        let ddm = SimulatedDdm::new(self.config.clone());
        let model = SituationModel::new();
        // The clean variant keeps contextual fields plausible but zeroes
        // the deficits.
        let mut variants: Vec<DeficitVector> = vec![DeficitVector::zero()];
        for kind in DeficitKind::ALL {
            for &level in &self.config.train_intensity_levels {
                variants.push(DeficitVector::single(kind, level));
            }
        }
        let indexed: Vec<(usize, SignClass)> = specs.iter().copied().enumerate().collect();
        let per_base: Vec<Vec<SeriesRecord>> = parallel::par_map(
            self.effective_threads(),
            &indexed,
            |&(base_idx, true_class)| {
                let base_seed = derive_seed(self.seed, 0x7EA1_0000 ^ base_idx as u64);
                let mut rng = StdRng::seed_from_u64(base_seed);
                let first_id = (base_idx * variants.len()) as u64;
                let mut out = Vec::with_capacity(variants.len());
                for (series_id, deficits) in (first_id..).zip(&variants) {
                    let mut setting = model.sample(&mut rng);
                    setting.deficits = *deficits;
                    out.push(ddm.generate_series(series_id, true_class, &setting, &mut rng));
                }
                out
            },
        );
        per_base.into_iter().flatten().collect()
    }

    /// Calibration/test augmentation: random settings, then window
    /// subsampling. Parallel over base series like [`Self::build_train`].
    fn build_windows(
        &self,
        specs: &[SignClass],
        augmentations: usize,
        salt: u64,
    ) -> Vec<SeriesRecord> {
        let ddm = SimulatedDdm::new(self.config.clone());
        let model = SituationModel::new();
        let window_len = self.config.window_len;
        let n_frames = self.config.geometry.n_frames;
        let indexed: Vec<(usize, SignClass)> = specs.iter().copied().enumerate().collect();
        let per_base: Vec<Vec<SeriesRecord>> = parallel::par_map(
            self.effective_threads(),
            &indexed,
            |&(base_idx, true_class)| {
                let base_seed = derive_seed(self.seed, salt ^ ((base_idx as u64) << 8));
                let mut rng = StdRng::seed_from_u64(base_seed);
                let first_id = (salt << 32) + (base_idx * augmentations) as u64;
                let mut out = Vec::with_capacity(augmentations);
                for series_id in first_id..first_id + augmentations as u64 {
                    let setting: SituationSetting = model.sample(&mut rng);
                    let full = ddm.generate_series(series_id, true_class, &setting, &mut rng);
                    let start = rng.gen_range(0..=n_frames - window_len);
                    out.push(full.window(start, window_len));
                }
                out
            },
        );
        per_base.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_builder() -> DatasetBuilder {
        DatasetBuilder::new(SimConfig::scaled(0.02), 42).unwrap()
    }

    #[test]
    fn splits_have_expected_sizes() {
        let b = small_builder();
        let cfg = b.config().clone();
        let ds = b.build();
        let variants_per_series = 1 + 9 * cfg.train_intensity_levels.len();
        assert_eq!(ds.train.len(), cfg.split.0 * variants_per_series);
        assert_eq!(ds.calib.len(), cfg.split.1 * cfg.calib_augmentations);
        assert_eq!(ds.test.len(), cfg.split.2 * cfg.test_augmentations);
    }

    #[test]
    fn train_series_are_full_length_and_windows_are_short() {
        let b = small_builder();
        let cfg = b.config().clone();
        let ds = b.build();
        for s in &ds.train {
            assert_eq!(s.len(), cfg.geometry.n_frames);
        }
        for s in ds.calib.iter().chain(&ds.test) {
            assert_eq!(s.len(), cfg.window_len);
            // Window starts vary; absolute steps expose the original index.
            assert!(s.frames[0].absolute_step <= cfg.geometry.n_frames - cfg.window_len);
        }
    }

    #[test]
    fn window_starts_are_spread_out() {
        let b = small_builder();
        let ds = b.build();
        let starts: std::collections::HashSet<usize> =
            ds.test.iter().map(|s| s.frames[0].absolute_step).collect();
        assert!(
            starts.len() > 5,
            "window starts should vary, got {starts:?}"
        );
    }

    #[test]
    fn build_is_deterministic() {
        let a = small_builder().build();
        let b = small_builder().build();
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.test[3], b.test[3]);
        assert_eq!(a.train[5], b.train[5]);
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let serial = small_builder().threads(1).build();
        for threads in [2usize, 8] {
            let par = small_builder().threads(threads).build();
            assert_eq!(serial.train, par.train, "threads={threads}");
            assert_eq!(serial.calib, par.calib, "threads={threads}");
            assert_eq!(serial.test, par.test, "threads={threads}");
        }
    }

    #[test]
    fn test_only_build_matches_full_build() {
        let full = small_builder().build();
        let test_only = small_builder().build_test_only();
        assert_eq!(full.test, test_only);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetBuilder::new(SimConfig::scaled(0.02), 1)
            .unwrap()
            .build();
        let b = DatasetBuilder::new(SimConfig::scaled(0.02), 2)
            .unwrap()
            .build();
        assert_ne!(a.test[0], b.test[0]);
    }

    #[test]
    fn train_variants_cover_all_deficits() {
        let b = small_builder();
        let ds = b.build();
        for kind in DeficitKind::ALL {
            let found = ds.train.iter().any(|s| {
                s.setting.deficits.get(kind) > 0.9
                    && s.setting.deficits.total() <= s.setting.deficits.get(kind) + 1e-9
            });
            assert!(found, "no high-intensity single-deficit variant for {kind}");
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = SimConfig {
            split: (2000, 2000, 2000),
            ..Default::default()
        };
        assert!(DatasetBuilder::new(cfg, 1).is_err());
    }

    #[test]
    fn class_distribution_is_imbalanced_like_gtsrb() {
        let b = DatasetBuilder::new(SimConfig::scaled(0.3), 7).unwrap();
        let specs = b.base_series_specs();
        let mut counts = [0usize; 43];
        for c in &specs {
            counts[c.id() as usize] += 1;
        }
        // Speed limit 50 (class 2) must appear far more often than limit 20.
        assert!(counts[2] > 3 * counts[0].max(1), "{counts:?}");
    }
}
