//! Shared experiment setup: builds the synthetic world, trains and
//! calibrates the wrappers, and replays the evaluation data — everything
//! the per-figure binaries have in common.

use crate::convert::to_training_series;
use tauw_core::calibration::CalibrationOptions;
use tauw_core::conformal::ConformalOptions;
use tauw_core::tauw::{replay, BackendSpec, ReplayRow, TauwBuilder, TimeseriesAwareWrapper};
use tauw_core::training::{flatten_stateless, TrainingSeries};
use tauw_core::wrapper::{UncertaintyWrapper, WrapperBuilder};
use tauw_core::CoreError;
use tauw_sim::{
    DatasetBuilder, GtsrbLikeDataset, QualityObservation, ScenarioConfig, ScenarioFamily,
    SimConfig, SplitKind,
};

/// The context's canonical wrapper configuration (paper depth 8 + the
/// scale-adjusted calibration options) — shared by the base build and by
/// every variant, so an ablation differs only in the dimension under
/// study.
fn configured_wrapper_builder(calibration: CalibrationOptions) -> WrapperBuilder {
    let mut wrapper_builder = WrapperBuilder::new();
    wrapper_builder.max_depth(8).calibration(calibration);
    wrapper_builder
}

/// Everything a figure/table binary needs, built deterministically from
/// `(scale, seed)`.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// World configuration used.
    pub config: SimConfig,
    /// Master seed used.
    pub seed: u64,
    /// Names of the stateless quality factors.
    pub feature_names: Vec<String>,
    /// Training series (full-length, deficit-augmented).
    pub train: Vec<TrainingSeries>,
    /// Calibration series (length-10 windows).
    pub calib: Vec<TrainingSeries>,
    /// Test series (length-10 windows).
    pub test: Vec<TrainingSeries>,
    /// Replayed training rows (for taQIM variant sweeps).
    pub train_replay: Vec<ReplayRow>,
    /// Replayed calibration rows.
    pub calib_replay: Vec<ReplayRow>,
    /// The trained timeseries-aware wrapper with all four taQFs.
    pub tauw: TimeseriesAwareWrapper,
    /// Calibration options used for both QIMs.
    pub calibration: CalibrationOptions,
}

impl ExperimentContext {
    /// Builds the context at the given scale (1.0 = paper-sized) and seed.
    ///
    /// At reduced scales the minimum calibration count per leaf is scaled
    /// down proportionally (the paper's 200 assumes ~110k calibration
    /// samples); everything else follows the paper's defaults.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if training or calibration fails (which for
    /// valid configurations it does not).
    pub fn build(scale: f64, seed: u64) -> Result<Self, CoreError> {
        let config = if scale >= 1.0 {
            SimConfig::default()
        } else {
            SimConfig::scaled(scale)
        };
        Self::build_with_config(config, seed)
    }

    /// Builds the context for an explicit world configuration (used by the
    /// sensitivity study, which perturbs the error model).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if training or calibration fails.
    pub fn build_with_config(config: SimConfig, seed: u64) -> Result<Self, CoreError> {
        let data = DatasetBuilder::new(config.clone(), seed)
            .map_err(|reason| CoreError::InvalidInput { reason })?
            .build();
        Self::build_with_dataset(config, data, seed)
    }

    /// Builds the context whose dataset has `family` applied to its
    /// default splits (see `ScenarioFamily::default_application`): the
    /// scenario studies' entry point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the configuration is invalid or training
    /// or calibration fails.
    pub fn build_scenario(
        family: ScenarioFamily,
        scale: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let config = if scale >= 1.0 {
            SimConfig::default()
        } else {
            SimConfig::scaled(scale)
        };
        let scenario = ScenarioConfig::new(config.clone(), family);
        let data = scenario
            .build(seed)
            .map_err(|reason| CoreError::InvalidInput { reason })?;
        Self::build_with_dataset(config, data, seed)
    }

    /// Builds the context from an already-generated (possibly
    /// scenario-transformed) dataset.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if training or calibration fails.
    pub fn build_with_dataset(
        config: SimConfig,
        data: GtsrbLikeDataset,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let train = to_training_series(&data.train);
        let calib = to_training_series(&data.calib);
        let test = to_training_series(&data.test);
        drop(data);

        let feature_names = QualityObservation::feature_names();
        let n_calib_rows: usize = calib.iter().map(TrainingSeries::len).sum();
        let calibration = CalibrationOptions {
            // Paper: 200 per leaf on ~110k calibration rows. Keep that
            // exact value at full scale; shrink proportionally (floor 25)
            // for scaled-down runs so small worlds still produce
            // informative trees.
            min_samples_per_leaf: ((n_calib_rows as f64 / 110_000.0 * 200.0).round() as u64)
                .clamp(25, 200),
            confidence: 0.999,
            ..Default::default()
        };
        let wrapper_builder = configured_wrapper_builder(calibration);

        // Stateless wrapper.
        let stateless: UncertaintyWrapper = wrapper_builder.fit(
            feature_names.clone(),
            &flatten_stateless(&train),
            &flatten_stateless(&calib),
        )?;

        // Replay once; reuse for the full taUW and all subset variants.
        let train_replay = replay(&stateless, &train)?;
        let calib_replay = replay(&stateless, &calib)?;

        let mut tauw_builder = TauwBuilder::new();
        tauw_builder.wrapper(wrapper_builder);
        let tauw = tauw_builder.fit_reusing_stateless(
            stateless,
            &feature_names,
            &train_replay,
            &calib_replay,
        )?;

        Ok(ExperimentContext {
            config,
            seed,
            feature_names,
            train,
            calib,
            test,
            train_replay,
            calib_replay,
            tauw,
            calibration,
        })
    }

    /// DDM misclassification rate over the test windows ("the images of
    /// the length 10 timeseries"; paper: 7.89%).
    pub fn test_ddm_misclassification(&self) -> f64 {
        let mut wrong = 0usize;
        let mut total = 0usize;
        for series in &self.test {
            for (j, _) in series.steps.iter().enumerate() {
                total += 1;
                if series.is_failure(j) {
                    wrong += 1;
                }
            }
        }
        wrong as f64 / total.max(1) as f64
    }

    /// Regenerates this context's **test split** with `family` applied
    /// (train and calibration stay exactly as this context was built):
    /// the deployment-time-shift view, where a wrapper trained on the
    /// clean world is hit by scenario traffic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the configuration is invalid.
    pub fn scenario_test(&self, family: ScenarioFamily) -> Result<Vec<TrainingSeries>, CoreError> {
        let mut test = DatasetBuilder::new(self.config.clone(), self.seed)
            .map_err(|reason| CoreError::InvalidInput { reason })?
            .build_test_only();
        let scenario = ScenarioConfig::new(self.config.clone(), family);
        scenario.apply_split(
            SplitKind::Test,
            &mut test,
            self.seed,
            parallel::max_threads(),
        );
        Ok(to_training_series(&test))
    }

    /// Builds a taUW variant whose taQIM is a calibrated bootstrap
    /// **forest** of `n_trees` members resampled from `seed`, reusing the
    /// stateless wrapper and replay rows (the boundary-smoothing ablation
    /// and the tree-vs-forest bench rows).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on infeasible calibration.
    pub fn tauw_forest_variant(
        &self,
        n_trees: usize,
        seed: u64,
    ) -> Result<TimeseriesAwareWrapper, CoreError> {
        let mut builder = TauwBuilder::new();
        builder
            .wrapper(configured_wrapper_builder(self.calibration))
            .backend(BackendSpec::Forest { n_trees, seed });
        builder.fit_reusing_stateless(
            self.tauw.stateless().clone(),
            &self.feature_names,
            &self.train_replay,
            &self.calib_replay,
        )
    }

    /// Builds a taUW variant whose taQIM is the leafless **split-conformal**
    /// backend, calibrated at `confidence = 1 − α`, reusing the stateless
    /// wrapper and replay rows (the distribution-free head-to-head and the
    /// tree-vs-conformal bench row).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an invalid configuration or empty splits.
    pub fn tauw_conformal_variant(
        &self,
        options: ConformalOptions,
        confidence: f64,
    ) -> Result<TimeseriesAwareWrapper, CoreError> {
        let calibration = CalibrationOptions {
            confidence,
            ..self.calibration
        };
        let mut builder = TauwBuilder::new();
        builder
            .wrapper(configured_wrapper_builder(calibration))
            .backend(BackendSpec::Conformal(options));
        builder.fit_reusing_stateless(
            self.tauw.stateless().clone(),
            &self.feature_names,
            &self.train_replay,
            &self.calib_replay,
        )
    }

    /// Builds a taUW variant with a different taQF subset, reusing the
    /// stateless wrapper and replay rows (the Fig. 7 sweep).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on infeasible calibration.
    pub fn tauw_variant(
        &self,
        set: tauw_core::taqf::TaqfSet,
    ) -> Result<TimeseriesAwareWrapper, CoreError> {
        let mut builder = TauwBuilder::new();
        builder
            .wrapper(configured_wrapper_builder(self.calibration))
            .taqf_set(set);
        builder.fit_reusing_stateless(
            self.tauw.stateless().clone(),
            &self.feature_names,
            &self.train_replay,
            &self.calib_replay,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_context_builds_end_to_end() {
        let ctx = ExperimentContext::build(0.02, 7).unwrap();
        assert!(!ctx.train.is_empty());
        assert!(!ctx.test.is_empty());
        assert_eq!(ctx.feature_names.len(), tauw_sim::N_QUALITY_FACTORS);
        let miscls = ctx.test_ddm_misclassification();
        assert!(
            (0.005..0.35).contains(&miscls),
            "DDM misclassification {miscls} wildly off target"
        );
        // The full taUW uses all four factors.
        assert_eq!(ctx.tauw.taqf_set().len(), 4);
    }

    #[test]
    fn variant_with_fewer_factors_builds() {
        let ctx = ExperimentContext::build(0.02, 7).unwrap();
        let set = tauw_core::taqf::TaqfSet::from_kinds(&[tauw_core::taqf::TaqfKind::Ratio]);
        let variant = ctx.tauw_variant(set).unwrap();
        assert_eq!(variant.taqf_set(), set);
        assert_eq!(variant.taqim().n_features(), ctx.feature_names.len() + 1);
    }

    #[test]
    fn forest_variant_builds_and_serves() {
        let ctx = ExperimentContext::build(0.02, 7).unwrap();
        let forest = ctx.tauw_forest_variant(4, 0xF0).unwrap();
        assert_eq!(forest.taqim().n_trees(), 4);
        assert_eq!(forest.taqim().n_features(), ctx.feature_names.len() + 4);
        let again = ctx.tauw_forest_variant(4, 0xF0).unwrap();
        assert_eq!(forest, again, "forest variant must be seed-deterministic");
    }

    #[test]
    fn conformal_variant_builds_and_serves() {
        let ctx = ExperimentContext::build(0.02, 7).unwrap();
        let conformal = ctx
            .tauw_conformal_variant(ConformalOptions::default(), 0.9)
            .unwrap();
        assert!(conformal.taqim().as_conformal().is_some());
        assert_eq!(
            conformal.taqim().n_features(),
            ctx.feature_names.len() + 4,
            "stateless QFs + all four taQFs"
        );
        let again = ctx
            .tauw_conformal_variant(ConformalOptions::default(), 0.9)
            .unwrap();
        assert_eq!(conformal, again, "conformal variant must be deterministic");
        // Serves through an ordinary session.
        let mut s = conformal.new_session();
        let step = s.step(&vec![0.5; ctx.feature_names.len()], 0).unwrap();
        assert!(step.uncertainty > 0.0 && step.uncertainty <= 1.0);
    }

    #[test]
    fn scenario_test_split_keeps_family_semantics() {
        let ctx = ExperimentContext::build(0.02, 7).unwrap();
        // Dropout only touches observations: outcomes must be identical.
        let dropout = ctx
            .scenario_test(ScenarioFamily::from_name("dropout").unwrap())
            .unwrap();
        assert_eq!(dropout.len(), ctx.test.len());
        let mut perturbed = false;
        for (a, b) in ctx.test.iter().zip(&dropout) {
            assert_eq!(a.true_outcome, b.true_outcome);
            for (sa, sb) in a.steps.iter().zip(&b.steps) {
                assert_eq!(sa.outcome, sb.outcome);
                perturbed |= sa.quality_factors != sb.quality_factors;
            }
        }
        assert!(perturbed, "dropout never changed a quality factor");
        // Multi-source triples every series.
        let ms = ctx
            .scenario_test(ScenarioFamily::from_name("multi_source").unwrap())
            .unwrap();
        assert_eq!(ms[0].steps.len(), ctx.test[0].steps.len() * 3);
    }

    #[test]
    fn scenario_context_builds_and_serves() {
        let ctx = ExperimentContext::build_scenario(
            ScenarioFamily::from_name("heavy_tails").unwrap(),
            0.02,
            7,
        )
        .unwrap();
        assert!(!ctx.test.is_empty());
        assert!((0.0..1.0).contains(&ctx.test_ddm_misclassification()));
    }

    #[test]
    fn context_is_deterministic() {
        let a = ExperimentContext::build(0.02, 9).unwrap();
        let b = ExperimentContext::build(0.02, 9).unwrap();
        assert_eq!(
            a.test_ddm_misclassification(),
            b.test_ddm_misclassification()
        );
        assert_eq!(a.tauw.min_uncertainty(), b.tauw.min_uncertainty());
    }
}
