//! Reference values transcribed from the paper, printed side by side with
//! the measured values so every run documents paper-vs-measured. The
//! substrate differs (synthetic world vs GTSRB+CNN), so only the *shape*
//! is expected to match — see `EXPERIMENTS.md`.

use crate::eval::Approach;

/// One Table I row from the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable1Row {
    /// The approach.
    pub approach: Approach,
    /// Brier score.
    pub brier: f64,
    /// Variance component.
    pub variance: f64,
    /// Unspecificity component.
    pub unspecificity: f64,
    /// Unreliability component.
    pub unreliability: f64,
    /// Overconfidence portion.
    pub overconfidence: f64,
}

/// Table I as printed in the paper.
pub const PAPER_TABLE1: [PaperTable1Row; 6] = [
    PaperTable1Row {
        approach: Approach::StatelessNoIf,
        brier: 0.0661,
        variance: 0.0726,
        unspecificity: 0.0651,
        unreliability: 0.00094,
        overconfidence: 7.0e-06,
    },
    PaperTable1Row {
        approach: Approach::IfNoUf,
        brier: 0.0498,
        variance: 0.0526,
        unspecificity: 0.0487,
        unreliability: 0.00112,
        overconfidence: 3.9e-05,
    },
    PaperTable1Row {
        approach: Approach::IfNaive,
        brier: 0.0490,
        variance: 0.0526,
        unspecificity: 0.0434,
        unreliability: 0.00565,
        overconfidence: 5.6e-03,
    },
    PaperTable1Row {
        approach: Approach::IfWorstCase,
        brier: 0.0588,
        variance: 0.0526,
        unspecificity: 0.0488,
        unreliability: 0.01002,
        overconfidence: 5.1e-07,
    },
    PaperTable1Row {
        approach: Approach::IfOpportune,
        brier: 0.0481,
        variance: 0.0526,
        unspecificity: 0.0466,
        unreliability: 0.00152,
        overconfidence: 1.8e-04,
    },
    PaperTable1Row {
        approach: Approach::IfTauw,
        brier: 0.0356,
        variance: 0.0526,
        unspecificity: 0.0346,
        unreliability: 0.00101,
        overconfidence: 0.0,
    },
];

/// Paper headline numbers referenced across sections.
pub mod headline {
    /// DDM misclassification on the length-10 test windows (Section V RQ1).
    pub const DDM_MISCLASSIFICATION: f64 = 0.0789;
    /// Average fused misclassification over all timesteps.
    pub const FUSED_MISCLASSIFICATION: f64 = 0.0557;
    /// Fused misclassification at timestep 10.
    pub const FUSED_MISCLASSIFICATION_STEP10: f64 = 0.0369;
    /// The taUW's lowest guaranteed uncertainty (Fig. 5).
    pub const TAUW_MIN_UNCERTAINTY: f64 = 0.0072;
    /// Share of cases at the lowest taUW uncertainty (Fig. 5).
    pub const TAUW_MIN_UNCERTAINTY_SHARE: f64 = 0.659;
}

/// Fig. 4 reference: whether the expected qualitative shape holds for a
/// measured per-step table (monotone-ish decline; fused ≤ isolated from
/// step 3 on; equality at steps 1–2).
pub fn fig4_shape_holds(rates: &[crate::eval::StepRates]) -> bool {
    if rates.len() < 3 {
        return false;
    }
    let coincide = (rates[0].isolated - rates[0].fused).abs() < 1e-9;
    let fused_wins_late = rates[2..].iter().all(|r| r.fused <= r.isolated + 0.01);
    let declines = rates.last().expect("non-empty").fused < rates[0].fused;
    coincide && fused_wins_late && declines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::StepRates;

    #[test]
    fn paper_rows_cover_all_approaches_in_order() {
        for (row, approach) in PAPER_TABLE1.iter().zip(Approach::ALL) {
            assert_eq!(row.approach, approach);
        }
    }

    #[test]
    fn paper_identity_brier_consistency() {
        // Murphy identity: brier ≈ unspecificity + unreliability (since
        // unspecificity = variance − resolution). Transcription check.
        for row in PAPER_TABLE1 {
            let reconstructed = row.unspecificity + row.unreliability;
            assert!(
                (row.brier - reconstructed).abs() < 0.002,
                "{}: {} vs {}",
                row.approach,
                row.brier,
                reconstructed
            );
        }
    }

    #[test]
    fn tauw_wins_every_metric_in_the_paper() {
        let tauw = PAPER_TABLE1[5];
        for row in &PAPER_TABLE1[..5] {
            assert!(tauw.brier < row.brier);
            assert!(tauw.unspecificity <= row.unspecificity);
        }
    }

    #[test]
    fn fig4_shape_accepts_paper_like_curves() {
        let rates: Vec<StepRates> = (0..10)
            .map(|i| {
                let isolated = 0.105 - 0.004 * i as f64;
                let fused = if i < 2 { isolated } else { isolated - 0.02 };
                StepRates {
                    timestep: i + 1,
                    isolated,
                    fused,
                    n: 1000,
                }
            })
            .collect();
        assert!(fig4_shape_holds(&rates));
    }

    #[test]
    fn fig4_shape_rejects_flat_or_inverted_curves() {
        let flat: Vec<StepRates> = (0..10)
            .map(|i| StepRates {
                timestep: i + 1,
                isolated: 0.05,
                fused: 0.08,
                n: 1000,
            })
            .collect();
        assert!(!fig4_shape_holds(&flat));
        assert!(!fig4_shape_holds(&[]));
    }
}
