//! Conversion from the simulator's series records to the wrapper
//! framework's training representation. The only information that crosses
//! this boundary is what a real deployment would have: sensor readouts
//! (quality factors), DDM outcomes, and — for training data — ground truth.

use tauw_core::training::{TrainingSeries, TrainingStep};
use tauw_sim::SeriesRecord;

/// Converts simulator series into wrapper training series.
pub fn to_training_series(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records.iter().map(to_one).collect()
}

/// Converts one simulator series.
pub fn to_one(record: &SeriesRecord) -> TrainingSeries {
    TrainingSeries {
        true_outcome: u32::from(record.true_class.id()),
        steps: record
            .frames
            .iter()
            .map(|f| TrainingStep {
                quality_factors: f.observation.feature_vector().to_vec(),
                outcome: u32::from(f.outcome.id()),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauw_sim::{DatasetBuilder, SimConfig};

    #[test]
    fn conversion_preserves_structure_and_labels() {
        let data = DatasetBuilder::new(SimConfig::scaled(0.01), 3)
            .unwrap()
            .build();
        let converted = to_training_series(&data.test);
        assert_eq!(converted.len(), data.test.len());
        for (orig, conv) in data.test.iter().zip(&converted) {
            assert_eq!(conv.steps.len(), orig.len());
            assert_eq!(conv.true_outcome, u32::from(orig.true_class.id()));
            for (frame, step) in orig.frames.iter().zip(&conv.steps) {
                assert_eq!(step.outcome, u32::from(frame.outcome.id()));
                assert_eq!(step.quality_factors.len(), tauw_sim::N_QUALITY_FACTORS);
                // Failure flags agree between the two representations.
                assert_eq!(step.outcome != conv.true_outcome, !frame.correct);
            }
        }
    }
}
