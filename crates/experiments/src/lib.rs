//! # tauw-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! taUW paper on the synthetic substrate:
//!
//! | binary            | paper artifact | what it reports |
//! |-------------------|----------------|-----------------|
//! | `fig4`            | Fig. 4         | misclassification per timestep, isolated vs information fusion |
//! | `fig5`            | Fig. 5         | distribution of dependable uncertainty, stateless UW vs taUW+IF |
//! | `table1`          | Table I        | Brier score + variance/unspecificity/unreliability/overconfidence for six approaches |
//! | `fig6`            | Fig. 6         | calibration plot (10% certainty quantiles vs observed correctness) |
//! | `fig7`            | Fig. 7         | Brier score for all 16 taQF subsets, grouped by subset size |
//! | `bounds_ablation` | §5 ablation    | bound method × min-leaf-count sweep |
//! | `sensitivity`     | §5 robustness  | Table I ordering under varied error-correlation strength |
//! | `window_sweep`    | future work    | fusion + taUW quality vs series length (paper: "no saturation") |
//! | `extended_taqf`   | future work    | candidate features beyond taQF1-4 (paper RQ3 closing question) |
//! | `if_ablation`     | §2 related wk  | majority vs weighted vs windowed vs latest-only fusion |
//! | `forest_ablation` | related wk     | single-tree taQIM vs boundary-smoothed bootstrap forests (K=4, K=16): Brier, AUC, estimate granularity |
//! | `conformal_head_to_head` | related wk | split-conformal backend vs tree and forest16: Brier, AUC, distinct levels, empirical coverage vs nominal |
//! | `drift_adaptation`| future work    | mid-stream regime switch: adaptive coverage-tracked bounds vs the paper's frozen bounds |
//! | `scenario_dropout` | scenario wall | sensor dropout + multi-rate sensing: ranking degrades, outcomes untouched, stale beats dead sensors |
//! | `scenario_regime_switch` | scenario wall | regime-switch family: frozen bounds undercover, adaptive bounds close the gap, drift signals concentrate |
//! | `scenario_heavy_tails` | scenario wall | heavy-tailed bursts: conformal coverage stays ≥ nominal when calibration sees the same tails |
//! | `scenario_multi_source` | scenario wall | correlated multi-source evidence: independent sources help fusion, correlation erodes the gain |
//! | `run_all`         | —              | everything above in one run |
//!
//! All binaries accept `--scale <f>` (default 1.0 = paper-sized),
//! `--seed <n>` (default [`DEFAULT_SEED`]) and `--out <dir>` (default
//! `results/`). Runs are bit-deterministic for a given seed and scale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod context;
pub mod convert;
pub mod eval;
pub mod paper;
pub mod report;

pub use context::ExperimentContext;
pub use eval::{Approach, CaseRecord, TestEvaluation};

/// Master seed used by all experiment binaries unless overridden.
pub const DEFAULT_SEED: u64 = 20230627; // the VERDI workshop date

/// Every experiment binary in `src/bin` except `run_all` itself, in
/// `run_all` execution order. `run_all` consumes this list, and a lib
/// test asserts it covers every `src/bin/*.rs` source file — so a new
/// binary cannot be silently skipped by the one-stop entry point.
pub const BINARIES: [&str; 17] = [
    "fig4",
    "fig5",
    "table1",
    "fig6",
    "fig7",
    "bounds_ablation",
    "sensitivity",
    "window_sweep",
    "extended_taqf",
    "if_ablation",
    "forest_ablation",
    "conformal_head_to_head",
    "drift_adaptation",
    "scenario_dropout",
    "scenario_regime_switch",
    "scenario_heavy_tails",
    "scenario_multi_source",
];

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// World scale: 1.0 = paper-sized (1307 series, 28 augmentations).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Output directory for result files.
    pub out_dir: String,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: 1.0,
            seed: DEFAULT_SEED,
            out_dir: "results".to_string(),
        }
    }
}

impl CliOptions {
    /// Parses `--scale`, `--seed` and `--out` from an argument iterator
    /// (unknown arguments are an error; the binary name must already be
    /// consumed).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed arguments.
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Result<Self, String> {
        let mut opts = CliOptions::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().ok_or("--scale needs a value")?;
                    opts.scale = v.parse().map_err(|_| format!("bad --scale value: {v}"))?;
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
                }
                "--out" => {
                    opts.out_dir = args.next().ok_or("--out needs a value")?;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        if !(opts.scale > 0.0 && opts.scale <= 1.0) {
            return Err(format!("--scale must be in (0, 1], got {}", opts.scale));
        }
        Ok(opts)
    }

    /// Parses from the process arguments, exiting with a usage message on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("usage: <bin> [--scale f] [--seed n] [--out dir]");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn binary_map_covers_every_bin_source() {
        let bin_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
        let mut stems: Vec<String> = std::fs::read_dir(&bin_dir)
            .expect("src/bin exists")
            .map(|entry| entry.expect("readable entry").path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "rs"))
            .map(|path| {
                path.file_stem()
                    .expect("file stem")
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        stems.sort();
        let doc = include_str!("lib.rs");
        for stem in &stems {
            if stem != "run_all" {
                assert!(
                    BINARIES.contains(&stem.as_str()),
                    "src/bin/{stem}.rs is not registered in BINARIES — run_all would skip it"
                );
            }
            assert!(
                doc.contains(&format!("`{stem}`")),
                "the lib doc binary table does not mention `{stem}`"
            );
        }
        assert_eq!(
            BINARIES.len(),
            stems.len() - 1, // run_all is the driver, not an entry
            "BINARIES lists a binary without a src/bin source"
        );
        let unique: std::collections::HashSet<&&str> = BINARIES.iter().collect();
        assert_eq!(unique.len(), BINARIES.len(), "duplicate entry in BINARIES");
    }

    #[test]
    fn defaults_are_paper_sized() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.scale, 1.0);
        assert_eq!(opts.seed, DEFAULT_SEED);
        assert_eq!(opts.out_dir, "results");
    }

    #[test]
    fn all_flags_parse() {
        let opts = parse(&["--scale", "0.1", "--seed", "7", "--out", "/tmp/x"]).unwrap();
        assert_eq!(opts.scale, 0.1);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.out_dir, "/tmp/x");
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }
}
