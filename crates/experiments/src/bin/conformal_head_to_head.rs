//! Distribution-free head-to-head: the split-conformal taQIM against the
//! paper's single tree and a K = 16 boundary-smoothed forest.
//!
//! All three variants share the same stateless wrapper, replay rows and
//! session/engine wave path — they differ *only* in the backend behind the
//! `QimBackend` seam. The conformal backend promises one-sided
//! distribution-free coverage: with confidence 1 − α, the served bound
//! covers the realized failure indicator (`y ≤ bound`) on exchangeable
//! data, with no assumption on the quality-factor distribution. The tree
//! backends promise per-leaf Clopper–Pearson bounds on the failure *rate*
//! instead, so the indicator-coverage column is only shape-checked against
//! its nominal level on the conformal row. Reported per variant: Brier
//! score (and its unreliability term), AUC, distinct uncertainty levels
//! with the median gap, mean served bound, and empirical indicator
//! coverage on the held-out test windows.

use tauw_core::conformal::ConformalOptions;
use tauw_experiments::eval::evaluate;
use tauw_experiments::report::{emit, fmt_prob, section, TextTable};
use tauw_experiments::{Approach, CliOptions, ExperimentContext};
use tauw_stats::roc::auc;

/// The conformal miscoverage level α: confidence 0.9 gives the backend a
/// comfortable calibration-split budget at every world scale (rank
/// ⌈(n+1)·0.9⌉ is attainable from n = 9 samples up).
const CONFORMAL_CONFIDENCE: f64 = 0.9;

/// Distinct estimate levels (tolerance 1e-12) and the median gap between
/// adjacent levels, as in the forest ablation.
fn level_profile(mut values: Vec<f64>) -> (usize, f64) {
    values.sort_by(f64::total_cmp);
    values.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
    let mut gaps: Vec<f64> = values.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_by(f64::total_cmp);
    let median_gap = if gaps.is_empty() {
        0.0
    } else {
        gaps[gaps.len() / 2]
    };
    (values.len(), median_gap)
}

/// Fraction of test cases whose one-sided bound covers the realized
/// failure indicator: `y ≤ bound`, i.e. non-failures are always covered
/// and failures only by a (numerically) vacuous bound.
fn indicator_coverage(forecasts: &[f64], failures: &[bool]) -> f64 {
    let covered = forecasts
        .iter()
        .zip(failures)
        .filter(|(&bound, &failed)| !failed || bound >= 1.0 - 1e-12)
        .count();
    covered as f64 / forecasts.len().max(1) as f64
}

struct VariantResult {
    name: String,
    /// Nominal indicator-coverage level, if the variant promises one.
    nominal: Option<f64>,
    levels: usize,
    median_gap: f64,
    brier: f64,
    unreliability: f64,
    auc: f64,
    mean_bound: f64,
    coverage: f64,
}

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");

    let conformal_tauw = ctx
        .tauw_conformal_variant(ConformalOptions::default(), CONFORMAL_CONFIDENCE)
        .expect("conformal variant builds");
    let forest_tauw = ctx
        .tauw_forest_variant(16, opts.seed ^ 16)
        .expect("forest variant builds");
    let variants: [(&str, &_, Option<f64>); 3] = [
        ("single tree (paper)", &ctx.tauw, None),
        ("forest K=16", &forest_tauw, None),
        (
            "split conformal",
            &conformal_tauw,
            Some(CONFORMAL_CONFIDENCE),
        ),
    ];

    let mut results: Vec<VariantResult> = Vec::new();
    for (name, tauw, nominal) in variants {
        let eval = evaluate(tauw, &ctx.test).expect("evaluation runs");
        let (forecasts, failures) = eval.forecasts(Approach::IfTauw);
        let decomposition = eval
            .decomposition(Approach::IfTauw)
            .expect("decomposition computes");
        let ranking = auc(&forecasts, &failures).expect("both outcome classes present");
        let coverage = indicator_coverage(&forecasts, &failures);
        let mean_bound = forecasts.iter().sum::<f64>() / forecasts.len().max(1) as f64;
        let (levels, median_gap) = level_profile(forecasts);
        results.push(VariantResult {
            name: name.to_string(),
            nominal,
            levels,
            median_gap,
            brier: decomposition.brier,
            unreliability: decomposition.unreliability,
            auc: ranking,
            mean_bound,
            coverage,
        });
    }

    let mut out = String::new();
    out.push_str(&section(
        "split-conformal taQIM vs tree and forest backends (IF + taUW rows)",
    ));
    let mut table = TextTable::new(vec![
        "taQIM backend",
        "u levels",
        "median level gap",
        "Brier",
        "unreliability",
        "AUC",
        "mean bound",
        "coverage",
        "nominal",
    ]);
    for r in &results {
        table.row(vec![
            r.name.clone(),
            r.levels.to_string(),
            fmt_prob(r.median_gap),
            fmt_prob(r.brier),
            fmt_prob(r.unreliability),
            format!("{:.4}", r.auc),
            fmt_prob(r.mean_bound),
            format!("{:.4}", r.coverage),
            r.nominal.map_or_else(|| "—".to_string(), fmt_prob),
        ]);
    }
    out.push_str(&table.render());

    let tree = &results[0];
    let forest = &results[1];
    let conformal = &results[2];
    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    let mut check = |label: &str, holds: bool| {
        checks.row(vec![
            label.to_string(),
            if holds { "HOLDS" } else { "VIOLATED" }.to_string(),
        ]);
    };
    check(
        "conformal empirical coverage meets its nominal level (>= 1 - alpha)",
        conformal.coverage >= conformal.nominal.expect("conformal row carries a nominal"),
    );
    check(
        "conformal bound is informative, not vacuous (mean bound < 1)",
        conformal.mean_bound < 1.0 - 1e-9,
    );
    check(
        "conformal emits multiple distinct uncertainty levels",
        conformal.levels > 1,
    );
    check(
        "conformal ranking is informative (AUC > 0.5)",
        conformal.auc > 0.5,
    );
    check(
        "conformal granularity at least matches the tree backends",
        conformal.levels >= tree.levels && conformal.levels >= forest.levels,
    );
    check(
        "distribution-free bounds stay competitive (Brier within 0.02 of the tree)",
        (conformal.brier - tree.brier).abs() < 0.02,
    );
    out.push_str(&checks.render());

    emit(&opts.out_dir, "conformal_head_to_head.txt", &out).expect("write results");
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauw_experiments::DEFAULT_SEED;

    #[test]
    fn conformal_coverage_meets_nominal_on_held_out_windows() {
        // The acceptance bar of the head-to-head: on the held-out test
        // split, the conformal backend's empirical indicator coverage must
        // reach its nominal 1 − α — the distribution-free guarantee,
        // exercised through the same engine wave path the binary reports.
        let ctx = ExperimentContext::build(0.05, DEFAULT_SEED).unwrap();
        let tauw = ctx
            .tauw_conformal_variant(ConformalOptions::default(), CONFORMAL_CONFIDENCE)
            .unwrap();
        let eval = evaluate(&tauw, &ctx.test).unwrap();
        let (forecasts, failures) = eval.forecasts(Approach::IfTauw);
        let coverage = indicator_coverage(&forecasts, &failures);
        assert!(
            coverage >= CONFORMAL_CONFIDENCE,
            "empirical coverage {coverage} below nominal {CONFORMAL_CONFIDENCE}"
        );
        // And the bound is informative, not the vacuous all-ones answer.
        let mean = forecasts.iter().sum::<f64>() / forecasts.len() as f64;
        assert!(mean < 1.0 - 1e-9, "mean served bound {mean} is vacuous");
    }

    #[test]
    fn level_profile_counts_distinct_levels() {
        let (levels, gap) = level_profile(vec![0.25, 0.25, 0.5, 1.0]);
        assert_eq!(levels, 3);
        assert!(gap > 0.0);
        assert_eq!(level_profile(vec![0.4]), (1, 0.0));
    }

    #[test]
    fn indicator_coverage_counts_only_uncovered_failures() {
        let forecasts = [0.2, 1.0, 0.3, 0.9];
        let failures = [false, true, true, false];
        // Case 2 fails under a non-vacuous bound; everything else covers.
        assert_eq!(indicator_coverage(&forecasts, &failures), 0.75);
        assert_eq!(indicator_coverage(&[], &[]), 0.0);
    }
}
