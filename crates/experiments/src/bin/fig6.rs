//! Regenerates **Fig. 6**: the calibration plot. Quantiles of predicted
//! certainty (1 − uncertainty) are plotted against observed correctness in
//! 10% steps for the naïve, worst-case, opportune and taUW models.

use tauw_experiments::eval::{evaluate, Approach};
use tauw_experiments::report::{emit, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_stats::calibration::spiegelhalter_z;

const CURVE_APPROACHES: [Approach; 4] = [
    Approach::IfNaive,
    Approach::IfWorstCase,
    Approach::IfOpportune,
    Approach::IfTauw,
];

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");
    let eval = evaluate(&ctx.tauw, &ctx.test).expect("evaluation must succeed");

    let mut out = String::new();
    out.push_str(&section(
        "Fig. 6 — calibration plot (predicted certainty quantiles vs observed correctness)",
    ));
    out.push_str(
        "gap = observed correctness - predicted certainty;\n\
         negative gap = overconfident, positive gap = underconfident\n\n",
    );

    let mut summary = TextTable::new(vec![
        "model",
        "mean signed gap",
        "ECE",
        "MCE",
        "certainty range",
        "overconfident bins",
        "Spiegelhalter Z",
    ]);
    for approach in CURVE_APPROACHES {
        let curve = eval.calibration_curve(approach, 10).expect("curve");
        out.push_str(&format!("{}:\n", approach.paper_label()));
        let mut table = TextTable::new(vec![
            "quantile",
            "predicted certainty",
            "observed correctness",
            "gap",
        ]);
        for (i, p) in curve.points.iter().enumerate() {
            table.row(vec![
                format!("{}%", (i + 1) * 10),
                format!("{:.4}", p.predicted_certainty),
                format!("{:.4}", p.observed_correctness),
                format!("{:+.4}", p.gap()),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
        let (forecasts, failures) = eval.forecasts(approach);
        let z = spiegelhalter_z(&forecasts, &failures)
            .map(|z| format!("{z:+.1}"))
            .unwrap_or_else(|_| "n/a".to_string());
        summary.row(vec![
            approach.paper_label().to_string(),
            format!("{:+.5}", curve.mean_signed_gap()),
            format!("{:.5}", curve.ece()),
            format!("{:.5}", curve.mce()),
            format!("{:.4}", curve.certainty_range()),
            format!(
                "{}/{}",
                curve.points.iter().filter(|p| p.gap() < -0.002).count(),
                curve.points.len()
            ),
            z,
        ]);
    }

    out.push_str(&section("summary"));
    out.push_str(&summary.render());

    out.push_str(&section("shape checks"));
    let naive = eval
        .calibration_curve(Approach::IfNaive, 10)
        .expect("curve");
    let worst = eval
        .calibration_curve(Approach::IfWorstCase, 10)
        .expect("curve");
    let opportune = eval
        .calibration_curve(Approach::IfOpportune, 10)
        .expect("curve");
    let tauw = eval.calibration_curve(Approach::IfTauw, 10).expect("curve");
    let mut checks = TextTable::new(vec!["check", "status"]);
    checks.row(vec![
        "naive UF is overconfident (negative mean gap)".to_string(),
        if naive.mean_signed_gap() < 0.0 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "worst-case UF is the most conservative (largest positive mean gap)".to_string(),
        if worst.mean_signed_gap() >= naive.mean_signed_gap()
            && worst.mean_signed_gap() >= opportune.mean_signed_gap()
            && worst.mean_signed_gap() >= tauw.mean_signed_gap()
        {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "taUW is better calibrated than naive and worst-case (lower ECE)".to_string(),
        if tauw.ece() < naive.ece() && tauw.ece() < worst.ece() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "taUW has the largest range of predicted certainties".to_string(),
        if CURVE_APPROACHES.iter().all(|&a| {
            eval.calibration_curve(a, 10)
                .expect("curve")
                .certainty_range()
                <= tauw.certainty_range() + 1e-12
        }) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    out.push_str(&checks.render());

    emit(&opts.out_dir, "fig6.txt", &out).expect("write results");
}
