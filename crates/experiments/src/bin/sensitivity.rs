//! Sensitivity study: verifies that the Table I *ordering* (taUW best;
//! naive most overconfident; worst-case most conservative) is a property
//! of the method, not an artifact of one simulator tuning, by sweeping the
//! within-series error-correlation strength.

use tauw_experiments::eval::{evaluate, Approach};
use tauw_experiments::report::{emit, fmt_pct, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_sim::SimConfig;

fn main() {
    let opts = CliOptions::from_env();

    let mut out = String::new();
    out.push_str(&section(
        "sensitivity: Table I ordering vs within-series error correlation",
    ));
    let mut table = TextTable::new(vec![
        "copula phi",
        "series sigma",
        "ddm miscls",
        "fused miscls",
        "tauw best brier",
        "naive most overconf",
        "worst most unreliable",
    ]);

    for (phi, sigma) in [(0.0, 0.3), (0.4, 0.7), (0.72, 1.05), (0.9, 1.4)] {
        let mut config = if opts.scale >= 1.0 {
            SimConfig::default()
        } else {
            SimConfig::scaled(opts.scale)
        };
        config.ddm_error_copula_phi = phi;
        config.ddm_series_sigma = sigma;
        let ctx = ExperimentContext::build_with_config(config, opts.seed).expect("context builds");
        let eval = evaluate(&ctx.tauw, &ctx.test).expect("evaluation");

        let d = |a: Approach| eval.decomposition(a).expect("decomposition");
        let tauw = d(Approach::IfTauw);
        let naive = d(Approach::IfNaive);
        let worst = d(Approach::IfWorstCase);
        let tauw_best = Approach::ALL
            .iter()
            .all(|&a| tauw.brier <= d(a).brier + 1e-12);
        let naive_overconf = Approach::ALL
            .iter()
            .all(|&a| naive.overconfidence >= d(a).overconfidence - 1e-12);
        let worst_unreliable = Approach::ALL
            .iter()
            .all(|&a| worst.unreliability >= d(a).unreliability - 1e-12);
        table.row(vec![
            format!("{phi:.2}"),
            format!("{sigma:.2}"),
            fmt_pct(eval.isolated_misclassification()),
            fmt_pct(eval.fused_misclassification()),
            (if tauw_best { "HOLDS" } else { "violated" }).to_string(),
            (if naive_overconf { "HOLDS" } else { "violated" }).to_string(),
            (if worst_unreliable {
                "HOLDS"
            } else {
                "violated"
            })
            .to_string(),
        ]);
        out.push_str(&format!(
            "phi={phi:.2}: naive overconfidence {} vs taUW {}\n",
            fmt_prob(naive.overconfidence),
            fmt_prob(tauw.overconfidence)
        ));
    }
    out.push('\n');
    out.push_str(&table.render());
    out.push_str(
        "\nexpectation: with phi = 0 (independent errors) the naive product is close to\n\
         valid, so its overconfidence advantage shrinks; as correlation grows, naive\n\
         becomes severely overconfident while the taUW ordering is stable. At extreme\n\
         correlation (phi = 0.9) naive unreliability can overtake even the worst-case\n\
         rule's, so the 'worst-case most unreliable' column may read 'violated' there —\n\
         that is the naive rule degrading, not the taUW result changing.\n",
    );

    emit(&opts.out_dir, "sensitivity.txt", &out).expect("write results");
}
