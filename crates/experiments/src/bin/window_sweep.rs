//! Future-work experiment from the paper's RQ1 discussion: "Even after ten
//! images, the improvement in accuracy does not appear to reach saturation.
//! Thus, with longer timeseries, an even better result could be achieved."
//!
//! Sweeps the subsampled window length and reports how information fusion
//! and the taUW's uncertainty quality scale with series length.

use tauw_experiments::eval::{evaluate, Approach};
use tauw_experiments::report::{emit, fmt_pct, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_sim::SimConfig;

fn main() {
    let opts = CliOptions::from_env();

    let mut out = String::new();
    out.push_str(&section("window-length sweep (paper: length 10 only)"));
    let mut table = TextTable::new(vec![
        "window",
        "isolated miscls",
        "fused miscls",
        "fused @ last step",
        "taUW brier",
        "taUW min u",
    ]);

    let mut final_step_rates = Vec::new();
    for window_len in [5usize, 10, 15, 20] {
        let mut config = if opts.scale >= 1.0 {
            SimConfig::default()
        } else {
            SimConfig::scaled(opts.scale)
        };
        config.window_len = window_len;
        let ctx = ExperimentContext::build_with_config(config, opts.seed).expect("context builds");
        let eval = evaluate(&ctx.tauw, &ctx.test).expect("evaluation");
        let rates = eval.misclassification_by_step();
        let last = rates.last().expect("non-empty");
        let tauw = eval.decomposition(Approach::IfTauw).expect("decomposition");
        final_step_rates.push(last.fused);
        table.row(vec![
            window_len.to_string(),
            fmt_pct(eval.isolated_misclassification()),
            fmt_pct(eval.fused_misclassification()),
            fmt_pct(last.fused),
            fmt_prob(tauw.brier),
            fmt_prob(ctx.tauw.min_uncertainty()),
        ]);
    }
    out.push_str(&table.render());

    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    let monotone = final_step_rates.windows(2).all(|w| w[1] <= w[0] + 0.004);
    checks.row(vec![
        "fused misclassification at the final step keeps falling with longer windows".to_string(),
        if monotone { "HOLDS" } else { "VIOLATED" }.to_string(),
    ]);
    checks.row(vec![
        "no saturation: window 20 beats window 10 at the final step".to_string(),
        if final_step_rates[3] < final_step_rates[1] {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    out.push_str(&checks.render());
    out.push_str(
        "\nnote: longer windows start earlier in the approach (the full series has 30\n\
         frames), so their *average* step is further from the sign; the informative\n\
         comparison is the final-step rate, where all evidence has accumulated.\n",
    );

    emit(&opts.out_dir, "window_sweep.txt", &out).expect("write results");
}
