//! Scenario family: correlated multi-source evidence streams.
//!
//! Every test frame is replicated into three interleaved evidence
//! sources (in the spirit of the Time Evidence Fusion Network): source 0
//! is the original DDM output, secondary sources carry independently
//! noised observations and outcomes correlated with the primary through
//! a single `correlation` parameter. The fusion layer's majority vote is
//! the component under stress:
//!
//! 1. structurally, the family triples every series;
//! 2. near-independent sources help — the end-of-series fused
//!    misclassification drops below the single-source baseline, because
//!    systematic within-series error runs get diluted by fresh evidence;
//! 3. correlation erodes that gain — highly correlated sources are
//!    mostly replicas, so their end-of-series error stays above the
//!    near-independent case;
//! 4. fusion still beats isolated per-frame outcomes inside the
//!    multi-source world.
//!
//! The binary exits non-zero if any shape check is VIOLATED.

use tauw_core::training::TrainingSeries;
use tauw_experiments::eval::{evaluate, TestEvaluation};
use tauw_experiments::report::{emit, fmt_pct, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_sim::scenario::{MultiSourceParams, ScenarioFamily};

/// End-of-series fused misclassification: the fraction of series whose
/// *final* fused outcome is wrong — the decision a deployment would act
/// on after seeing all the evidence.
fn final_step_error(test: &[TrainingSeries], eval: &TestEvaluation) -> f64 {
    let mut idx = 0usize;
    let mut wrong = 0usize;
    for series in test {
        idx += series.steps.len();
        if eval.cases[idx - 1].fused_failed {
            wrong += 1;
        }
    }
    wrong as f64 / test.len().max(1) as f64
}

struct Row {
    name: String,
    series_len: usize,
    final_err: f64,
    fused_err: f64,
    isolated_err: f64,
}

fn assess(name: &str, ctx: &ExperimentContext, test: &[TrainingSeries]) -> Row {
    let eval = evaluate(&ctx.tauw, test).expect("evaluation runs");
    Row {
        name: name.to_string(),
        series_len: test.first().map_or(0, |s| s.steps.len()),
        final_err: final_step_error(test, &eval),
        fused_err: eval.fused_misclassification(),
        isolated_err: eval.isolated_misclassification(),
    }
}

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");

    let multi_source = |correlation: f64| {
        ScenarioFamily::MultiSource(MultiSourceParams {
            correlation,
            ..Default::default()
        })
    };
    let low_corr_test = ctx
        .scenario_test(multi_source(0.15))
        .expect("scenario test builds");
    let high_corr_test = ctx
        .scenario_test(multi_source(0.9))
        .expect("scenario test builds");

    let rows = [
        assess("single source (baseline)", &ctx, &ctx.test),
        assess("3 sources, correlation 0.15", &ctx, &low_corr_test),
        assess("3 sources, correlation 0.90", &ctx, &high_corr_test),
    ];

    let mut out = String::new();
    out.push_str(&section(
        "scenario: correlated multi-source evidence (majority-vote fusion)",
    ));
    out.push_str(
        "secondary sources disagree with a correct primary with p=0.1 when\n\
         uncorrelated, and are coin-flip informative on primary errors —\n\
         so independent sources dilute the DDM's systematic error runs,\n\
         while correlated sources just replicate them.\n\n",
    );
    let mut table = TextTable::new(vec![
        "evidence",
        "series length",
        "final-step error",
        "fused error (all steps)",
        "isolated error (all steps)",
    ]);
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            r.series_len.to_string(),
            fmt_pct(r.final_err),
            fmt_pct(r.fused_err),
            fmt_pct(r.isolated_err),
        ]);
    }
    out.push_str(&table.render());

    let (baseline, low, high) = (&rows[0], &rows[1], &rows[2]);
    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    let mut violations = 0usize;
    let mut check = |label: &str, holds: bool| {
        if !holds {
            violations += 1;
        }
        checks.row(vec![
            label.to_string(),
            if holds { "HOLDS" } else { "VIOLATED" }.to_string(),
        ]);
    };
    check(
        "multi-source series carry 3x the evidence (structural)",
        low.series_len == baseline.series_len * 3 && high.series_len == baseline.series_len * 3,
    );
    check(
        "near-independent sources beat the single-source baseline (final step)",
        low.final_err < baseline.final_err,
    );
    check(
        "correlation erodes the fusion gain (low-corr <= high-corr final error)",
        low.final_err <= high.final_err,
    );
    check(
        "fusion beats isolated outcomes inside the multi-source world",
        low.fused_err <= low.isolated_err,
    );
    out.push_str(&checks.render());

    emit(&opts.out_dir, "scenario_multi_source.txt", &out).expect("write results");
    if violations > 0 {
        eprintln!("scenario_multi_source: {violations} shape check(s) VIOLATED");
        std::process::exit(1);
    }
}
