//! Regenerates **Fig. 7**: the feature-importance study. For every subset
//! of the four timeseries-aware quality factors a taQIM is trained,
//! calibrated and evaluated; the Brier scores are reported grouped by
//! subset size.

use tauw_core::taqf::TaqfSet;
use tauw_experiments::eval::{evaluate, Approach};
use tauw_experiments::report::{emit, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");

    let mut out = String::new();
    out.push_str(&section("Fig. 7 — Brier score per taQF subset"));

    let mut results: Vec<(TaqfSet, f64)> = Vec::new();
    for set in TaqfSet::all_subsets() {
        let variant = ctx.tauw_variant(set).expect("variant fits");
        let eval = evaluate(&variant, &ctx.test).expect("evaluation");
        let d = eval.decomposition(Approach::IfTauw).expect("decomposition");
        results.push((set, d.brier));
    }

    let mut table = TextTable::new(vec!["#features", "subset", "brier"]);
    for size in 0..=4usize {
        for (set, brier) in results.iter().filter(|(s, _)| s.len() == size) {
            table.row(vec![size.to_string(), set.label(), fmt_prob(*brier)]);
        }
    }
    out.push_str(&table.render());

    // Named lookups for the shape checks.
    let brier_of = |set: TaqfSet| {
        results
            .iter()
            .find(|(s, _)| *s == set)
            .map(|(_, b)| *b)
            .expect("all subsets evaluated")
    };
    use tauw_core::taqf::TaqfKind::*;
    let empty = brier_of(TaqfSet::EMPTY);
    let full = brier_of(TaqfSet::FULL);
    let ratio = brier_of(TaqfSet::from_kinds(&[Ratio]));
    let length = brier_of(TaqfSet::from_kinds(&[Length]));
    let size_f = brier_of(TaqfSet::from_kinds(&[UniqueOutcomes]));
    let certainty = brier_of(TaqfSet::from_kinds(&[CumulativeCertainty]));
    let ratio_certainty = brier_of(TaqfSet::from_kinds(&[Ratio, CumulativeCertainty]));
    let best = results
        .iter()
        .map(|(_, b)| *b)
        .fold(f64::INFINITY, f64::min);

    out.push_str(&section("single-feature ranking"));
    let mut singles = TextTable::new(vec!["feature", "brier", "improvement vs no taQF"]);
    let mut single_list = vec![
        ("ratio", ratio),
        ("length", length),
        ("size", size_f),
        ("certainty", certainty),
    ];
    single_list.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, b) in &single_list {
        singles.row(vec![
            name.to_string(),
            fmt_prob(*b),
            format!("{:+.4}", empty - b),
        ]);
    }
    out.push_str(&singles.render());

    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    checks.row(vec![
        "using taQFs improves the Brier score over the stateless feature set".to_string(),
        if full < empty { "HOLDS" } else { "VIOLATED" }.to_string(),
    ]);
    checks.row(vec![
        "ratio is the strongest single feature".to_string(),
        if single_list[0].0 == "ratio" {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "size is the second-best single feature (paper Sec. V RQ3)".to_string(),
        if single_list[1].0 == "size" {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "certainty has predictive power on its own".to_string(),
        if certainty < empty - 1e-4 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    let best_length_pair = results
        .iter()
        .filter(|(s, _)| s.len() == 2 && s.contains(Length))
        .map(|(_, b)| *b)
        .fold(f64::INFINITY, f64::min);
    checks.row(vec![
        "length combined with one other feature does improve".to_string(),
        if best_length_pair < length - 1e-4 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "{ratio, certainty} already achieves (near-)optimal Brier".to_string(),
        if ratio_certainty <= best + 0.002 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "length alone yields no improvement".to_string(),
        if length >= empty - 0.002 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "the full set is not better than the best pair (redundancy)".to_string(),
        if full >= best - 0.002 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    out.push_str(&checks.render());

    out.push_str(
        "\npaper reference: best Brier 0.0356 reached already by {ratio, certainty};\n\
         length alone gives no improvement; size is the second-best single feature.\n",
    );

    emit(&opts.out_dir, "fig7.txt", &out).expect("write results");
}
