//! Boundary-smoothing ablation: the paper's single-tree taQIM against
//! calibrated bootstrap forests of K = 4 and K = 16 members.
//!
//! A single decision tree's uncertainty estimate jumps discontinuously at
//! its split thresholds — the *hard boundary* problem Gerber, Jöckel &
//! Kläs study ("A Study on Mitigating Hard Boundaries of
//! Decision-Tree-based Uncertainty Estimates for AI Models"), where
//! ensembles smooth the estimate. This experiment quantifies that effect
//! on the synthetic substrate: every variant shares the same stateless
//! wrapper, replay rows and calibration procedure, so the only difference
//! is the taQIM estimator family. Reported per variant: Brier score (and
//! its unreliability term), AUC (pure failure ranking), the number of
//! distinct uncertainty levels the estimator emits, and the median jump
//! between adjacent levels — the granularity measures a hard boundary
//! shows up in.

use tauw_experiments::eval::evaluate;
use tauw_experiments::report::{emit, fmt_prob, section, TextTable};
use tauw_experiments::{Approach, CliOptions, ExperimentContext};
use tauw_stats::roc::auc;

/// Distinct estimate levels (tolerance 1e-12) and the median gap between
/// adjacent levels — a coarse estimator has few levels with large typical
/// steps. (The *widest* gap is not a smoothness measure: an ensemble mean
/// legitimately keeps one large jump where every member agrees.)
fn level_profile(mut values: Vec<f64>) -> (usize, f64) {
    values.sort_by(f64::total_cmp);
    values.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
    let mut gaps: Vec<f64> = values.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_by(f64::total_cmp);
    let median_gap = if gaps.is_empty() {
        0.0
    } else {
        gaps[gaps.len() / 2]
    };
    (values.len(), median_gap)
}

struct VariantResult {
    name: String,
    trees: usize,
    levels: usize,
    median_gap: f64,
    brier: f64,
    unreliability: f64,
    auc: f64,
}

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");

    let variants: [(&str, usize); 3] = [
        ("single tree (paper)", 1),
        ("forest K=4", 4),
        ("forest K=16", 16),
    ];

    let mut results: Vec<VariantResult> = Vec::new();
    for (name, k) in variants {
        // K = 1 is the paper's single-tree taQIM itself, not a one-member
        // bootstrap forest: the ablation pivots on the estimator family.
        let tauw = if k == 1 {
            ctx.tauw.clone()
        } else {
            ctx.tauw_forest_variant(k, opts.seed ^ (k as u64))
                .expect("forest variant builds")
        };
        let eval = evaluate(&tauw, &ctx.test).expect("evaluation runs");
        let (forecasts, failures) = eval.forecasts(Approach::IfTauw);
        let decomposition = eval
            .decomposition(Approach::IfTauw)
            .expect("decomposition computes");
        let ranking = auc(&forecasts, &failures).expect("both outcome classes present");
        let (levels, median_gap) = level_profile(forecasts);
        results.push(VariantResult {
            name: name.to_string(),
            trees: k,
            levels,
            median_gap,
            brier: decomposition.brier,
            unreliability: decomposition.unreliability,
            auc: ranking,
        });
    }

    let mut out = String::new();
    out.push_str(&section(
        "boundary-smoothed forest taQIM vs single tree (IF + taUW rows)",
    ));
    let mut table = TextTable::new(vec![
        "taQIM variant",
        "trees",
        "u levels",
        "median level gap",
        "Brier",
        "unreliability",
        "AUC",
    ]);
    for r in &results {
        table.row(vec![
            r.name.clone(),
            r.trees.to_string(),
            r.levels.to_string(),
            fmt_prob(r.median_gap),
            fmt_prob(r.brier),
            fmt_prob(r.unreliability),
            format!("{:.4}", r.auc),
        ]);
    }
    out.push_str(&table.render());

    let tree = &results[0];
    let forest4 = &results[1];
    let forest16 = &results[2];
    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    let mut check = |label: &str, holds: bool| {
        checks.row(vec![
            label.to_string(),
            if holds { "HOLDS" } else { "VIOLATED" }.to_string(),
        ]);
    };
    check(
        "forests emit more distinct uncertainty levels than the single tree",
        forest4.levels >= tree.levels && forest16.levels >= tree.levels,
    );
    check(
        "more members, finer granularity (K=16 levels >= K=4 levels)",
        forest16.levels >= forest4.levels,
    );
    check(
        "forests shrink the typical (median) jump between adjacent levels",
        forest16.median_gap <= forest4.median_gap + 1e-12
            && forest4.median_gap <= tree.median_gap + 1e-12,
    );
    check(
        "smoothing does not wreck ranking (forest AUC within 0.05 of the tree)",
        (forest4.auc - tree.auc).abs() < 0.05 && (forest16.auc - tree.auc).abs() < 0.05,
    );
    check(
        "smoothing does not wreck calibration (forest Brier within 0.02 of the tree)",
        (forest4.brier - tree.brier).abs() < 0.02 && (forest16.brier - tree.brier).abs() < 0.02,
    );
    out.push_str(&checks.render());

    emit(&opts.out_dir, "forest_ablation.txt", &out).expect("write results");
}
