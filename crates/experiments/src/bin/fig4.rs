//! Regenerates **Fig. 4**: misclassification rate over timesteps for
//! isolated predictions vs information fusion (majority voting).

use tauw_experiments::eval::evaluate;
use tauw_experiments::paper::{fig4_shape_holds, headline};
use tauw_experiments::report::{bar, emit, fmt_pct, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");
    let eval = evaluate(&ctx.tauw, &ctx.test).expect("evaluation must succeed");

    let mut out = String::new();
    out.push_str(&section("Fig. 4 — misclassification rate over timesteps"));
    let rates = eval.misclassification_by_step();
    let max_rate = rates
        .iter()
        .map(|r| r.isolated.max(r.fused))
        .fold(0.0, f64::max);
    let mut table = TextTable::new(vec![
        "timestep",
        "isolated",
        "fused (IF)",
        "n",
        "isolated bar",
        "fused bar",
    ]);
    for r in &rates {
        table.row(vec![
            r.timestep.to_string(),
            fmt_pct(r.isolated),
            fmt_pct(r.fused),
            r.n.to_string(),
            bar(r.isolated, max_rate, 30),
            bar(r.fused, max_rate, 30),
        ]);
    }
    out.push_str(&table.render());

    out.push_str(&section("paper vs measured"));
    let mut cmp = TextTable::new(vec!["quantity", "paper", "measured"]);
    cmp.row(vec![
        "DDM misclassification (all steps)".to_string(),
        fmt_pct(headline::DDM_MISCLASSIFICATION),
        fmt_pct(eval.isolated_misclassification()),
    ]);
    cmp.row(vec![
        "fused misclassification (all steps)".to_string(),
        fmt_pct(headline::FUSED_MISCLASSIFICATION),
        fmt_pct(eval.fused_misclassification()),
    ]);
    let step10 = rates.last().expect("non-empty rates");
    cmp.row(vec![
        format!("fused misclassification (step {})", step10.timestep),
        fmt_pct(headline::FUSED_MISCLASSIFICATION_STEP10),
        fmt_pct(step10.fused),
    ]);
    out.push_str(&cmp.render());

    out.push_str(&format!(
        "\nshape check (coincide at step 1, fused <= isolated from step 3, declining): {}\n",
        if fig4_shape_holds(&rates) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    ));

    emit(&opts.out_dir, "fig4.txt", &out).expect("write results");
}
