//! Regenerates **Table I**: Brier loss score and its components (variance,
//! unspecificity, unreliability) plus overconfidence for the six
//! uncertainty-estimation approaches.

use tauw_experiments::eval::{evaluate, Approach};
use tauw_experiments::paper::PAPER_TABLE1;
use tauw_experiments::report::{emit, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");
    let eval = evaluate(&ctx.tauw, &ctx.test).expect("evaluation must succeed");

    let mut out = String::new();
    out.push_str(&section(
        "Table I — evaluation of different uncertainty models (measured)",
    ));
    let mut table = TextTable::new(vec![
        "approach",
        "brier",
        "variance",
        "unspecificity",
        "unreliability",
        "overconfidence",
        "AUC",
    ]);
    let mut measured = Vec::new();
    for approach in Approach::ALL {
        let d = eval.decomposition(approach).expect("decomposition");
        let (forecasts, failures) = eval.forecasts(approach);
        let auc = tauw_stats::roc::auc(&forecasts, &failures)
            .map(|a| format!("{a:.3}"))
            .unwrap_or_else(|_| "n/a".to_string());
        table.row(vec![
            approach.paper_label().to_string(),
            fmt_prob(d.brier),
            fmt_prob(d.variance),
            fmt_prob(d.unspecificity),
            fmt_prob(d.unreliability),
            fmt_prob(d.overconfidence),
            auc,
        ]);
        measured.push((approach, d));
    }
    out.push_str(&table.render());

    out.push_str(&section("Table I — paper reference values"));
    let mut paper = TextTable::new(vec![
        "approach",
        "brier",
        "variance",
        "unspecificity",
        "unreliability",
        "overconfidence",
    ]);
    for row in PAPER_TABLE1 {
        paper.row(vec![
            row.approach.paper_label().to_string(),
            fmt_prob(row.brier),
            fmt_prob(row.variance),
            fmt_prob(row.unspecificity),
            fmt_prob(row.unreliability),
            fmt_prob(row.overconfidence),
        ]);
    }
    out.push_str(&paper.render());

    // Shape checks that define a successful reproduction.
    out.push_str(&section("shape checks"));
    let get = |a: Approach| {
        measured
            .iter()
            .find(|(m, _)| *m == a)
            .map(|(_, d)| d.clone())
            .expect("all approaches measured")
    };
    let tauw = get(Approach::IfTauw);
    let stateless = get(Approach::StatelessNoIf);
    let naive = get(Approach::IfNaive);
    let worst = get(Approach::IfWorstCase);
    let opportune = get(Approach::IfOpportune);
    let if_no_uf = get(Approach::IfNoUf);

    let checks: Vec<(&str, bool)> = vec![
        (
            "taUW has the best (lowest) Brier score of all six approaches",
            Approach::ALL
                .iter()
                .all(|&a| tauw.brier <= get(a).brier + 1e-12),
        ),
        (
            "IF reduces the variance component vs isolated predictions",
            if_no_uf.variance < stateless.variance,
        ),
        (
            "naive UF has by far the highest overconfidence",
            Approach::ALL
                .iter()
                .filter(|&&a| a != Approach::IfNaive)
                .all(|&a| naive.overconfidence > 3.0 * get(a).overconfidence.max(1e-9)),
        ),
        (
            "worst-case UF has the highest unreliability but tiny overconfidence",
            Approach::ALL
                .iter()
                .all(|&a| worst.unreliability >= get(a).unreliability - 1e-12)
                && worst.overconfidence < 0.1 * worst.unreliability,
        ),
        (
            "taUW has the lowest unspecificity (best resolution)",
            Approach::ALL
                .iter()
                .all(|&a| tauw.unspecificity <= get(a).unspecificity + 1e-12),
        ),
        (
            "opportune beats IF+noUF on Brier but is more overconfident",
            opportune.brier <= if_no_uf.brier + 1e-12
                && opportune.overconfidence >= if_no_uf.overconfidence,
        ),
        (
            "taUW overconfidence is (near) zero",
            tauw.overconfidence < 1e-4,
        ),
    ];
    let mut check_table = TextTable::new(vec!["check", "status"]);
    for (name, ok) in &checks {
        check_table.row(vec![
            name.to_string(),
            if *ok { "HOLDS" } else { "VIOLATED" }.into(),
        ]);
    }
    out.push_str(&check_table.render());

    emit(&opts.out_dir, "table1.txt", &out).expect("write results");
}
