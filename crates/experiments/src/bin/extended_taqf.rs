//! Extension study: do features *beyond* the paper's taQF1–4 help?
//!
//! The paper closes RQ3 with "experiments on other datasets are required to
//! determine whether the results are stable and whether there is an overall
//! best set of timeseries-aware features". This experiment probes two
//! candidate features on the synthetic substrate — the trailing agreement
//! streak and an exponentially recency-weighted agreement ratio — by
//! assembling taQIMs manually through the public `CalibratedQim` API.

use tauw_core::buffer::TimeseriesBuffer;
use tauw_core::calibration::CalibratedQim;
use tauw_core::taqf::{extra, TaqfVector};
use tauw_core::training::TrainingSeries;
use tauw_core::wrapper::UncertaintyWrapper;
use tauw_dtree::{Dataset, TreeBuilder};
use tauw_experiments::report::{emit, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_fusion::info::{InformationFusion, MajorityVote};
use tauw_stats::brier::brier_score;

/// Which feature block a variant uses on top of the stateless QFs.
#[derive(Clone, Copy, PartialEq)]
enum FeatureSet {
    /// The paper's taQF1–4.
    Paper,
    /// taQF1–4 plus streak and recency-weighted ratio.
    Extended,
    /// Only the two extension features.
    ExtrasOnly,
}

impl FeatureSet {
    fn label(self) -> &'static str {
        match self {
            FeatureSet::Paper => "taQF1-4 (paper)",
            FeatureSet::Extended => "taQF1-4 + streak + recency-ratio",
            FeatureSet::ExtrasOnly => "streak + recency-ratio only",
        }
    }

    fn column_names(self, stateless: &[String]) -> Vec<String> {
        let mut names = stateless.to_vec();
        if matches!(self, FeatureSet::Paper | FeatureSet::Extended) {
            names.extend(
                tauw_core::taqf::TaqfKind::ALL
                    .iter()
                    .map(|k| k.name().to_string()),
            );
        }
        if matches!(self, FeatureSet::Extended | FeatureSet::ExtrasOnly) {
            names.push("taqf_streak".to_string());
            names.push("taqf_recency_ratio".to_string());
        }
        names
    }
}

const RECENCY_LAMBDA: f64 = 0.7;

/// Replays series, emitting `(features, fused_failed)` rows for a variant.
fn replay_rows(
    stateless: &UncertaintyWrapper,
    batch: &[TrainingSeries],
    set: FeatureSet,
) -> Vec<(Vec<f64>, bool)> {
    let mut rows = Vec::new();
    let mut buffer = TimeseriesBuffer::new();
    for series in batch {
        buffer.clear();
        for step in &series.steps {
            let u = stateless
                .uncertainty(&step.quality_factors)
                .expect("estimate");
            buffer.push(step.outcome, u);
            let fused = MajorityVote
                .fuse(&buffer.outcomes(), &buffer.certainties())
                .expect("non-empty buffer");
            let mut features = step.quality_factors.clone();
            if matches!(set, FeatureSet::Paper | FeatureSet::Extended) {
                let taqf = TaqfVector::compute(&buffer, fused).expect("non-empty buffer");
                features.extend([
                    taqf.ratio,
                    taqf.length,
                    taqf.unique_outcomes,
                    taqf.cumulative_certainty,
                ]);
            }
            if matches!(set, FeatureSet::Extended | FeatureSet::ExtrasOnly) {
                features.push(extra::trailing_agreement_streak(&buffer, fused));
                features.push(extra::recency_weighted_ratio(
                    &buffer,
                    fused,
                    RECENCY_LAMBDA,
                ));
            }
            rows.push((features, fused != series.true_outcome));
        }
    }
    rows
}

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");
    let stateless = ctx.tauw.stateless();

    let mut out = String::new();
    out.push_str(&section(
        "extended taQF study (beyond the paper's four factors)",
    ));
    let mut table = TextTable::new(vec!["feature set", "taQIM leaves", "brier", "min u"]);

    let mut briers = Vec::new();
    for set in [
        FeatureSet::Paper,
        FeatureSet::Extended,
        FeatureSet::ExtrasOnly,
    ] {
        // Train.
        let train_rows = replay_rows(stateless, &ctx.train, set);
        let mut ds = Dataset::new(set.column_names(&ctx.feature_names), 2).expect("dataset");
        ds.reserve(train_rows.len());
        for (features, failed) in &train_rows {
            ds.push_row(features, u32::from(*failed)).expect("row");
        }
        let tree = TreeBuilder::new().max_depth(8).fit(&ds).expect("tree");
        // Calibrate.
        let calib_rows = replay_rows(stateless, &ctx.calib, set);
        let qim =
            CalibratedQim::calibrate(tree, &calib_rows, ctx.calibration).expect("calibration");
        // Evaluate.
        let test_rows = replay_rows(stateless, &ctx.test, set);
        let mut forecasts = Vec::with_capacity(test_rows.len());
        let mut failures = Vec::with_capacity(test_rows.len());
        for (features, failed) in &test_rows {
            forecasts.push(qim.uncertainty(features).expect("uncertainty"));
            failures.push(*failed);
        }
        let brier = brier_score(&forecasts, &failures).expect("brier");
        briers.push((set, brier));
        table.row(vec![
            set.label().to_string(),
            qim.tree().n_leaves().to_string(),
            fmt_prob(brier),
            fmt_prob(qim.min_uncertainty()),
        ]);
    }
    out.push_str(&table.render());

    let brier_of = |s: FeatureSet| {
        briers
            .iter()
            .find(|(set, _)| *set == s)
            .map(|(_, b)| *b)
            .expect("measured")
    };
    out.push_str(&section("findings"));
    let paper = brier_of(FeatureSet::Paper);
    let extended = brier_of(FeatureSet::Extended);
    let extras = brier_of(FeatureSet::ExtrasOnly);
    out.push_str(&format!(
        "extension features change the Brier score by {:+.4} on top of taQF1-4\n\
         (paper set {paper:.4} -> extended {extended:.4}); on their own they reach {extras:.4}.\n\
         A small or zero delta supports the paper's redundancy finding: the four\n\
         proposed factors already capture the buffer's signal on this substrate.\n",
        extended - paper
    ));

    emit(&opts.out_dir, "extended_taqf.txt", &out).expect("write results");
}
