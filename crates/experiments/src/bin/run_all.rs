//! Runs every experiment in one process (sharing the expensive context
//! build) and writes all result files. This is the one-stop entry point
//! referenced by `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run -p tauw-experiments --release --bin run_all
//! ```

use std::process::Command;
use tauw_experiments::report::section;
use tauw_experiments::{CliOptions, BINARIES};

fn main() {
    let opts = CliOptions::from_env();
    println!(
        "{}",
        section(&format!(
            "run_all: scale {} seed {} -> {}",
            opts.scale, opts.seed, opts.out_dir
        ))
    );
    // Each experiment runs as a child process of the same (already built)
    // binary set, so a failure in one experiment cannot poison the others
    // and memory is returned to the OS between the heavyweight runs.
    let exe = std::env::current_exe().expect("current exe path");
    let bin_dir = exe.parent().expect("binary directory");
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n>>> {bin}");
        let status = Command::new(bin_dir.join(bin))
            .args([
                "--scale",
                &opts.scale.to_string(),
                "--seed",
                &opts.seed.to_string(),
                "--out",
                &opts.out_dir,
            ])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e} (build all binaries first: cargo build -p tauw-experiments --release)");
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; results in {}/", opts.out_dir);
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
