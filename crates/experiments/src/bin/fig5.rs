//! Regenerates **Fig. 5**: the distribution of dependable uncertainty
//! across cases for the classical stateless UW (top) vs the proposed
//! taUW + IF (bottom), including the share of cases at the lowest
//! guaranteed uncertainty.

use tauw_experiments::eval::{evaluate, Approach};
use tauw_experiments::paper::headline;
use tauw_experiments::report::{bar, emit, fmt_pct, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_stats::descriptive::Histogram;

fn histogram_block(label: &str, values: &[f64]) -> String {
    let mut h = Histogram::new(0.0, 0.5, 25).expect("valid histogram");
    for &v in values {
        h.push(v);
    }
    let max = h.counts().iter().copied().max().unwrap_or(1) as f64;
    let mut out = format!("{label} (n = {}):\n", values.len());
    for i in 0..h.counts().len() {
        let (lo, hi) = h.bin_edges(i);
        let count = h.counts()[i];
        if count == 0 {
            continue;
        }
        out.push_str(&format!(
            "  u in [{lo:.3}, {hi:.3}): {:>7}  {}\n",
            count,
            bar(count as f64, max, 40)
        ));
    }
    if h.overflow() > 0 {
        out.push_str(&format!("  u >= 0.500          : {:>7}\n", h.overflow()));
    }
    out
}

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");
    let eval = evaluate(&ctx.tauw, &ctx.test).expect("evaluation must succeed");

    let mut out = String::new();
    out.push_str(&section(
        "Fig. 5 — distribution of uncertainty across cases",
    ));
    out.push_str(&histogram_block(
        "classical stateless UW",
        &eval.uncertainties(Approach::StatelessNoIf),
    ));
    out.push('\n');
    out.push_str(&histogram_block(
        "taUW + IF",
        &eval.uncertainties(Approach::IfTauw),
    ));

    let (min_stateless, share_stateless) = eval.lowest_uncertainty_share(Approach::StatelessNoIf);
    let (min_tauw, share_tauw) = eval.lowest_uncertainty_share(Approach::IfTauw);

    out.push_str(&section("lowest guaranteed uncertainty (99.9% confidence)"));
    let mut table = TextTable::new(vec!["model", "lowest u", "share of cases at lowest u"]);
    table.row(vec![
        "stateless UW".to_string(),
        fmt_prob(min_stateless),
        fmt_pct(share_stateless),
    ]);
    table.row(vec![
        "taUW + IF".to_string(),
        fmt_prob(min_tauw),
        fmt_pct(share_tauw),
    ]);
    table.row(vec![
        "taUW + IF (paper)".to_string(),
        fmt_prob(headline::TAUW_MIN_UNCERTAINTY),
        fmt_pct(headline::TAUW_MIN_UNCERTAINTY_SHARE),
    ]);
    out.push_str(&table.render());

    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    checks.row(vec![
        "taUW guarantees a lower minimum uncertainty than the stateless UW".to_string(),
        if min_tauw <= min_stateless {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "the share of cases at the lowest uncertainty grows substantially (paper: ~2x)".to_string(),
        if share_tauw > 1.2 * share_stateless {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "majority of cases get better than 99% certainty with taUW".to_string(),
        if eval
            .uncertainties(Approach::IfTauw)
            .iter()
            .filter(|&&u| u < 0.01 + 1e-12)
            .count() as f64
            > 0.4 * eval.cases.len() as f64
        {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    out.push_str(&checks.render());

    emit(&opts.out_dir, "fig5.txt", &out).expect("write results");
}
