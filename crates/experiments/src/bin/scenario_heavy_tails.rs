//! Scenario family: heavy-tailed noise bursts on the quality features.
//!
//! Symmetric Pareto bursts hit every quality factor for runs of steps.
//! The family's default application transforms **calibration and test**
//! together, so exchangeability between the two splits survives — which
//! is exactly the regime where split-conformal's distribution-free
//! guarantee must keep holding:
//!
//! 1. with bursts on calibration *and* test, conformal empirical
//!    indicator coverage stays ≥ its nominal level;
//! 2. the conformal bound stays informative (mean bound < 1) and the
//!    wrapper keeps a useful ranking (AUC > 0.5, several levels);
//! 3. recalibrating on bursty data repairs what a clean-calibrated
//!    wrapper loses when only the test split is bursty (broken
//!    exchangeability): paired coverage ≥ broken coverage.
//!
//! The binary exits non-zero if any shape check is VIOLATED.

use tauw_core::conformal::ConformalOptions;
use tauw_experiments::eval::evaluate;
use tauw_experiments::report::{emit, fmt_prob, section, TextTable};
use tauw_experiments::{Approach, CliOptions, ExperimentContext};
use tauw_sim::scenario::{BurstParams, ScenarioFamily};
use tauw_stats::roc::auc;

/// Matches `conformal_head_to_head`: attainable from small calibration
/// splits at every world scale.
const CONFORMAL_CONFIDENCE: f64 = 0.9;

/// Fraction of cases whose one-sided bound covers the realized failure
/// indicator (`y ≤ bound`).
fn indicator_coverage(forecasts: &[f64], failures: &[bool]) -> f64 {
    let covered = forecasts
        .iter()
        .zip(failures)
        .filter(|(&bound, &failed)| !failed || bound >= 1.0 - 1e-12)
        .count();
    covered as f64 / forecasts.len().max(1) as f64
}

struct Row {
    name: String,
    coverage: f64,
    mean_bound: f64,
    auc: f64,
    levels: usize,
}

fn assess(
    name: &str,
    tauw: &tauw_core::tauw::TimeseriesAwareWrapper,
    test: &[tauw_core::training::TrainingSeries],
) -> Row {
    let eval = evaluate(tauw, test).expect("evaluation runs");
    let (forecasts, failures) = eval.forecasts(Approach::IfTauw);
    let ranking = auc(&forecasts, &failures).expect("both outcome classes present");
    let coverage = indicator_coverage(&forecasts, &failures);
    let mean_bound = forecasts.iter().sum::<f64>() / forecasts.len().max(1) as f64;
    let mut levels = forecasts.clone();
    levels.sort_by(f64::total_cmp);
    levels.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
    Row {
        name: name.to_string(),
        coverage,
        mean_bound,
        auc: ranking,
        levels: levels.len(),
    }
}

fn main() {
    let opts = CliOptions::from_env();
    let family = ScenarioFamily::HeavyTails(BurstParams::default());

    // Clean world (baseline) and paired-burst world (bursts on calib+test).
    let clean_ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");
    let burst_ctx = ExperimentContext::build_scenario(family, opts.scale, opts.seed)
        .expect("scenario context must build");

    let conformal_clean = clean_ctx
        .tauw_conformal_variant(ConformalOptions::default(), CONFORMAL_CONFIDENCE)
        .expect("conformal variant builds");
    let conformal_paired = burst_ctx
        .tauw_conformal_variant(ConformalOptions::default(), CONFORMAL_CONFIDENCE)
        .expect("conformal variant builds");
    // Broken exchangeability: calibrated clean, served bursty.
    let broken_test = clean_ctx
        .scenario_test(family)
        .expect("scenario test builds");

    let rows = [
        assess("conformal / clean world", &conformal_clean, &clean_ctx.test),
        assess(
            "conformal / bursts on calib+test",
            &conformal_paired,
            &burst_ctx.test,
        ),
        assess(
            "conformal / bursts on test only",
            &conformal_clean,
            &broken_test,
        ),
        assess("tree / clean world", &clean_ctx.tauw, &clean_ctx.test),
        assess(
            "tree / bursts on calib+test",
            &burst_ctx.tauw,
            &burst_ctx.test,
        ),
    ];

    let mut out = String::new();
    out.push_str(&section(
        "scenario: heavy-tailed bursts on the quality features (IF + taUW rows)",
    ));
    out.push_str(&format!(
        "burst params: gate {} / mean run {} / alpha {} / scale {}.\n\
         conformal nominal coverage: {CONFORMAL_CONFIDENCE}.\n\n",
        BurstParams::default().gate_prob,
        BurstParams::default().mean_run,
        BurstParams::default().tail_alpha,
        BurstParams::default().scale,
    ));
    let mut table = TextTable::new(vec![
        "backend / world",
        "coverage",
        "mean bound",
        "AUC",
        "u levels",
    ]);
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            format!("{:.4}", r.coverage),
            fmt_prob(r.mean_bound),
            format!("{:.4}", r.auc),
            r.levels.to_string(),
        ]);
    }
    out.push_str(&table.render());

    let paired = &rows[1];
    let broken = &rows[2];
    let tree_burst = &rows[4];
    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    let mut violations = 0usize;
    let mut check = |label: &str, holds: bool| {
        if !holds {
            violations += 1;
        }
        checks.row(vec![
            label.to_string(),
            if holds { "HOLDS" } else { "VIOLATED" }.to_string(),
        ]);
    };
    check(
        "conformal coverage stays >= nominal under paired bursts",
        paired.coverage >= CONFORMAL_CONFIDENCE,
    );
    check(
        "paired conformal bound stays informative (mean bound < 1)",
        paired.mean_bound < 1.0 - 1e-9,
    );
    check(
        "recalibration repairs broken exchangeability (paired >= test-only coverage)",
        paired.coverage >= broken.coverage,
    );
    check(
        "tree wrapper stays informative under bursts (AUC > 0.5, several levels)",
        tree_burst.auc > 0.5 && tree_burst.levels > 1,
    );
    out.push_str(&checks.render());

    emit(&opts.out_dir, "scenario_heavy_tails.txt", &out).expect("write results");
    if violations > 0 {
        eprintln!("scenario_heavy_tails: {violations} shape check(s) VIOLATED");
        std::process::exit(1);
    }
}
