//! Information-fusion ablation: the paper uses plain majority voting with
//! most-recent tie-breaking and notes that "empirical evidence shows that
//! there is no overall best combining rule" (Duin & Tax). This experiment compares
//! the implemented IF strategies — majority vote, certainty-weighted vote,
//! windowed vote, latest-only — on fused accuracy over the test windows.

use tauw_core::buffer::TimeseriesBuffer;
use tauw_experiments::report::{emit, fmt_pct, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_fusion::info::{
    CertaintyWeightedVote, InformationFusion, LatestOnly, MajorityVote, WindowedMajorityVote,
};

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");
    let stateless = ctx.tauw.stateless();

    let strategies: Vec<(&str, Box<dyn InformationFusion<u32>>)> = vec![
        ("majority vote (paper)", Box::new(MajorityVote)),
        ("certainty-weighted vote", Box::new(CertaintyWeightedVote)),
        (
            "windowed majority (last 5)",
            Box::new(WindowedMajorityVote::new(5)),
        ),
        (
            "windowed majority (last 3)",
            Box::new(WindowedMajorityVote::new(3)),
        ),
        ("latest only (no fusion)", Box::new(LatestOnly)),
    ];

    let mut out = String::new();
    out.push_str(&section(
        "information-fusion strategy ablation (fused misclassification)",
    ));
    let mut table = TextTable::new(vec!["strategy", "all steps", "final step", "vs paper IF"]);

    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for (name, strategy) in &strategies {
        let mut buffer = TimeseriesBuffer::new();
        let mut wrong = 0usize;
        let mut total = 0usize;
        let mut wrong_final = 0usize;
        let mut total_final = 0usize;
        for series in &ctx.test {
            buffer.clear();
            for (j, step) in series.steps.iter().enumerate() {
                let u = stateless
                    .uncertainty(&step.quality_factors)
                    .expect("estimate");
                buffer.push(step.outcome, u);
                let fused = strategy
                    .fuse(&buffer.outcomes(), &buffer.certainties())
                    .expect("non-empty buffer");
                total += 1;
                let failed = fused != series.true_outcome;
                wrong += usize::from(failed);
                if j + 1 == series.steps.len() {
                    total_final += 1;
                    wrong_final += usize::from(failed);
                }
            }
        }
        results.push((
            name.to_string(),
            wrong as f64 / total as f64,
            wrong_final as f64 / total_final as f64,
        ));
    }
    let paper_rate = results[0].1;
    for (name, rate, final_rate) in &results {
        table.row(vec![
            name.clone(),
            fmt_pct(*rate),
            fmt_pct(*final_rate),
            format!("{:+.2}pp", (rate - paper_rate) * 100.0),
        ]);
    }
    out.push_str(&table.render());

    out.push_str(&section("shape checks"));
    let rate_of = |label: &str| {
        results
            .iter()
            .find(|(n, _, _)| n.starts_with(label))
            .map(|(_, r, _)| *r)
            .expect("row")
    };
    let mut checks = TextTable::new(vec!["check", "status"]);
    checks.row(vec![
        "every fusion strategy beats latest-only".to_string(),
        if results[..4]
            .iter()
            .all(|(_, r, _)| *r < rate_of("latest only"))
        {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "full-history voting beats the 3-step window (evidence accumulates)".to_string(),
        if rate_of("majority vote") < rate_of("windowed majority (last 3") {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "no strategy dominates majority voting by a large margin (paper [23])".to_string(),
        if results[..4].iter().all(|(_, r, _)| *r > paper_rate - 0.01) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    out.push_str(&checks.render());

    emit(&opts.out_dir, "if_ablation.txt", &out).expect("write results");
}
