//! Scenario family: mid-stream regime switch in the DDM error model.
//!
//! Unlike `drift_adaptation` (which injects failures into the *feedback*
//! channel), this binary drives the switch through the first-class
//! [`ScenarioFamily::RegimeSwitch`] workload: past the switch position a
//! fraction of series become systematically confused — every frame
//! reports the same wrong class, invisibly to the quality sensors and
//! with full self-consistency, so outcome-agreement features read the
//! failure as confidence. The wrapper is trained and calibrated on the
//! clean world and serves the shifted stream through the adaptive
//! session, which reports both the frozen and the adapted bound per
//! step.
//!
//! Shape claims:
//!
//! 1. the first half of the stream is bit-identical to the baseline
//!    world (the family transforms only post-switch series);
//! 2. in the final quarter, frozen bounds undercover by more than 5
//!    points — the paper's dependability argument breaks under drift;
//! 3. the adaptive coverage gap closes to within 5 points;
//! 4. drift signals concentrate after the switch.
//!
//! The binary exits non-zero if any shape check is VIOLATED.

use tauw_core::adaptive::{AdaptiveConfig, DriftSignal};
use tauw_experiments::report::{emit, fmt_pct, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_sim::scenario::{RegimeParams, ScenarioFamily};

struct Served {
    frozen_bound: f64,
    adapted_bound: f64,
    failed: bool,
    drifting: bool,
    in_regime_switch: bool,
}

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");
    let params = RegimeParams::default();
    let shifted = ctx
        .scenario_test(ScenarioFamily::RegimeSwitch(params))
        .expect("scenario test builds");

    let n_series = shifted.len();
    let switch_at = (params.switch_at * n_series as f64).ceil() as usize;
    let total_steps: usize = shifted.iter().map(|s| s.steps.len()).sum();
    let first_half_identical =
        ctx.test[..switch_at.min(ctx.test.len())] == shifted[..switch_at.min(shifted.len())];

    let window = (total_steps / 20).clamp(20, 200);
    let config = AdaptiveConfig {
        window,
        min_observations: (window / 4).max(1),
        rate: 0.05,
        max_inflation_steps: 200,
        ..Default::default()
    };
    let mut session = ctx
        .tauw
        .new_adaptive_session(config)
        .expect("valid adaptive config");

    let mut served = Vec::with_capacity(total_steps);
    for (i, series) in shifted.iter().enumerate() {
        session.begin_series();
        for step in &series.steps {
            let failed = step.outcome != series.true_outcome;
            let out = session
                .step(&step.quality_factors, step.outcome, failed)
                .expect("step serves");
            served.push(Served {
                frozen_bound: out.uncertainty,
                adapted_bound: out.adapted_uncertainty,
                failed,
                drifting: out.drift != DriftSignal::Stable,
                in_regime_switch: i >= switch_at,
            });
        }
    }

    let mut out = String::new();
    out.push_str(&section(
        "scenario: regime switch (first-class workload family)",
    ));
    out.push_str(&format!(
        "stream: {total_steps} steps over {n_series} series; the regime-switch\n\
         family makes each series systematically confused with p={} from\n\
         series {switch_at} on. quality factors are untouched — only the\n\
         ground-truth feedback channel reveals the shift.\n\
         adaptive config: window {window}, min observations {}, rate {}.\n\n",
        params.flip_prob, config.min_observations, config.rate,
    ));

    let gap = |failure_rate: f64, mean_bound: f64| (failure_rate - mean_bound).max(0.0);
    let quarter = served.len() / 4;
    let mut table = TextTable::new(vec![
        "quarter",
        "failure rate",
        "frozen bound",
        "adaptive bound",
        "frozen gap",
        "adaptive gap",
        "drift signals",
    ]);
    let mut last_gaps = (0.0f64, 0.0f64);
    for q in 0..4 {
        let lo = q * quarter;
        let hi = if q == 3 {
            served.len()
        } else {
            (q + 1) * quarter
        };
        let slice = &served[lo..hi];
        let n = slice.len().max(1) as f64;
        let failure_rate = slice.iter().filter(|s| s.failed).count() as f64 / n;
        let frozen = slice.iter().map(|s| s.frozen_bound).sum::<f64>() / n;
        let adaptive = slice.iter().map(|s| s.adapted_bound).sum::<f64>() / n;
        let drifting = slice.iter().filter(|s| s.drifting).count();
        last_gaps = (gap(failure_rate, frozen), gap(failure_rate, adaptive));
        table.row(vec![
            format!("Q{}", q + 1),
            fmt_pct(failure_rate),
            fmt_prob(frozen),
            fmt_prob(adaptive),
            fmt_pct(last_gaps.0),
            fmt_pct(last_gaps.1),
            drifting.to_string(),
        ]);
    }
    out.push_str(&table.render());

    let pre_drift = served
        .iter()
        .filter(|s| !s.in_regime_switch && s.drifting)
        .count();
    let post_drift = served
        .iter()
        .filter(|s| s.in_regime_switch && s.drifting)
        .count();

    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    let mut violations = 0usize;
    let mut check = |label: &str, holds: bool| {
        if !holds {
            violations += 1;
        }
        checks.row(vec![
            label.to_string(),
            if holds { "HOLDS" } else { "VIOLATED" }.to_string(),
        ]);
    };
    check(
        "pre-switch stream is bit-identical to the baseline world",
        first_half_identical,
    );
    check(
        "final quarter: frozen bounds undercover by more than 5 points",
        last_gaps.0 > 0.05,
    );
    check(
        "final quarter: adaptive coverage gap closes to within 5 points",
        last_gaps.1 <= 0.05,
    );
    check(
        "drift signals concentrate after the regime switch",
        post_drift > pre_drift,
    );
    out.push_str(&checks.render());
    out.push_str(&format!(
        "\ndrift signals: {pre_drift} before the switch, {post_drift} after.\n"
    ));

    emit(&opts.out_dir, "scenario_regime_switch.txt", &out).expect("write results");
    if violations > 0 {
        eprintln!("scenario_regime_switch: {violations} shape check(s) VIOLATED");
        std::process::exit(1);
    }
}
