//! Scenario family: sensor dropout + multi-rate sensing.
//!
//! The wrapper is trained and calibrated on the clean world, then served
//! a test split whose *quality observations* suffer dropout runs (stale
//! or dead sensors) and multi-rate refresh — while the DDM outcomes are
//! untouched, because the latent world never changed. The paper's shape
//! claims under this family:
//!
//! 1. the fused misclassification rate is **exactly** unchanged (the
//!    transform never touches outcomes, only what the wrapper sees);
//! 2. the wrapper's failure ranking degrades (AUC drops) because its
//!    inputs went stale;
//! 3. stale sensors (hold last value) hurt less than dead sensors
//!    (read zero), since a recent reading still carries signal.
//!
//! The binary exits non-zero if any shape check is VIOLATED, so CI can
//! assert the verdicts.

use tauw_experiments::eval::evaluate;
use tauw_experiments::report::{emit, fmt_pct, fmt_prob, section, TextTable};
use tauw_experiments::{Approach, CliOptions, ExperimentContext};
use tauw_sim::scenario::{DropoutParams, ScenarioFamily};
use tauw_stats::roc::auc;

struct Row {
    name: String,
    auc: f64,
    brier: f64,
    mean_bound: f64,
    fused_err: f64,
}

fn assess(
    name: &str,
    ctx: &ExperimentContext,
    test: &[tauw_core::training::TrainingSeries],
) -> Row {
    let eval = evaluate(&ctx.tauw, test).expect("evaluation runs");
    let (forecasts, failures) = eval.forecasts(Approach::IfTauw);
    let ranking = auc(&forecasts, &failures).expect("both outcome classes present");
    let decomposition = eval
        .decomposition(Approach::IfTauw)
        .expect("decomposition computes");
    Row {
        name: name.to_string(),
        auc: ranking,
        brier: decomposition.brier,
        mean_bound: forecasts.iter().sum::<f64>() / forecasts.len().max(1) as f64,
        fused_err: eval.fused_misclassification(),
    }
}

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");

    let dropout = |stale_prob: f64| {
        ScenarioFamily::SensorDropout(DropoutParams {
            stale_prob,
            ..Default::default()
        })
    };
    let mixed_test = ctx
        .scenario_test(dropout(0.5))
        .expect("scenario test builds");
    let stale_test = ctx
        .scenario_test(dropout(1.0))
        .expect("scenario test builds");
    let dead_test = ctx
        .scenario_test(dropout(0.0))
        .expect("scenario test builds");

    let rows = [
        assess("clean sensors (baseline)", &ctx, &ctx.test),
        assess("dropout, mixed stale/dead", &ctx, &mixed_test),
        assess("dropout, stale holds", &ctx, &stale_test),
        assess("dropout, dead zeros", &ctx, &dead_test),
    ];

    let mut out = String::new();
    out.push_str(&section(
        "scenario: sensor dropout + multi-rate sensing (IF + taUW rows)",
    ));
    out.push_str(
        "wrapper trained + calibrated on the clean world; only the test\n\
         observations are transformed. outcomes never change, so any metric\n\
         movement is the wrapper losing input signal, not the DDM failing\n\
         more.\n\n",
    );
    let mut table = TextTable::new(vec![
        "test sensors",
        "AUC",
        "Brier",
        "mean bound",
        "fused misclassification",
    ]);
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            format!("{:.4}", r.auc),
            fmt_prob(r.brier),
            fmt_prob(r.mean_bound),
            fmt_pct(r.fused_err),
        ]);
    }
    out.push_str(&table.render());

    let (clean, mixed, stale, dead) = (&rows[0], &rows[1], &rows[2], &rows[3]);
    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    let mut violations = 0usize;
    let mut check = |label: &str, holds: bool| {
        if !holds {
            violations += 1;
        }
        checks.row(vec![
            label.to_string(),
            if holds { "HOLDS" } else { "VIOLATED" }.to_string(),
        ]);
    };
    check(
        "fused misclassification is exactly unchanged (outcomes untouched)",
        mixed.fused_err == clean.fused_err
            && stale.fused_err == clean.fused_err
            && dead.fused_err == clean.fused_err,
    );
    check(
        "dropout degrades the wrapper's failure ranking (AUC drops)",
        mixed.auc < clean.auc,
    );
    check(
        "stale sensors hurt less than dead sensors (AUC)",
        stale.auc >= dead.auc,
    );
    check(
        "the wrapper stays informative under dropout (AUC > 0.5)",
        mixed.auc > 0.5,
    );
    out.push_str(&checks.render());
    out.push_str(
        "\nnote: the mean served bound may move in either direction — dead\n\
         sensors read zero deficits, which routes to *low*-uncertainty\n\
         leaves; the dependable-bound promise is only as good as the\n\
         inputs, which is exactly what this family demonstrates.\n",
    );

    emit(&opts.out_dir, "scenario_dropout.txt", &out).expect("write results");
    if violations > 0 {
        eprintln!("scenario_dropout: {violations} shape check(s) VIOLATED");
        std::process::exit(1);
    }
}
