//! Ablation: how does the choice of binomial bound method and the minimum
//! calibration count per leaf affect the wrapper's guarantees? (A design
//! choice called out in `DESIGN.md` §5; not a paper figure.)

use tauw_core::calibration::{CalibratedQim, CalibrationOptions};
use tauw_core::training::flatten_stateless;
use tauw_dtree::TreeBuilder;
use tauw_experiments::report::{emit, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_stats::binomial::BoundMethod;
use tauw_stats::brier::{brier_score, Grouping};
use tauw_stats::BrierDecomposition;

fn main() {
    let opts = CliOptions::from_env();
    let ctx =
        ExperimentContext::build(opts.scale, opts.seed).expect("experiment context must build");

    // Retrain the stateless tree once; recalibrate per (method, min-count).
    let train_rows = flatten_stateless(&ctx.train);
    let calib_rows = flatten_stateless(&ctx.calib);
    let test_rows = flatten_stateless(&ctx.test);
    let mut ds = tauw_dtree::Dataset::new(ctx.feature_names.clone(), 2).expect("dataset");
    for (f, failed) in &train_rows {
        ds.push_row(f, u32::from(*failed)).expect("row");
    }
    let tree = TreeBuilder::new().max_depth(8).fit(&ds).expect("tree fits");

    let mut out = String::new();
    out.push_str(&section(
        "bound method x min-leaf-count ablation (stateless QIM)",
    ));
    let mut table = TextTable::new(vec![
        "method",
        "min/leaf",
        "leaves",
        "min u",
        "mean u",
        "brier",
        "overconfidence",
    ]);

    let base_min = ctx.calibration.min_samples_per_leaf;
    for method in BoundMethod::ALL {
        for factor in [0.25, 0.5, 1.0, 2.0] {
            let min_count = ((base_min as f64 * factor).round() as u64).max(10);
            let options = CalibrationOptions {
                min_samples_per_leaf: min_count,
                confidence: 0.999,
                method,
            };
            let qim = match CalibratedQim::calibrate(tree.clone(), &calib_rows, options) {
                Ok(q) => q,
                Err(e) => {
                    table.row(vec![
                        method.name().to_string(),
                        min_count.to_string(),
                        format!("infeasible: {e}"),
                    ]);
                    continue;
                }
            };
            let mut forecasts = Vec::with_capacity(test_rows.len());
            let mut failures = Vec::with_capacity(test_rows.len());
            for (f, failed) in &test_rows {
                forecasts.push(qim.uncertainty(f).expect("uncertainty"));
                failures.push(*failed);
            }
            let brier = brier_score(&forecasts, &failures).expect("brier");
            let decomp = BrierDecomposition::compute(
                &forecasts,
                &failures,
                Grouping::UniqueValues { tolerance: 1e-9 },
            )
            .expect("decomposition");
            let mean_u = forecasts.iter().sum::<f64>() / forecasts.len() as f64;
            table.row(vec![
                method.name().to_string(),
                min_count.to_string(),
                qim.tree().n_leaves().to_string(),
                fmt_prob(qim.min_uncertainty()),
                fmt_prob(mean_u),
                fmt_prob(brier),
                fmt_prob(decomp.overconfidence),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nreading guide: Hoeffding is distribution-free and loosest (highest min u);\n\
         Jeffreys/Wilson are tighter than Clopper-Pearson but only approximately valid;\n\
         larger min-leaf counts trade resolution (fewer leaves) for tighter bounds.\n",
    );

    emit(&opts.out_dir, "bounds_ablation.txt", &out).expect("write results");
}
