//! Streaming drift-adaptation study (beyond the paper's frozen wrappers).
//!
//! The paper calibrates once and serves frozen bounds; its dependability
//! argument silently assumes the deployment distribution matches the
//! calibration distribution. This experiment injects a mid-stream regime
//! switch — after the first half of the test stream, the ground truth
//! silently drifts so unmodeled failures appear with probability ~0.35
//! while the quality factors look unchanged — and compares the frozen
//! bounds against the adaptive layer's coverage-tracked, multiplicatively
//! inflated bounds.
//!
//! The headline check: in the final quarter of the stream the *adaptive*
//! coverage gap (observed failure rate minus mean promised failure bound,
//! clamped at zero) closes to within 5 points, while the *frozen* gap does
//! not.

use tauw_core::adaptive::{AdaptiveConfig, DriftSignal};
use tauw_experiments::report::{emit, fmt_pct, fmt_prob, section, TextTable};
use tauw_experiments::{CliOptions, ExperimentContext};
use tauw_stats::bootstrap::SplitMix64;

/// One served step of the concatenated stream, as needed for the
/// quarter-by-quarter coverage accounting.
struct Served {
    frozen_bound: f64,
    adapted_bound: f64,
    failed: bool,
    drifting: bool,
    in_regime_switch: bool,
}

fn main() {
    let opts = CliOptions::from_env();
    let ctx = ExperimentContext::build(opts.scale, opts.seed).expect("context builds");

    // Concatenate the test series into one long stream. The fusion window
    // still resets at every series boundary (begin_series), but the
    // adaptive coverage ring deliberately survives those resets: drift is
    // a property of the stream, not of any single series.
    let n_series = ctx.test.len();
    let switch_at = n_series / 2;
    let total_steps: usize = ctx.test.iter().map(|s| s.steps.len()).sum();

    let window = (total_steps / 20).clamp(20, 200);
    let config = AdaptiveConfig {
        window,
        min_observations: (window / 4).max(1),
        rate: 0.05,
        max_inflation_steps: 200,
        ..Default::default()
    };
    let mut session = ctx
        .tauw
        .new_adaptive_session(config)
        .expect("valid adaptive config");

    // Unmodeled post-switch failures: with p ~ 0.35, the ground truth
    // silently drifts away from whatever the DDM reports. The DDM's
    // outputs — and therefore every quality factor and taQF the wrapper
    // routes on — are unchanged, so a frozen wrapper cannot see this at
    // all; only delayed ground-truth feedback (the `failed` flag) reveals
    // it, which is exactly what the adaptive coverage ring consumes.
    let mut rng = SplitMix64::new(opts.seed ^ 0xD21F);
    let mut served = Vec::with_capacity(total_steps);
    for (i, series) in ctx.test.iter().enumerate() {
        let in_regime_switch = i >= switch_at;
        session.begin_series();
        for step in &series.steps {
            let mut failed = step.outcome != series.true_outcome;
            if in_regime_switch && rng.next_f64() < 0.35 {
                failed = true;
            }
            let out = session
                .step(&step.quality_factors, step.outcome, failed)
                .expect("step serves");
            served.push(Served {
                frozen_bound: out.uncertainty,
                adapted_bound: out.adapted_uncertainty,
                failed,
                drifting: out.drift != DriftSignal::Stable,
                in_regime_switch,
            });
        }
    }

    let mut out = String::new();
    out.push_str(&section("drift adaptation (regime switch at mid-stream)"));
    out.push_str(&format!(
        "stream: {total_steps} steps over {n_series} series; silent unmodeled\n\
         failures injected with p=0.35 from series {switch_at} on (quality\n\
         factors unchanged — only ground-truth feedback reveals them).\n\
         adaptive config: window {window}, min observations {}, rate {}.\n\n",
        config.min_observations, config.rate,
    ));

    // Quarter-by-quarter coverage accounting. gap = how far the observed
    // failure rate overshoots the promised (mean served) failure bound.
    let gap = |failure_rate: f64, mean_bound: f64| (failure_rate - mean_bound).max(0.0);
    let quarter = served.len() / 4;
    let mut table = TextTable::new(vec![
        "quarter",
        "failure rate",
        "frozen bound",
        "adaptive bound",
        "frozen gap",
        "adaptive gap",
        "drift signals",
    ]);
    let mut last_gaps = (0.0f64, 0.0f64);
    for q in 0..4 {
        let lo = q * quarter;
        let hi = if q == 3 {
            served.len()
        } else {
            (q + 1) * quarter
        };
        let slice = &served[lo..hi];
        let n = slice.len().max(1) as f64;
        let failure_rate = slice.iter().filter(|s| s.failed).count() as f64 / n;
        let frozen = slice.iter().map(|s| s.frozen_bound).sum::<f64>() / n;
        let adaptive = slice.iter().map(|s| s.adapted_bound).sum::<f64>() / n;
        let drifting = slice.iter().filter(|s| s.drifting).count();
        last_gaps = (gap(failure_rate, frozen), gap(failure_rate, adaptive));
        table.row(vec![
            format!("Q{}", q + 1),
            fmt_pct(failure_rate),
            fmt_prob(frozen),
            fmt_prob(adaptive),
            fmt_pct(last_gaps.0),
            fmt_pct(last_gaps.1),
            drifting.to_string(),
        ]);
    }
    out.push_str(&table.render());

    let pre_drift = served
        .iter()
        .filter(|s| !s.in_regime_switch && s.drifting)
        .count();
    let post_drift = served
        .iter()
        .filter(|s| s.in_regime_switch && s.drifting)
        .count();

    out.push_str(&section("shape checks"));
    let mut checks = TextTable::new(vec!["check", "status"]);
    checks.row(vec![
        "final quarter: adaptive coverage gap closes to within 5 points".to_string(),
        if last_gaps.1 <= 0.05 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "final quarter: frozen bounds still undercover by more than 5 points".to_string(),
        if last_gaps.0 > 0.05 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    checks.row(vec![
        "drift signals concentrate after the regime switch".to_string(),
        if post_drift > pre_drift {
            "HOLDS"
        } else {
            "VIOLATED"
        }
        .to_string(),
    ]);
    out.push_str(&checks.render());
    out.push_str(&format!(
        "\ndrift signals: {pre_drift} before the switch, {post_drift} after.\n\
         note: the frozen bound is the same wrapper serving without the\n\
         adaptive layer (the adaptive session reports both), so the two\n\
         columns differ only in the coverage-driven inflation.\n",
    ));

    emit(&opts.out_dir, "drift_adaptation.txt", &out).expect("write results");
}
