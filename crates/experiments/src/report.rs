//! Plain-text report rendering: fixed-width tables, ASCII bar charts and
//! result-file output shared by the experiment binaries.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A fixed-width text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(n_cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(n_cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim the padding on the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Renders a horizontal ASCII bar of `value` relative to `max` using up to
/// `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Formats a probability with enough digits for the paper's tables.
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0.0".to_string()
    } else if p >= 0.001 {
        format!("{p:.4}")
    } else {
        format!("{p:.1e}")
    }
}

/// Formats a percentage with two decimals.
pub fn fmt_pct(p: f64) -> String {
    format!("{:.2}%", p * 100.0)
}

/// Writes `contents` to `<out_dir>/<name>` (creating the directory) and
/// echoes it to stdout.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn emit(out_dir: &str, name: &str, contents: &str) -> std::io::Result<()> {
    print!("{contents}");
    if !contents.ends_with('\n') {
        println!();
    }
    std::fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(contents.as_bytes())?;
    println!("[written to {}]", path.display());
    Ok(())
}

/// A section header for multi-part reports.
pub fn section(title: &str) -> String {
    format!("\n=== {title} ===\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn bar_scales_with_value() {
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        assert_eq!(bar(0.5, 1.0, 10), "#####");
        assert_eq!(bar(0.0, 1.0, 10), "");
        assert_eq!(bar(2.0, 1.0, 10), "##########", "clamped at width");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn probability_formatting() {
        assert_eq!(fmt_prob(0.0), "0.0");
        assert_eq!(fmt_prob(0.0661), "0.0661");
        assert_eq!(fmt_prob(7.0e-6), "7.0e-6");
        assert_eq!(fmt_pct(0.0789), "7.89%");
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join("tauw_report_test");
        let dir_s = dir.to_str().unwrap();
        emit(dir_s, "x.txt", "hello\n").unwrap();
        let back = std::fs::read_to_string(dir.join("x.txt")).unwrap();
        assert_eq!(back, "hello\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
